//! Deterministic discrete-event simulation kernel.
//!
//! The Scalable TCC simulator is an event-driven, cycle-accurate model:
//! processors, directories, and network links interact purely by
//! scheduling events at future [`Cycle`]s. This crate provides the
//! kernel: a time-ordered [`EventQueue`] with *deterministic* tie-breaking
//! (events scheduled for the same cycle pop in scheduling order), so a
//! given configuration and seed always produces bit-identical results —
//! a property the test suite and the paper-reproduction harness both rely
//! on.
//!
//! # Scheduler structure
//!
//! Nearly every event in the simulator fires within a few hundred cycles
//! of when it is scheduled (link latency, directory occupancy, memory
//! fills); only rare timers (retransmission timeouts, watchdog horizons)
//! look further ahead. [`EventQueue`] exploits that shape with a
//! *hierarchical timing wheel*:
//!
//! * a **near wheel** of [`WHEEL_SLOTS`] single-cycle slots covers the
//!   window `[now, now + WHEEL_SLOTS)`; the slot for time `t` is
//!   `t % WHEEL_SLOTS`, and an occupancy bitmap makes "next non-empty
//!   slot" a couple of `trailing_zeros` scans;
//! * a **far heap** (plain binary heap) holds the rare events beyond the
//!   window; they are *promoted* onto the wheel as the window advances.
//!
//! Because all wheel-resident events lie in one half-open window of
//! length `WHEEL_SLOTS`, each slot holds events of exactly one timestamp,
//! so per-slot ordering only needs the tie-break key. Event payloads are
//! interned in a generational [`Slab`](tcc_types::slab::Slab) and the
//! wheel/heap move 24-byte `(key, seq, id)` entries instead of full
//! events — steady-state scheduling performs no heap allocation.
//!
//! The original `BinaryHeap` scheduler is retained verbatim as
//! [`ReferenceQueue`] and the property tests replay random schedules
//! through both in lockstep.
//!
//! # Example
//!
//! ```
//! use tcc_engine::EventQueue;
//! use tcc_types::Cycle;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(Cycle(10), "b");
//! q.schedule(Cycle(5), "a");
//! q.schedule(Cycle(10), "c");
//!
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b"))); // FIFO within a cycle
//! assert_eq!(q.pop(), Some((Cycle(10), "c")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tcc_trace::Tracer;
use tcc_types::slab::{Slab, SlabKey};
use tcc_types::Cycle;

pub mod budget;
pub mod reference;
pub mod watchdog;

pub use budget::{WorkerBudget, WorkerLease};
pub use reference::ReferenceQueue;
pub use watchdog::{progress_signature, ProgressWatchdog, WatchdogConfig};

/// How events scheduled for the *same* cycle are ordered.
///
/// The default ([`TieBreak::Fifo`]) pops same-cycle events in scheduling
/// order — the stable baseline every determinism test fingerprints.
/// [`TieBreak::Seeded`] permutes same-cycle order by hashing the
/// insertion sequence with a salt: still fully deterministic for a given
/// salt, but each salt explores a *different* legal interleaving of
/// simultaneous events. The chaos explorer uses this as an extra
/// schedule axis on top of message-latency perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Same-cycle events pop in scheduling order.
    #[default]
    Fifo,
    /// Same-cycle events pop in salted-hash order (deterministic per
    /// salt; insertion order still breaks hash collisions).
    Seeded(u64),
}

/// SplitMix64 finalizer: cheap, well-mixed 64-bit hash for tie keys.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of single-cycle slots in the near wheel (must be a power of
/// two). Events within `WHEEL_SLOTS` cycles of `now` go straight onto
/// the wheel; later ones wait in the far heap.
pub const WHEEL_SLOTS: usize = 1 << 10;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// Typed report of an internally-inconsistent queue: an occupancy bit
/// without entries, or a wheel entry whose interned payload is gone.
/// Both states are unreachable through the safe API, but an embedding
/// that replays corrupt or adversarial event streams wants them
/// surfaced as a run failure rather than a process abort — see
/// [`EventQueue::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueCorruption {
    /// The occupancy bitmap pointed at slot `slot`, but it held no
    /// entries.
    EmptySlot { slot: usize },
    /// A popped wheel entry's payload was missing from the slab.
    MissingPayload { at: Cycle },
}

impl std::fmt::Display for QueueCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueCorruption::EmptySlot { slot } => {
                write!(f, "event queue corrupt: occupied slot {slot} is empty")
            }
            QueueCorruption::MissingPayload { at } => {
                write!(
                    f,
                    "event queue corrupt: wheel entry at {at} has no interned payload"
                )
            }
        }
    }
}

/// A wheel-slot entry. All entries in one slot share the same timestamp
/// (see module docs), so ordering within a slot is `(key, seq)` only;
/// the payload lives in the queue's slab behind `id`.
///
/// Keys are `u128`: the classic scheduler uses the insertion sequence
/// (or its salted hash) and fits in 64 bits, while the windowed
/// parallel mode packs causal `(create-cycle, rank, emission)`
/// coordinates into the full width (see `tcc-core`'s parallel module).
#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    key: u128,
    seq: u64,
    id: SlabKey,
}

#[inline]
fn slot_lt(a: &SlotEntry, b: &SlotEntry) -> bool {
    (a.key, a.seq) < (b.key, b.seq)
}

/// Pushes onto a slot's implicit binary min-heap. Under FIFO
/// tie-breaking keys arrive in increasing order, so the sift-up loop
/// exits immediately and pushes are O(1).
fn slot_push(slot: &mut Vec<SlotEntry>, e: SlotEntry) {
    slot.push(e);
    let mut i = slot.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if slot_lt(&slot[i], &slot[p]) {
            slot.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

/// Pops the minimum `(key, seq)` entry from a slot heap, or `None`
/// when the slot is (corruptly) empty despite its occupancy bit.
fn slot_pop(slot: &mut Vec<SlotEntry>) -> Option<SlotEntry> {
    if slot.is_empty() {
        return None;
    }
    let last = slot.len() - 1;
    slot.swap(0, last);
    let e = slot.pop()?;
    let n = slot.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let r = l + 1;
        let c = if r < n && slot_lt(&slot[r], &slot[l]) {
            r
        } else {
            l
        };
        if slot_lt(&slot[c], &slot[i]) {
            slot.swap(i, c);
            i = c;
        } else {
            break;
        }
    }
    Some(e)
}

/// Far-heap entry: full `(at, key, seq)` ordering, payload in the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FarEntry {
    at: Cycle,
    key: u128,
    seq: u64,
    id: SlabKey,
}

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then(self.key.cmp(&other.key))
            .then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic, time-ordered event queue (hierarchical timing wheel;
/// see the module docs for the structure).
///
/// `EventQueue` maintains the simulation clock: [`EventQueue::now`] is
/// the timestamp of the most recently popped event. Scheduling an event
/// in the past is a logic error and panics in debug builds.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `WHEEL_SLOTS` per-slot min-heaps; slot `t & WHEEL_MASK` holds the
    /// wheel-resident events with timestamp `t`. Slot capacity is
    /// retained across reuse, so steady state allocates nothing.
    slots: Box<[Vec<SlotEntry>]>,
    /// One bit per slot: set iff the slot is non-empty.
    occupancy: [u64; OCC_WORDS],
    /// Events at or beyond `now + WHEEL_SLOTS`, promoted as the window
    /// advances.
    far: BinaryHeap<Reverse<FarEntry>>,
    /// Interned payloads; wheel and far heap carry only `SlabKey`s.
    events: Slab<E>,
    /// Number of wheel-resident events (`len() == wheel_len + far.len()`).
    wheel_len: usize,
    seq: u64,
    now: Cycle,
    popped: u64,
    tie_break: TieBreak,
    tracer: Tracer,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Cycle::ZERO`].
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; OCC_WORDS],
            far: BinaryHeap::new(),
            events: Slab::new(),
            wheel_len: 0,
            seq: 0,
            now: Cycle::ZERO,
            popped: 0,
            tie_break: TieBreak::Fifo,
            tracer: Tracer::disabled(),
        }
    }

    /// Creates an empty queue with the given same-cycle ordering policy.
    #[must_use]
    pub fn with_tie_break(tie_break: TieBreak) -> EventQueue<E> {
        let mut q = EventQueue::new();
        q.tie_break = tie_break;
        q
    }

    /// Attaches the shared tracing sink; the kernel contributes only
    /// dispatch counters (never events), and never reads the tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The current simulation time: the timestamp of the last popped
    /// event.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before [`EventQueue::now`]:
    /// scheduling into the past would silently reorder causality.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        let key = match self.tie_break {
            TieBreak::Fifo => u128::from(self.seq),
            TieBreak::Seeded(salt) => u128::from(mix64(self.seq ^ salt)),
        };
        self.insert(at, key, event);
    }

    /// Schedules `event` with a caller-supplied same-cycle ordering key
    /// instead of the queue's tie-break policy. The windowed parallel
    /// engine uses this to carry *causal* creation coordinates
    /// (creation cycle, global pop rank, emission index) that are
    /// identical whichever worker thread performs the insertion —
    /// the foundation of its determinism guarantee. Insertion order
    /// still breaks exact key ties.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before [`EventQueue::now`].
    pub fn schedule_with_key(&mut self, at: Cycle, key: u128, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        self.insert(at, key, event);
    }

    #[inline]
    fn insert(&mut self, at: Cycle, key: u128, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let id = self.events.insert(event);
        if at.0 - self.now.0 < WHEEL_SLOTS as u64 {
            self.wheel_insert(at, SlotEntry { key, seq, id });
        } else {
            self.far.push(Reverse(FarEntry { at, key, seq, id }));
        }
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    #[inline]
    fn wheel_insert(&mut self, at: Cycle, entry: SlotEntry) {
        let slot = (at.0 & WHEEL_MASK) as usize;
        slot_push(&mut self.slots[slot], entry);
        self.occupancy[slot / 64] |= 1u64 << (slot % 64);
        self.wheel_len += 1;
    }

    /// Moves every far-heap event inside the window `[base, base +
    /// WHEEL_SLOTS)` onto the wheel. Called with `base == now` (or, when
    /// the wheel is empty, `base == ` the far minimum) at the top of
    /// every pop: as the window advances, a far event's deadline can
    /// undercut everything wheel-resident, so promotion cannot wait for
    /// the wheel to drain.
    fn promote(&mut self, base: Cycle) {
        while let Some(&Reverse(e)) = self.far.peek() {
            if e.at.0 - base.0 >= WHEEL_SLOTS as u64 {
                break;
            }
            self.far.pop();
            self.wheel_insert(
                e.at,
                SlotEntry {
                    key: e.key,
                    seq: e.seq,
                    id: e.id,
                },
            );
        }
    }

    /// First occupied slot at circular distance >= `start`'s position,
    /// scanning the occupancy bitmap. Caller guarantees the wheel is
    /// non-empty.
    #[inline]
    fn scan_from(&self, start: usize) -> usize {
        let w0 = start / 64;
        let masked = self.occupancy[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            return w0 * 64 + masked.trailing_zeros() as usize;
        }
        for i in 1..=OCC_WORDS {
            let w = (w0 + i) % OCC_WORDS;
            let bits = self.occupancy[w];
            if bits != 0 {
                return w * 64 + bits.trailing_zeros() as usize;
            }
        }
        unreachable!("scan_from on an empty wheel");
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Events at equal timestamps pop in scheduling order
    /// (FIFO) or salted order (seeded) — identical to [`ReferenceQueue`].
    ///
    /// # Panics
    ///
    /// Panics if the queue's internal structures are inconsistent
    /// (unreachable through this API); embeddings that must survive
    /// that use [`EventQueue::try_pop`].
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.try_pop().expect("corrupt event queue")
    }

    /// [`EventQueue::pop`], but internal inconsistency comes back as a
    /// typed [`QueueCorruption`] instead of a panic, so a simulation
    /// driver can record the failure (e.g. in a chaos-oracle run
    /// report) and unwind cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`QueueCorruption`] when the occupancy bitmap, a wheel
    /// slot, and the payload slab disagree.
    pub fn try_pop(&mut self) -> Result<Option<(Cycle, E)>, QueueCorruption> {
        Ok(self.try_pop_keyed()?.map(|(at, _key, ev)| (at, ev)))
    }

    /// [`EventQueue::try_pop`], additionally returning the popped
    /// event's ordering key. The windowed parallel engine records the
    /// key of every pop to resolve provisional keys into canonical
    /// global ranks at window joins.
    ///
    /// # Errors
    ///
    /// Returns [`QueueCorruption`] as for [`EventQueue::try_pop`].
    pub fn try_pop_keyed(&mut self) -> Result<Option<(Cycle, u128, E)>, QueueCorruption> {
        // Window anchor: the wheel covers [base, base + WHEEL_SLOTS).
        // Normally base == now; if the wheel is empty, jump straight to
        // the earliest far event.
        let base = if self.wheel_len == 0 {
            match self.far.peek() {
                Some(&Reverse(e)) => e.at,
                None => return Ok(None),
            }
        } else {
            self.now
        };
        if !self.far.is_empty() {
            self.promote(base);
        }
        debug_assert!(self.wheel_len > 0);
        let slot = self.scan_from((base.0 & WHEEL_MASK) as usize);
        let dt = (slot as u64).wrapping_sub(base.0) & WHEEL_MASK;
        let at = Cycle(base.0 + dt);
        let Some(entry) = slot_pop(&mut self.slots[slot]) else {
            return Err(QueueCorruption::EmptySlot { slot });
        };
        if self.slots[slot].is_empty() {
            self.occupancy[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.wheel_len -= 1;
        let Some(event) = self.events.remove(entry.id) else {
            return Err(QueueCorruption::MissingPayload { at });
        };
        self.now = at;
        self.popped += 1;
        self.tracer.count("engine.events_dispatched", 1);
        Ok(Some((at, entry.key, event)))
    }

    /// Pops the earliest event only if it fires strictly before
    /// `limit`, returning it with its ordering key. The windowed
    /// parallel engine drains each shard's queue up to the window
    /// boundary with this.
    ///
    /// # Errors
    ///
    /// Returns [`QueueCorruption`] as for [`EventQueue::try_pop`].
    pub fn pop_before(
        &mut self,
        limit: Cycle,
    ) -> Result<Option<(Cycle, u128, E)>, QueueCorruption> {
        match self.peek_time() {
            Some(t) if t < limit => self.try_pop_keyed(),
            _ => Ok(None),
        }
    }

    /// The `(timestamp, key)` of the event [`EventQueue::pop`] would
    /// return, if any. The windowed engine's sequential merge picks the
    /// globally least `(time, key)` across shard queues with this.
    #[must_use]
    pub fn peek_key(&self) -> Option<(Cycle, u128)> {
        let wheel = if self.wheel_len > 0 {
            let slot = self.scan_from((self.now.0 & WHEEL_MASK) as usize);
            let dt = (slot as u64).wrapping_sub(self.now.0) & WHEEL_MASK;
            self.slots[slot]
                .first()
                .map(|e| (Cycle(self.now.0 + dt), e.key))
        } else {
            None
        };
        let far = self.far.peek().map(|&Reverse(e)| (e.at, e.key));
        match (wheel, far) {
            (Some(w), Some(f)) => Some(w.min(f)),
            (w, f) => w.or(f),
        }
    }

    /// The same-cycle ordering policy this queue was built with.
    #[must_use]
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// The next insertion sequence number. Part of the queue's
    /// checkpointable state: future FIFO tie-break keys derive from it,
    /// so a restored queue must resume the counter exactly.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Every pending event as `(at, key, seq, payload)`, sorted by the
    /// queue's total order `(at, key, seq)`. The deterministic ordering
    /// makes snapshot bytes a pure function of queue *state*, not of
    /// slab/heap layout history. Wheel timestamps are reconstructed
    /// from slot position relative to the window anchor (`now`); all
    /// wheel residents lie in `[now, now + WHEEL_SLOTS)` by
    /// construction.
    #[must_use]
    pub fn export_entries(&self) -> Vec<(Cycle, u128, u64, &E)> {
        let mut out = Vec::with_capacity(self.len());
        for (slot, entries) in self.slots.iter().enumerate() {
            let dt = (slot as u64).wrapping_sub(self.now.0) & WHEEL_MASK;
            let at = Cycle(self.now.0 + dt);
            for e in entries {
                let ev = self
                    .events
                    .get(e.id)
                    .expect("wheel entry payload missing from slab");
                out.push((at, e.key, e.seq, ev));
            }
        }
        for &Reverse(e) in &self.far {
            let ev = self
                .events
                .get(e.id)
                .expect("far entry payload missing from slab");
            out.push((e.at, e.key, e.seq, ev));
        }
        out.sort_by_key(|a| (a.0, a.1, a.2));
        out
    }

    /// Rebuilds a queue from checkpointed state: the clock, the
    /// insertion/pop counters, and every pending entry with its
    /// *original* `(key, seq)` — re-insertion must not re-key events,
    /// or same-cycle ordering (and thus the resumed run's fingerprint)
    /// would diverge from the uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics if an entry predates `now` or reuses a sequence number at
    /// or beyond `seq` (either means the snapshot is inconsistent).
    #[must_use]
    pub fn restore(
        tie_break: TieBreak,
        now: Cycle,
        seq: u64,
        popped: u64,
        entries: Vec<(Cycle, u128, u64, E)>,
    ) -> EventQueue<E> {
        let mut q = EventQueue::with_tie_break(tie_break);
        q.now = now;
        q.seq = seq;
        q.popped = popped;
        for (at, key, eseq, event) in entries {
            assert!(at >= now, "restored event at {at} predates now {now}");
            assert!(
                eseq < seq,
                "restored event seq {eseq} not below next seq {seq}"
            );
            let id = q.events.insert(event);
            if at.0 - now.0 < WHEEL_SLOTS as u64 {
                q.wheel_insert(at, SlotEntry { key, seq: eseq, id });
            } else {
                q.far.push(Reverse(FarEntry {
                    at,
                    key,
                    seq: eseq,
                    id,
                }));
            }
        }
        q
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        let wheel = if self.wheel_len > 0 {
            let slot = self.scan_from((self.now.0 & WHEEL_MASK) as usize);
            let dt = (slot as u64).wrapping_sub(self.now.0) & WHEEL_MASK;
            Some(Cycle(self.now.0 + dt))
        } else {
            None
        };
        let far = self.far.peek().map(|&Reverse(e)| e.at);
        match (wheel, far) {
            (Some(w), Some(f)) => Some(w.min(f)),
            (w, f) => w.or(f),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::rng::SmallRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(30), 3);
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(20), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(Cycle(10), 1), (Cycle(20), 2), (Cycle(30), 3)]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule_in(5, ());
        q.pop();
        assert_eq!(q.now(), Cycle(5));
        q.schedule_in(3, ());
        assert_eq!(q.peek_time(), Some(Cycle(8)));
        q.pop();
        assert_eq!(q.now(), Cycle(8));
        assert_eq!(q.events_processed(), 2);
        assert!(q.is_empty());
    }

    // The past-scheduling guard is a debug_assert, so the panic only
    // exists in debug builds; release test runs skip this.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), ());
        q.pop();
        q.schedule(Cycle(5), ());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    /// Popped timestamps are non-decreasing, and ties preserve
    /// insertion order, for arbitrary schedules.
    #[test]
    fn prop_time_order_with_stable_ties() {
        let mut rng = SmallRng::seed_from_u64(0xe191_0001);
        for _ in 0..256 {
            let n = rng.gen_range(1usize..200);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Cycle(rng.gen_range(0u64..50)), i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    assert!(t >= lt);
                    if t == lt {
                        assert!(i > li, "ties must pop in insertion order");
                    }
                }
                last = Some((t, i));
            }
        }
    }

    #[test]
    fn seeded_tie_break_is_deterministic_and_permutes() {
        let run = |tb: TieBreak| {
            let mut q = EventQueue::with_tie_break(tb);
            for i in 0..64 {
                q.schedule(Cycle(3), i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect::<Vec<i32>>()
        };
        let fifo = run(TieBreak::Fifo);
        let a1 = run(TieBreak::Seeded(0xabcd));
        let a2 = run(TieBreak::Seeded(0xabcd));
        let b = run(TieBreak::Seeded(0x1234));
        assert_eq!(a1, a2, "same salt must replay the same order");
        assert_ne!(a1, fifo, "a salt should permute same-cycle order");
        assert_ne!(a1, b, "different salts should explore different orders");
        // No event lost or duplicated, and FIFO is 0..64 in order.
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo);
    }

    #[test]
    fn seeded_tie_break_still_respects_time_order() {
        let mut rng = SmallRng::seed_from_u64(0xe191_0003);
        for salt in 0..32 {
            let mut q = EventQueue::with_tie_break(TieBreak::Seeded(salt));
            let n = rng.gen_range(1usize..200);
            for i in 0..n {
                q.schedule(Cycle(rng.gen_range(0u64..20)), i);
            }
            let mut seen = vec![false; n];
            let mut last = Cycle::ZERO;
            while let Some((t, i)) = q.pop() {
                assert!(t >= last);
                last = t;
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn caller_keys_order_same_cycle_events() {
        let mut q = EventQueue::new();
        // Insert out of key order; pops must follow the keys, not
        // insertion order — the property the windowed parallel engine
        // builds its canonical causal ordering on.
        q.schedule_with_key(Cycle(7), 30, "c");
        q.schedule_with_key(Cycle(7), 10, "a");
        q.schedule_with_key(Cycle(7), 20, "b");
        q.schedule_with_key(Cycle(3), u128::MAX, "first-by-time");
        assert_eq!(q.peek_key(), Some((Cycle(3), u128::MAX)));
        assert_eq!(q.pop(), Some((Cycle(3), "first-by-time")));
        assert_eq!(q.peek_key(), Some((Cycle(7), 10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "in-window");
        q.schedule(Cycle(9), "at-limit");
        assert_eq!(q.pop_before(Cycle(9)), Ok(Some((Cycle(5), 0, "in-window"))));
        assert_eq!(q.pop_before(Cycle(9)), Ok(None), "limit is exclusive");
        assert_eq!(q.pop_before(Cycle(10)), Ok(Some((Cycle(9), 1, "at-limit"))));
        assert_eq!(q.pop_before(Cycle(u64::MAX)), Ok(None));
    }

    /// Every scheduled event is popped exactly once.
    #[test]
    fn prop_no_event_lost() {
        let mut rng = SmallRng::seed_from_u64(0xe191_0002);
        for _ in 0..256 {
            let n = rng.gen_range(0usize..300);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Cycle(rng.gen_range(0u64..1000)), i);
            }
            let mut seen = vec![false; n];
            while let Some((_, i)) = q.pop() {
                assert!(!seen[i], "event {i} popped twice");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&b| b));
            assert_eq!(q.events_processed(), n as u64);
        }
    }

    /// Events past the wheel horizon live in the far heap and still pop
    /// in global order, including when the wheel is completely empty and
    /// the window has to jump forward.
    #[test]
    fn far_heap_promotion_and_window_jump() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "near");
        q.schedule(Cycle(500_000), "far");
        q.schedule(Cycle(WHEEL_SLOTS as u64 + 3), "just-past-horizon");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Cycle(5)));
        assert_eq!(q.pop(), Some((Cycle(5), "near")));
        assert_eq!(
            q.pop(),
            Some((Cycle(WHEEL_SLOTS as u64 + 3), "just-past-horizon"))
        );
        // Wheel empty, far event half a million cycles out: pop jumps.
        assert_eq!(q.peek_time(), Some(Cycle(500_000)));
        assert_eq!(q.pop(), Some((Cycle(500_000), "far")));
        assert_eq!(q.now(), Cycle(500_000));
        assert!(q.is_empty());
    }

    /// Export + restore reproduces the exact pop sequence of the
    /// original queue — including events scheduled *after* the restore
    /// point, whose FIFO keys depend on the restored `seq` counter —
    /// across tie-break policies and near/far placements.
    #[test]
    fn export_restore_round_trips_pending_events() {
        for tb in [TieBreak::Fifo, TieBreak::Seeded(0xfeed)] {
            let mut rng = SmallRng::seed_from_u64(0xe191_0004);
            let mut q = EventQueue::with_tie_break(tb);
            for i in 0..200usize {
                // Mix of same-cycle ties, near events, and far events.
                let at = match i % 5 {
                    0 => 40,
                    4 => WHEEL_SLOTS as u64 * 3 + rng.gen_range(0u64..100),
                    _ => rng.gen_range(0u64..2000),
                };
                q.schedule(Cycle(at), i);
            }
            for _ in 0..37 {
                q.pop();
            }
            let entries: Vec<(Cycle, u128, u64, usize)> = q
                .export_entries()
                .into_iter()
                .map(|(at, key, seq, &ev)| (at, key, seq, ev))
                .collect();
            assert_eq!(entries.len(), q.len());
            assert!(entries
                .windows(2)
                .all(|w| { (w[0].0, w[0].1, w[0].2) < (w[1].0, w[1].1, w[1].2) }));
            let mut restored = EventQueue::restore(
                q.tie_break(),
                q.now(),
                q.next_seq(),
                q.events_processed(),
                entries,
            );
            assert_eq!(restored.len(), q.len());
            assert_eq!(restored.now(), q.now());
            // Post-restore scheduling must continue the key stream.
            for i in 500..520usize {
                let at = q.now() + 10 + (i as u64 % 7);
                q.schedule(at, i);
                restored.schedule(at, i);
            }
            loop {
                let a = q.pop();
                let b = restored.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(q.events_processed(), restored.events_processed());
        }
    }

    /// A far event whose deadline comes to undercut wheel-resident
    /// events must be promoted before they pop.
    #[test]
    fn far_event_undercuts_wheel_entries() {
        let mut q = EventQueue::new();
        // Far event at WHEEL_SLOTS + 10 (beyond horizon at t=0).
        q.schedule(Cycle(WHEEL_SLOTS as u64 + 10), "far");
        // March time forward with filler events.
        q.schedule(Cycle(100), "a");
        assert_eq!(q.pop(), Some((Cycle(100), "a")));
        // Now schedule a wheel event *after* the far deadline.
        q.schedule(Cycle(WHEEL_SLOTS as u64 + 50), "wheel-late");
        assert_eq!(q.pop(), Some((Cycle(WHEEL_SLOTS as u64 + 10), "far")));
        assert_eq!(
            q.pop(),
            Some((Cycle(WHEEL_SLOTS as u64 + 50), "wheel-late"))
        );
    }
}
