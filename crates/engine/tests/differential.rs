//! Differential tests: the timing-wheel [`EventQueue`] must pop the
//! exact same `(cycle, event)` stream as the retained binary-heap
//! [`ReferenceQueue`], for arbitrary interleavings of schedules and
//! pops, under both tie-break modes.
//!
//! The schedules are adversarial for wheel implementations: delays
//! clustered just below/at/above the wheel horizon (`WHEEL_SLOTS`),
//! wrap-around boundaries, heavy same-cycle contention, and rare huge
//! delays that must sit in the far heap and be promoted as the window
//! advances.

use tcc_engine::{EventQueue, ReferenceQueue, TieBreak, WHEEL_SLOTS};
use tcc_types::rng::SmallRng;
use tcc_types::Cycle;

/// Drives both queues through an identical random schedule/pop script
/// and asserts lockstep-identical observable behaviour.
fn lockstep(seed: u64, tie_break: TieBreak, delays: &dyn Fn(&mut SmallRng) -> u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut wheel = EventQueue::with_tie_break(tie_break);
    let mut oracle = ReferenceQueue::with_tie_break(tie_break);
    let ops = rng.gen_range(50usize..600);
    let mut next_id: u32 = 0;
    for _ in 0..ops {
        // Mixed bursts: schedule a few, pop a few, so the window keeps
        // moving while events are in flight.
        let burst = rng.gen_range(1usize..8);
        for _ in 0..burst {
            let d = delays(&mut rng);
            // Same-cycle contention: occasionally duplicate the delay
            // several times.
            let copies = if rng.gen_range(0u32..4) == 0 {
                rng.gen_range(1usize..6)
            } else {
                1
            };
            for _ in 0..copies {
                let at = Cycle(wheel.now().0 + d);
                wheel.schedule(at, next_id);
                oracle.schedule(at, next_id);
                next_id += 1;
            }
        }
        assert_eq!(wheel.len(), oracle.len());
        assert_eq!(wheel.peek_time(), oracle.peek_time());
        let pops = rng.gen_range(0usize..10);
        for _ in 0..pops {
            let w = wheel.pop();
            let o = oracle.pop();
            assert_eq!(w, o, "pop stream diverged (tie_break {tie_break:?})");
            assert_eq!(wheel.now(), oracle.now());
            if w.is_none() {
                break;
            }
        }
    }
    // Drain both to the end.
    loop {
        let w = wheel.pop();
        let o = oracle.pop();
        assert_eq!(w, o, "drain diverged (tie_break {tie_break:?})");
        if w.is_none() {
            break;
        }
    }
    assert_eq!(wheel.events_processed(), oracle.events_processed());
    assert_eq!(wheel.now(), oracle.now());
}

const MODES: [TieBreak; 3] = [
    TieBreak::Fifo,
    TieBreak::Seeded(0x5eed_cafe),
    TieBreak::Seeded(0x0123_4567_89ab_cdef),
];

#[test]
fn short_delays_like_the_simulator() {
    // Link/controller-latency-shaped delays: the common case.
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..80 {
            lockstep(0xd1ff_0000 + round + 1000 * i as u64, *tb, &|rng| {
                rng.gen_range(0u64..64)
            });
        }
    }
}

#[test]
fn delays_straddling_the_wheel_horizon() {
    // Cluster just below / at / above WHEEL_SLOTS so events land on both
    // sides of the near/far split and exercise promotion.
    let span = WHEEL_SLOTS as u64;
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..60 {
            lockstep(0xd1ff_1000 + round + 1000 * i as u64, *tb, &|rng| {
                span - 3 + rng.gen_range(0u64..6)
            });
        }
    }
}

#[test]
fn wheel_wrap_boundaries() {
    // Delays near multiples of the wheel size hit the same slots
    // repeatedly as time wraps the wheel.
    let span = WHEEL_SLOTS as u64;
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..60 {
            lockstep(0xd1ff_2000 + round + 1000 * i as u64, *tb, &|rng| {
                let k = rng.gen_range(0u64..3);
                k * span + rng.gen_range(0u64..4)
            });
        }
    }
}

#[test]
fn rare_long_timers_in_the_far_heap() {
    // Mostly short delays with occasional RTO/watchdog-scale timers.
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..60 {
            lockstep(0xd1ff_3000 + round + 1000 * i as u64, *tb, &|rng| {
                if rng.gen_range(0u32..10) == 0 {
                    rng.gen_range(0u64..200_000)
                } else {
                    rng.gen_range(0u64..32)
                }
            });
        }
    }
}

#[test]
fn zero_delay_storms() {
    // Everything at `now`: pure tie-break ordering under both modes.
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..40 {
            lockstep(0xd1ff_4000 + round + 1000 * i as u64, *tb, &|rng| {
                if rng.gen_range(0u32..5) == 0 {
                    rng.gen_range(0u64..3)
                } else {
                    0
                }
            });
        }
    }
}

#[test]
fn uniform_delays_across_three_windows() {
    // Uniform up to 3x the wheel span: a mix of near and far events with
    // constant promotion churn.
    let span = WHEEL_SLOTS as u64;
    for (i, tb) in MODES.iter().enumerate() {
        for round in 0..60 {
            lockstep(0xd1ff_5000 + round + 1000 * i as u64, *tb, &|rng| {
                rng.gen_range(0u64..3 * span)
            });
        }
    }
}
