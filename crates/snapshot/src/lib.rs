//! Versioned, checksummed containers for simulator-state snapshots,
//! plus the append-only run journal that records checkpoint lineage.
//!
//! # Container format: `tcc-snapshot/v1`
//!
//! A snapshot file is a fixed header followed by an opaque body (the
//! component-by-component state stream produced by
//! `tcc_types::snap::SnapWriter`):
//!
//! ```text
//! offset  size  field
//!      0     8  magic            b"TCCSNAP1"
//!      8     2  version          u16 LE (currently 1)
//!     10     8  config_digest    u64 LE — digest of the SystemConfig
//!     18     8  at_cycle         u64 LE — simulated cycle of capture
//!     26     8  body_len         u64 LE
//!     34     8  body_checksum    u64 LE — FNV-1a over the body bytes
//!     42     8  header_checksum  u64 LE — FNV-1a over bytes [0, 42)
//!     50   ...  body
//! ```
//!
//! The header checksum makes a torn or bit-rotted header detectable
//! before any length field is trusted; the body checksum catches
//! corruption of the state stream itself. The config is deliberately
//! *not* stored in the snapshot — a resuming process reconstructs all
//! wiring from its own `SystemConfig` and the digest gates against
//! resuming under a different configuration.
//!
//! # Run journal
//!
//! The journal is an append-only text file, one line per checkpoint:
//!
//! ```text
//! v1<TAB>seq<TAB>parent-or-dash<TAB>cycle<TAB>digest-hex<TAB>path<TAB>note
//! ```
//!
//! Appends write a complete line (terminated by `\n`) and flush; a
//! process killed mid-append leaves at most one torn final line, which
//! [`Journal::open`] silently drops. Torn or malformed lines anywhere
//! *else* indicate real corruption and are reported as errors. The
//! `parent` field records lineage: which earlier checkpoint (if any)
//! the run producing this checkpoint was itself resumed from.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot container.
pub const MAGIC: &[u8; 8] = b"TCCSNAP1";

/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the fixed container header in bytes.
pub const HEADER_BYTES: usize = 8 + 2 + 8 + 8 + 8 + 8 + 8;

/// FNV-1a over a byte slice — the same hash the simulator uses for
/// result fingerprints, so checksum mismatches and fingerprint
/// mismatches are comparable artifacts.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything that can go wrong reading a snapshot or journal.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The byte stream ended before the declared content.
    Truncated { wanted: usize, have: usize },
    /// The header bytes do not match their own checksum.
    HeaderCorrupt { stored: u64, computed: u64 },
    /// The body bytes do not match the header's body checksum.
    BodyCorrupt { stored: u64, computed: u64 },
    /// Bytes remain after the declared body — the file was appended to
    /// or two snapshots were concatenated.
    TrailingBytes(usize),
    /// The snapshot was taken under a different `SystemConfig`.
    ConfigMismatch { snapshot: u64, current: u64 },
    /// A journal line (other than a torn tail) failed to parse.
    JournalCorrupt { line_no: usize, detail: String },
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a tcc-snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated { wanted, have } => {
                write!(f, "snapshot truncated: wanted {wanted} bytes, have {have}")
            }
            SnapshotError::HeaderCorrupt { stored, computed } => write!(
                f,
                "snapshot header corrupt: checksum {stored:#018x} stored, {computed:#018x} computed"
            ),
            SnapshotError::BodyCorrupt { stored, computed } => write!(
                f,
                "snapshot body corrupt: checksum {stored:#018x} stored, {computed:#018x} computed"
            ),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot body")
            }
            SnapshotError::ConfigMismatch { snapshot, current } => write!(
                f,
                "snapshot taken under config digest {snapshot:#018x}, \
                 current config digest is {current:#018x}"
            ),
            SnapshotError::JournalCorrupt { line_no, detail } => {
                write!(f, "journal line {line_no} corrupt: {detail}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A decoded snapshot: the header metadata plus the opaque state body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Digest of the `SystemConfig` the capturing simulator ran under.
    pub config_digest: u64,
    /// Simulated cycle at which state was captured.
    pub at_cycle: u64,
    /// The component state stream (a `SnapWriter` byte stream).
    pub body: Vec<u8>,
}

impl Snapshot {
    /// Serializes the snapshot into the `tcc-snapshot/v1` container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.config_digest.to_le_bytes());
        out.extend_from_slice(&self.at_cycle.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.body).to_le_bytes());
        let header_sum = fnv1a(&out);
        out.extend_from_slice(&header_sum.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses and fully validates a `tcc-snapshot/v1` container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_BYTES {
            // Distinguish "not even our magic" from "our magic, torn".
            if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated {
                wanted: HEADER_BYTES,
                have: bytes.len(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let stored_header_sum = u64_at(HEADER_BYTES - 8);
        let computed_header_sum = fnv1a(&bytes[..HEADER_BYTES - 8]);
        if stored_header_sum != computed_header_sum {
            return Err(SnapshotError::HeaderCorrupt {
                stored: stored_header_sum,
                computed: computed_header_sum,
            });
        }
        let version = u16_at(8);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let config_digest = u64_at(10);
        let at_cycle = u64_at(18);
        let body_len = usize::try_from(u64_at(26)).expect("body length fits usize");
        let stored_body_sum = u64_at(34);
        let have_body = bytes.len() - HEADER_BYTES;
        if have_body < body_len {
            return Err(SnapshotError::Truncated {
                wanted: HEADER_BYTES + body_len,
                have: bytes.len(),
            });
        }
        if have_body > body_len {
            return Err(SnapshotError::TrailingBytes(have_body - body_len));
        }
        let body = &bytes[HEADER_BYTES..];
        let computed_body_sum = fnv1a(body);
        if stored_body_sum != computed_body_sum {
            return Err(SnapshotError::BodyCorrupt {
                stored: stored_body_sum,
                computed: computed_body_sum,
            });
        }
        Ok(Snapshot {
            config_digest,
            at_cycle,
            body: body.to_vec(),
        })
    }

    /// Errors unless the snapshot's config digest matches `current` —
    /// call before feeding the body to component restore code.
    pub fn check_config(&self, current: u64) -> Result<(), SnapshotError> {
        if self.config_digest != current {
            return Err(SnapshotError::ConfigMismatch {
                snapshot: self.config_digest,
                current,
            });
        }
        Ok(())
    }

    /// Writes the container to `path` crash-safely: the bytes land in a
    /// sibling temporary file which is fsynced and then renamed into
    /// place, so a kill mid-write never leaves a torn file at `path`.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a container from disk.
    pub fn read_file(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(&fs::read(path)?)
    }
}

/// One journal line: a checkpoint and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotonic checkpoint number within this journal.
    pub seq: u64,
    /// The checkpoint this run was resumed from, if any — the lineage
    /// edge. `None` for checkpoints of an uninterrupted run.
    pub parent: Option<u64>,
    /// Simulated cycle of the checkpoint.
    pub cycle: u64,
    /// Config digest of the capturing run.
    pub digest: u64,
    /// Path of the snapshot file (as given at append time).
    pub path: String,
    /// Free-form annotation (tabs and newlines replaced by spaces).
    pub note: String,
}

impl JournalEntry {
    fn to_line(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        format!(
            "v1\t{}\t{}\t{}\t{:016x}\t{}\t{}\n",
            self.seq, parent, self.cycle, self.digest, self.path, self.note
        )
    }

    fn parse(line: &str) -> Result<JournalEntry, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "expected 7 tab-separated fields, got {}",
                fields.len()
            ));
        }
        if fields[0] != "v1" {
            return Err(format!("unknown journal line version {:?}", fields[0]));
        }
        let seq = fields[1]
            .parse::<u64>()
            .map_err(|e| format!("bad seq: {e}"))?;
        let parent = if fields[2] == "-" {
            None
        } else {
            Some(
                fields[2]
                    .parse::<u64>()
                    .map_err(|e| format!("bad parent: {e}"))?,
            )
        };
        let cycle = fields[3]
            .parse::<u64>()
            .map_err(|e| format!("bad cycle: {e}"))?;
        let digest = u64::from_str_radix(fields[4], 16).map_err(|e| format!("bad digest: {e}"))?;
        Ok(JournalEntry {
            seq,
            parent,
            cycle,
            digest,
            path: fields[5].to_string(),
            note: fields[6].to_string(),
        })
    }
}

/// The append-only checkpoint-lineage journal of one soak run.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Opens (or creates) a journal file and loads its entries. A
    /// malformed *final* line — the signature of a process killed
    /// mid-append — is dropped silently; malformed interior lines are
    /// corruption and error out.
    pub fn open(path: impl Into<PathBuf>) -> Result<Journal, SnapshotError> {
        let path = path.into();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        let mut entries = Vec::new();
        let mut seen = BTreeSet::new();
        // Only lines terminated by '\n' are committed; a torn tail has
        // no terminator. Splitting inclusive keeps that distinction.
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        for (i, raw) in lines.iter().enumerate() {
            let committed = raw.ends_with('\n');
            let line = raw.trim_end_matches('\n');
            if line.is_empty() {
                continue;
            }
            match JournalEntry::parse(line) {
                Ok(e) => {
                    if !committed && i == lines.len() - 1 {
                        // Parsed but unterminated: the append died
                        // between write and newline — not trustworthy.
                        break;
                    }
                    if !seen.insert(e.seq) {
                        return Err(SnapshotError::JournalCorrupt {
                            line_no: i + 1,
                            detail: format!("duplicate seq {}", e.seq),
                        });
                    }
                    entries.push(e);
                }
                Err(detail) => {
                    if i == lines.len() - 1 {
                        break; // torn tail from a crash mid-append
                    }
                    return Err(SnapshotError::JournalCorrupt {
                        line_no: i + 1,
                        detail,
                    });
                }
            }
        }
        Ok(Journal { path, entries })
    }

    /// All committed entries, in append order.
    #[must_use]
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The most recent checkpoint, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&JournalEntry> {
        self.entries.last()
    }

    /// Looks up a checkpoint by sequence number.
    #[must_use]
    pub fn find(&self, seq: u64) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }

    /// Appends a checkpoint record and flushes it to disk. Returns the
    /// committed entry (with its assigned sequence number).
    pub fn append(
        &mut self,
        parent: Option<u64>,
        cycle: u64,
        digest: u64,
        path: &str,
        note: &str,
    ) -> Result<&JournalEntry, SnapshotError> {
        let seq = self.entries.last().map_or(0, |e| e.seq + 1);
        let sanitize = |s: &str| s.replace(['\t', '\n', '\r'], " ");
        let entry = JournalEntry {
            seq,
            parent,
            cycle,
            digest,
            path: sanitize(path),
            note: sanitize(note),
        };
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(entry.to_line().as_bytes())?;
        f.sync_all()?;
        self.entries.push(entry);
        Ok(self.entries.last().expect("just pushed"))
    }

    /// The lineage chain of `seq`: the entry itself, its parent, its
    /// parent's parent, … oldest last.
    #[must_use]
    pub fn lineage(&self, seq: u64) -> Vec<&JournalEntry> {
        let mut chain = Vec::new();
        let mut cur = self.find(seq);
        while let Some(e) = cur {
            chain.push(e);
            cur = e.parent.and_then(|p| self.find(p));
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(body: &[u8]) -> Snapshot {
        Snapshot {
            config_digest: 0xdead_beef_cafe_f00d,
            at_cycle: 123_456,
            body: body.to_vec(),
        }
    }

    #[test]
    fn container_round_trips() {
        let s = snap(b"some component state stream");
        let bytes = s.to_bytes();
        assert_eq!(&bytes[..8], MAGIC);
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert!(back.check_config(0xdead_beef_cafe_f00d).is_ok());
        assert!(matches!(
            back.check_config(1),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn empty_body_round_trips() {
        let s = snap(b"");
        assert_eq!(Snapshot::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn corruption_is_detected_everywhere() {
        let s = snap(b"state bytes that matter");
        let good = s.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        ));

        // Any header flip after the magic trips the header checksum.
        for off in 8..HEADER_BYTES - 8 {
            let mut b = good.clone();
            b[off] ^= 0x01;
            assert!(
                matches!(
                    Snapshot::from_bytes(&b),
                    Err(SnapshotError::HeaderCorrupt { .. })
                ),
                "flip at header offset {off} went undetected"
            );
        }

        let mut bad_body = good.clone();
        *bad_body.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bad_body),
            Err(SnapshotError::BodyCorrupt { .. })
        ));

        for cut in [good.len() - 1, HEADER_BYTES + 3, HEADER_BYTES, 9, 0] {
            assert!(
                matches!(
                    Snapshot::from_bytes(&good[..cut]),
                    Err(SnapshotError::Truncated { .. })
                ),
                "truncation to {cut} bytes went undetected"
            );
        }

        let mut appended = good.clone();
        appended.extend_from_slice(b"xx");
        assert!(matches!(
            Snapshot::from_bytes(&appended),
            Err(SnapshotError::TrailingBytes(2))
        ));
    }

    #[test]
    fn future_versions_are_refused() {
        let s = snap(b"abc");
        let mut bytes = s.to_bytes();
        bytes[8..10].copy_from_slice(&2u16.to_le_bytes());
        // Re-seal the header so only the version is "wrong".
        let sum = fnv1a(&bytes[..HEADER_BYTES - 8]);
        bytes[HEADER_BYTES - 8..HEADER_BYTES].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("tcc-snapshot-test-atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.tccsnap");
        let s = snap(&[7u8; 1000]);
        s.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::read_file(&path).unwrap(), s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_appends_and_reopens() {
        let dir = std::env::temp_dir().join("tcc-snapshot-test-journal");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let _ = fs::remove_file(&path);

        let mut j = Journal::open(&path).unwrap();
        assert!(j.entries().is_empty());
        j.append(None, 1000, 0xabc, "ckpt-0.tccsnap", "periodic")
            .unwrap();
        j.append(None, 2000, 0xabc, "ckpt-1.tccsnap", "periodic")
            .unwrap();
        // Simulate a resume from seq 1 in a later process.
        let mut j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.entries().len(), 2);
        assert_eq!(j2.latest().unwrap().cycle, 2000);
        j2.append(Some(1), 3000, 0xabc, "ckpt-2.tccsnap", "resumed")
            .unwrap();

        let j3 = Journal::open(&path).unwrap();
        assert_eq!(j3.entries().len(), 3);
        let chain: Vec<u64> = j3.lineage(2).iter().map(|e| e.seq).collect();
        assert_eq!(chain, vec![2, 1]);
        assert_eq!(j3.find(2).unwrap().parent, Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_tolerates_torn_tail_but_not_interior_corruption() {
        let dir = std::env::temp_dir().join("tcc-snapshot-test-torn");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");

        fs::write(
            &path,
            "v1\t0\t-\t100\t00000000000000ab\ta.tccsnap\tok\n\
             v1\t1\t0\t200\t00000000000000ab\tb.tccsnap\tok\n\
             v1\t2\t1\t3",
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries().len(), 2, "torn tail must be dropped");
        assert_eq!(j.latest().unwrap().seq, 1);

        // A parseable but newline-less tail is equally untrusted.
        fs::write(
            &path,
            "v1\t0\t-\t100\t00000000000000ab\ta.tccsnap\tok\n\
             v1\t1\t0\t200\t00000000000000ab\tb.tccsnap\tok",
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries().len(), 1);

        fs::write(
            &path,
            "v1\t0\t-\tgarbage\t00000000000000ab\ta.tccsnap\tok\n\
             v1\t1\t0\t200\t00000000000000ab\tb.tccsnap\tok\n",
        )
        .unwrap();
        assert!(matches!(
            Journal::open(&path),
            Err(SnapshotError::JournalCorrupt { line_no: 1, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_sanitizes_notes() {
        let dir = std::env::temp_dir().join("tcc-snapshot-test-sanitize");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let _ = fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.append(None, 1, 2, "p", "note\twith\ntabs").unwrap();
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.entries()[0].note, "note with tabs");
        fs::remove_dir_all(&dir).unwrap();
    }
}
