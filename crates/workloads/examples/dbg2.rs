use tcc_core::{Simulator, SystemConfig};
use tcc_workloads::apps;

fn main() {
    for (label, swf, sf) in [
        ("asis", -1.0, -1.0),
        ("no-wr-share", 0.0, -1.0),
        ("no-share", 0.0, 0.0),
    ] {
        let mut app = apps::volrend();
        if swf >= 0.0 {
            app.shared_write_frac = swf;
        }
        if sf >= 0.0 {
            app.shared_frac = sf;
        }
        let base = Simulator::builder(SystemConfig::with_procs(1))
            .programs(app.generate(1, 7))
            .build()
            .expect("valid config")
            .run()
            .total_cycles;
        for n in [32usize, 64] {
            let r = Simulator::builder(SystemConfig::with_procs(n))
                .programs(app.generate(n, 7))
                .build()
                .expect("valid config")
                .run();
            let agg = r.aggregate();
            println!("{label:12} p{n:<2} speedup={:5.1} viol={:4} useful%={:4.1} miss%={:4.1} commit%={:4.1} idle%={:4.1} vio%={:4.1}",
                base as f64 / r.total_cycles as f64, r.violations,
                100.0*agg.useful as f64/agg.total() as f64,
                100.0*agg.cache_miss as f64/agg.total() as f64,
                100.0*agg.commit as f64/agg.total() as f64,
                100.0*agg.idle as f64/agg.total() as f64,
                100.0*agg.violation as f64/agg.total() as f64);
            let tid_wait: u64 = r.proc_counters.iter().map(|c| c.tid_wait).sum();
            let probe_wait: u64 = r.proc_counters.iter().map(|c| c.probe_wait).sum();
            println!("              tid_wait/commit={:6.0}  probe_wait/commit={:6.0}  commit_cy/commit={:6.0}",
                tid_wait as f64 / r.commits as f64,
                probe_wait as f64 / r.commits as f64,
                agg.commit as f64 / r.commits as f64);
        }
    }
}
