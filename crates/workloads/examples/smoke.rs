//! Full-scale scaling sanity: run each app at several machine sizes and
//! report speedups (normalized to 1 processor).
use tcc_core::{Simulator, SystemConfig};
use tcc_workloads::apps;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args.get(1).cloned();
    for app in apps::all() {
        if let Some(f) = &filter {
            if !app.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let base = {
            let cfg = SystemConfig::with_procs(1);
            let r = Simulator::builder(cfg)
                .programs(app.generate(1, 7))
                .build()
                .expect("valid config")
                .run();
            r.total_cycles
        };
        print!("{:16} base={:10}", app.name, base);
        for n in [8usize, 32, 64] {
            let cfg = SystemConfig::with_procs(n);
            let r = Simulator::builder(cfg)
                .programs(app.generate(n, 7))
                .build()
                .expect("valid config")
                .run();
            print!(
                "  p{:<2} speedup={:5.1} viol={:4} commit%={:4.1}",
                n,
                base as f64 / r.total_cycles as f64,
                r.violations,
                100.0 * r.aggregate().commit as f64 / r.aggregate().total() as f64
            );
        }
        println!();
    }
}
