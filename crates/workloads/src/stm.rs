//! Workloads for the `tcc-stm` runtime (real threads, not the
//! simulator).
//!
//! The STM bench needs op streams over *cell indices*, not simulated
//! byte addresses, so these profiles are deliberately decoupled from
//! [`tcc_core::ThreadProgram`]. Two access patterns bracket the space
//! the paper's protocol cares about:
//!
//! * **Zipfian** — skewed hot-spot access (θ ≈ 0.9, the YCSB default),
//!   where conflicts are common and commit-ordering pressure is real.
//! * **Disjoint** — each thread owns a private slice of the cell
//!   array, the embarrassingly-parallel case where a scalable commit
//!   protocol must beat a coarse global lock.
//!
//! Generation is fully deterministic: the same `(profile, threads,
//! seed)` triple always yields the same scripts, so baseline and STM
//! runs measure identical work.

use crate::sampling::{stream_rng, Zipf};
use tcc_types::rng::SmallRng;

/// One access inside an STM transaction, by cell index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmOp {
    Read(usize),
    Write(usize),
}

/// One scripted transaction: reads and read-modify-writes over cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmTx {
    pub ops: Vec<StmOp>,
}

/// How a thread picks the cells it touches.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Access {
    /// All threads sample all cells from one Zipfian(θ) distribution.
    Zipfian { theta: f64 },
    /// Thread `t` touches only cells `t*stride .. (t+1)*stride`.
    Disjoint { stride: usize },
}

/// A parameterized STM workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct StmProfile {
    pub name: &'static str,
    n_cells: usize,
    reads_per_tx: usize,
    writes_per_tx: usize,
    access: Access,
}

impl StmProfile {
    /// Skewed shared-array workload: `n_cells` cells sampled Zipfian
    /// with exponent `theta` (0.9 ≈ YCSB's default skew).
    #[must_use]
    pub fn zipfian(n_cells: usize, theta: f64) -> StmProfile {
        assert!(n_cells > 0, "need at least one cell");
        assert!(theta >= 0.0, "negative skew is meaningless");
        StmProfile {
            name: "zipfian",
            n_cells,
            reads_per_tx: 4,
            writes_per_tx: 2,
            access: Access::Zipfian { theta },
        }
    }

    /// Disjoint-access workload: each thread owns `cells_per_thread`
    /// private cells. The cell count is finalized by [`generate`]
    /// (it depends on the thread count).
    ///
    /// [`generate`]: StmProfile::generate
    #[must_use]
    pub fn disjoint(cells_per_thread: usize) -> StmProfile {
        assert!(cells_per_thread > 0, "need at least one cell per thread");
        StmProfile {
            name: "disjoint",
            n_cells: 0, // threads × stride, fixed at generation time
            reads_per_tx: 4,
            writes_per_tx: 2,
            access: Access::Disjoint {
                stride: cells_per_thread,
            },
        }
    }

    /// Overrides the per-transaction footprint (reads, read-modify-
    /// writes).
    #[must_use]
    pub fn with_footprint(mut self, reads: usize, writes: usize) -> StmProfile {
        assert!(reads + writes > 0, "empty transactions measure nothing");
        self.reads_per_tx = reads;
        self.writes_per_tx = writes;
        self
    }

    /// How many cells a run generated for `threads` threads must
    /// allocate.
    #[must_use]
    pub fn cells_for(&self, threads: usize) -> usize {
        match self.access {
            Access::Zipfian { .. } => self.n_cells,
            Access::Disjoint { stride } => threads * stride,
        }
    }

    /// Generates one deterministic script per thread: `txs_per_thread`
    /// transactions, each with this profile's footprint. Every cell
    /// index returned is `< cells_for(threads)`.
    #[must_use]
    pub fn generate(&self, threads: usize, txs_per_thread: usize, seed: u64) -> Vec<Vec<StmTx>> {
        assert!(threads > 0, "need at least one thread");
        let zipf = match self.access {
            Access::Zipfian { theta } => Some(Zipf::new(self.n_cells, theta)),
            Access::Disjoint { .. } => None,
        };
        (0..threads)
            .map(|t| {
                // Per-thread stream: thread counts don't perturb each
                // other's scripts.
                let mut rng = stream_rng(seed, t as u64);
                (0..txs_per_thread)
                    .map(|_| {
                        let pick = |rng: &mut SmallRng| match self.access {
                            Access::Zipfian { .. } => {
                                zipf.as_ref().expect("zipf table built above").sample(rng)
                            }
                            Access::Disjoint { stride } => t * stride + rng.gen_range(0..stride),
                        };
                        let mut ops = Vec::with_capacity(self.reads_per_tx + self.writes_per_tx);
                        for _ in 0..self.reads_per_tx {
                            let c = pick(&mut rng);
                            ops.push(StmOp::Read(c));
                        }
                        for _ in 0..self.writes_per_tx {
                            let c = pick(&mut rng);
                            // Read-modify-write: the conflict shape the
                            // commit protocol actually arbitrates.
                            ops.push(StmOp::Read(c));
                            ops.push(StmOp::Write(c));
                        }
                        StmTx { ops }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let p = StmProfile::zipfian(64, 0.9);
        let a = p.generate(4, 50, 7);
        let b = p.generate(4, 50, 7);
        assert_eq!(a, b, "same seed must reproduce the same scripts");
        assert_ne!(a, p.generate(4, 50, 8), "seed must matter");
        for script in &a {
            assert_eq!(script.len(), 50);
            for tx in script {
                for op in &tx.ops {
                    let (StmOp::Read(c) | StmOp::Write(c)) = *op;
                    assert!(c < p.cells_for(4));
                }
            }
        }
    }

    #[test]
    fn zipfian_is_actually_skewed() {
        let p = StmProfile::zipfian(256, 0.9);
        let scripts = p.generate(1, 2_000, 42);
        let mut counts = vec![0u64; 256];
        for tx in &scripts[0] {
            for op in &tx.ops {
                let (StmOp::Read(c) | StmOp::Write(c)) = *op;
                counts[c] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let top8: u64 = {
            let mut sorted = counts.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted[..8].iter().sum()
        };
        // With θ=0.9 over 256 cells the 8 hottest cells draw far more
        // than their uniform share (8/256 ≈ 3%).
        assert!(
            top8 * 5 > total,
            "hot set drew only {top8}/{total} accesses — not Zipfian"
        );
    }

    #[test]
    fn disjoint_threads_never_share_cells() {
        let p = StmProfile::disjoint(16);
        let scripts = p.generate(4, 200, 99);
        assert_eq!(p.cells_for(4), 64);
        for (t, script) in scripts.iter().enumerate() {
            for tx in script {
                for op in &tx.ops {
                    let (StmOp::Read(c) | StmOp::Write(c)) = *op;
                    assert!(
                        (t * 16..(t + 1) * 16).contains(&c),
                        "thread {t} escaped its slice: cell {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn footprint_override_shapes_transactions() {
        let p = StmProfile::zipfian(8, 0.5).with_footprint(1, 3);
        let scripts = p.generate(2, 10, 1);
        for tx in &scripts[0] {
            let reads = tx
                .ops
                .iter()
                .filter(|o| matches!(o, StmOp::Read(_)))
                .count();
            let writes = tx
                .ops
                .iter()
                .filter(|o| matches!(o, StmOp::Write(_)))
                .count();
            assert_eq!(writes, 3);
            // Each write is a read-modify-write, so reads = 1 + 3.
            assert_eq!(reads, 4);
        }
    }
}
