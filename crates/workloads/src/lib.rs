//! Synthetic application workloads for the Scalable TCC reproduction.
//!
//! The paper evaluates eleven applications (§4.1, Table 3): barnes,
//! Cluster GA, equake, radix, SPECjbb2000, SVM Classify, swim, tomcatv,
//! volrend, water-nsquared, and water-spatial — compiled PowerPC
//! binaries with the code between barriers converted to continuous
//! transactions. We cannot run those binaries, so each application is
//! reproduced as a **parameterized transaction-trace generator**
//! ([`AppProfile`]) tuned to the characteristics the paper reports:
//!
//! * 90th-percentile transaction size in instructions (200 … 45 000),
//! * read-/write-set sizes (read ≤ 16 KB, write ≤ 8 KB at the 90th
//!   percentile),
//! * operations per word written (≈ 6 … 640),
//! * directories touched per commit (1–2 common; radix touches all),
//! * sharing/communication intensity and barrier structure.
//!
//! These are the protocol-relevant properties that drive every figure:
//! commit bandwidth, conflict rates, locality, and traffic. The per-app
//! parameter values live in [`apps`]; DESIGN.md documents the
//! substitution.
//!
//! # Example
//!
//! ```
//! use tcc_workloads::apps;
//!
//! let app = apps::by_name("swim").expect("known app");
//! let programs = app.generate(4, 0x5eed);
//! assert_eq!(programs.len(), 4);
//! // swim's transactions are huge (tens of thousands of instructions).
//! let total: u64 = programs.iter().map(|p| p.instructions()).sum();
//! assert!(total > 100_000);
//! ```

pub mod apps;
pub mod micro;
mod profile;
pub mod sampling;
pub mod stm;

pub use profile::{AppProfile, Scale};
