//! The eleven applications of Table 3, as calibrated profiles.
//!
//! Each profile reproduces the published per-application
//! characteristics (transaction size, read/write-set footprint,
//! operations per word written, locality, and communication pattern)
//! rather than the applications' numerical output — see DESIGN.md for
//! the substitution rationale. The doc comment of each constructor
//! records the behaviour the paper reports and how the parameters
//! realize it.

use crate::profile::AppProfile;

/// `barnes` (SPLASH-2, 16 384 molecules): N-body tree code. Medium
/// transactions, modest communication through the shared octree; all
/// execution-time components scale down with processor count, and
/// commit time stays negligible even at 64 processors.
#[must_use]
pub fn barnes() -> AppProfile {
    AppProfile {
        name: "barnes",
        input: "16,384 mol.",
        tx_instr: 2_200,
        reads: 300,
        writes: 40,
        shared_frac: 0.06,
        shared_write_frac: 0.010,
        shared_dirs_per_tx: 2,
        private_lines: 48,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 1_536,
        phases: 3,
        size_jitter: 0.5,
    }
}

/// `Cluster GA` (CEARCH): a genetic algorithm over a shared population
/// pool. Violations are relatively frequent and unevenly distributed,
/// causing load imbalance at low processor counts; at high counts the
/// fixed violation budget spreads out.
#[must_use]
pub fn cluster_ga() -> AppProfile {
    AppProfile {
        name: "Cluster GA",
        input: "ref",
        tx_instr: 1_400,
        reads: 150,
        writes: 30,
        shared_frac: 0.15,
        shared_write_frac: 0.040,
        shared_dirs_per_tx: 2,
        private_lines: 32,
        shared_lines: 512,
        write_spread_all: false,
        total_txs: 1_536,
        phases: 4,
        size_jitter: 0.6,
    }
}

/// `equake` (SPEC CPU2000 FP): limited parallelism and lots of
/// communication, forcing *small* transactions to bound violation cost.
/// Small transactions mean commit overhead dominates at high processor
/// counts, and remote misses make it highly latency-sensitive (Fig. 8
/// shows ≈50% degradation at 8 cycles/hop).
#[must_use]
pub fn equake() -> AppProfile {
    AppProfile {
        name: "equake",
        input: "ref",
        tx_instr: 450,
        reads: 60,
        writes: 12,
        shared_frac: 0.12,
        shared_write_frac: 0.020,
        shared_dirs_per_tx: 2,
        private_lines: 12,
        shared_lines: 768,
        write_spread_all: false,
        total_txs: 3_840,
        phases: 5,
        size_jitter: 0.4,
    }
}

/// `radix` (SPLASH-2, 1M keys): radix sort whose scatter phase writes
/// keys into buckets homed at *every* node — the highest
/// directories-per-commit in the suite (all of them) — yet scales well
/// because its large transactions amortize the commit latency.
#[must_use]
pub fn radix() -> AppProfile {
    AppProfile {
        name: "radix",
        input: "1M keys",
        tx_instr: 8_000,
        reads: 600,
        writes: 128,
        shared_frac: 0.02,
        shared_write_frac: 0.0,
        shared_dirs_per_tx: 1,
        private_lines: 96,
        shared_lines: 512,
        write_spread_all: true,
        total_txs: 640,
        phases: 5,
        size_jitter: 0.3,
    }
}

/// `SPECjbb2000` (Jikes RVM, 1 400 transactions): warehouse-partitioned
/// enterprise workload with very limited inter-warehouse communication
/// and the highest operations-per-word-written ratio in the suite —
/// "ideal for Scalable TCC", scaling near-linearly.
#[must_use]
pub fn specjbb() -> AppProfile {
    AppProfile {
        name: "SPECjbb2000",
        input: "1,440 trans.",
        tx_instr: 5_500,
        reads: 400,
        writes: 9,
        shared_frac: 0.01,
        shared_write_frac: 0.003,
        shared_dirs_per_tx: 1,
        private_lines: 64,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 896,
        phases: 1,
        size_jitter: 0.5,
    }
}

/// `SVM Classify` (CEARCH): support-vector-machine classification.
/// Large transactions, large operations-per-word ratio, almost no
/// conflicts: the best-performing application, with commit time
/// essentially zero at every processor count.
#[must_use]
pub fn svm_classify() -> AppProfile {
    AppProfile {
        name: "SVM Classify",
        input: "ref",
        tx_instr: 2_800,
        reads: 700,
        writes: 12,
        shared_frac: 0.02,
        shared_write_frac: 0.002,
        shared_dirs_per_tx: 1,
        private_lines: 112,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 1_152,
        phases: 4,
        size_jitter: 0.3,
    }
}

/// `swim` (SPEC CPU2000 FP): stencil code on a partitioned grid. The
/// largest transactions in the suite (~45k instructions) with large
/// write-sets but essentially no remote communication — insensitive to
/// link latency and commit overhead.
#[must_use]
pub fn swim() -> AppProfile {
    AppProfile {
        name: "swim",
        input: "ref",
        tx_instr: 45_000,
        reads: 3_500,
        writes: 1_800,
        shared_frac: 0.004,
        shared_write_frac: 0.00005,
        shared_dirs_per_tx: 1,
        private_lines: 540,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 192,
        phases: 3,
        size_jitter: 0.15,
    }
}

/// `tomcatv` (SPEC CPU2000 FP): mesh generation, also partitioned-grid
/// with very little communication; large transactions and write-sets.
#[must_use]
pub fn tomcatv() -> AppProfile {
    AppProfile {
        name: "tomcatv",
        input: "ref",
        tx_instr: 28_000,
        reads: 2_800,
        writes: 1_100,
        shared_frac: 0.004,
        shared_write_frac: 0.00005,
        shared_dirs_per_tx: 1,
        private_lines: 420,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 224,
        phases: 3,
        size_jitter: 0.2,
    }
}

/// `volrend` (SPLASH-2): volume rendering with an excessive number of
/// tiny transactions communicating flag variables — the lowest
/// operations-per-word-written ratio in the suite. Commit time (mostly
/// probing the Sharing-Vector directories) limits its scalability, and
/// it is highly sensitive to link latency.
#[must_use]
pub fn volrend() -> AppProfile {
    AppProfile {
        name: "volrend",
        input: "ref",
        tx_instr: 240,
        reads: 30,
        writes: 24,
        shared_frac: 0.20,
        shared_write_frac: 0.012,
        shared_dirs_per_tx: 2,
        private_lines: 8,
        shared_lines: 384,
        write_spread_all: false,
        total_txs: 6_400,
        phases: 4,
        size_jitter: 0.4,
    }
}

/// `water-nsquared` (SPLASH-2, 512 molecules): O(n²) molecular
/// dynamics. Smaller transactions and inherently more communication and
/// synchronization than its spatial sibling.
#[must_use]
pub fn water_nsquared() -> AppProfile {
    AppProfile {
        name: "water-nsquared",
        input: "512 mol.",
        tx_instr: 1_100,
        reads: 180,
        writes: 35,
        shared_frac: 0.08,
        shared_write_frac: 0.020,
        shared_dirs_per_tx: 2,
        private_lines: 28,
        shared_lines: 768,
        write_spread_all: false,
        total_txs: 2_048,
        phases: 4,
        size_jitter: 0.5,
    }
}

/// `water-spatial` (SPLASH-2, 512 molecules): spatial-decomposition
/// molecular dynamics: larger transactions, more operations per word
/// written, and inherently less communication than `water-nsquared`,
/// so it scales better (less commit, violation, and synchronization
/// time).
#[must_use]
pub fn water_spatial() -> AppProfile {
    AppProfile {
        name: "water-spatial",
        input: "512 mol.",
        tx_instr: 2_600,
        reads: 300,
        writes: 45,
        shared_frac: 0.04,
        shared_write_frac: 0.010,
        shared_dirs_per_tx: 1,
        private_lines: 48,
        shared_lines: 1_024,
        write_spread_all: false,
        total_txs: 1_280,
        phases: 4,
        size_jitter: 0.4,
    }
}

/// Every application of the suite, in Table 3 order.
#[must_use]
pub fn all() -> Vec<AppProfile> {
    vec![
        barnes(),
        cluster_ga(),
        equake(),
        radix(),
        specjbb(),
        svm_classify(),
        swim(),
        tomcatv(),
        volrend(),
        water_nsquared(),
        water_spatial(),
    ]
}

/// Looks an application up by its Table 3 name (case-insensitive).
#[must_use]
pub fn by_name(name: &str) -> Option<AppProfile> {
    all()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_are_unique_and_lookup_works() {
        let apps = all();
        assert_eq!(apps.len(), 11);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "duplicate app names");
        for a in &apps {
            assert_eq!(by_name(a.name).unwrap().name, a.name);
            assert_eq!(by_name(&a.name.to_uppercase()).unwrap().name, a.name);
        }
        assert!(by_name("no-such-app").is_none());
    }

    #[test]
    fn transaction_sizes_span_the_published_range() {
        // "Transaction sizes range from two-hundred to forty-five
        // thousand instructions" (§4.1).
        let apps = all();
        let min = apps.iter().map(|a| a.tx_instr).min().unwrap();
        let max = apps.iter().map(|a| a.tx_instr).max().unwrap();
        assert!(min <= 300, "smallest median {min} should be ~200");
        assert!(max >= 40_000, "largest median {max} should be ~45000");
    }

    #[test]
    fn ops_per_word_ordering_matches_the_paper() {
        // SPECjbb2000 has the highest ratio; volrend the lowest;
        // water-spatial exceeds water-nsquared.
        let ratio = |a: &AppProfile| f64::from(a.tx_instr) / f64::from(a.writes.max(1));
        let apps = all();
        let jbb = ratio(&specjbb());
        for a in &apps {
            assert!(ratio(a) <= jbb, "{} exceeds SPECjbb's ops/word", a.name);
        }
        let vol = ratio(&volrend());
        for a in &apps {
            assert!(ratio(a) >= vol, "{} is below volrend's ops/word", a.name);
        }
        assert!(ratio(&water_spatial()) > ratio(&water_nsquared()));
    }

    #[test]
    fn footprints_respect_the_published_bounds() {
        // 90th-percentile read sets < 16 KB and write sets <= 8 KB.
        for a in all() {
            let read_kb = f64::from(a.reads) / 8.0 * 32.0 / 1024.0;
            let write_kb = f64::from(a.writes) / 8.0 * 32.0 / 1024.0;
            assert!(read_kb < 16.0, "{} read set {read_kb} KB too big", a.name);
            assert!(
                write_kb <= 8.0,
                "{} write set {write_kb} KB too big",
                a.name
            );
        }
    }

    #[test]
    fn only_radix_spreads_writes_everywhere() {
        for a in all() {
            assert_eq!(a.write_spread_all, a.name == "radix");
        }
    }

    #[test]
    fn working_sets_fit_the_l2() {
        // Speculative footprints must not overflow the 512-KB L2
        // (16 384 lines): the paper reports overflows are rare.
        for a in all() {
            let lines = a.private_lines + a.shared_lines;
            assert!(lines < 8_192, "{} working set too large", a.name);
            // The sequential read walk must fit the private region.
            assert!(
                a.private_lines as f64 >= f64::from(a.reads) / 8.0,
                "{} read walk exceeds its private region",
                a.name
            );
        }
    }

    #[test]
    fn all_apps_generate_programs() {
        for a in all() {
            let programs = a.generate_scaled(4, 1, crate::Scale::Smoke);
            assert_eq!(programs.len(), 4);
            for p in &programs {
                assert!(p.transactions() >= 2, "{}: too few transactions", a.name);
                assert!(p.instructions() > 0);
            }
        }
    }
}
