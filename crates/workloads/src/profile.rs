//! The workload generation engine.

use tcc_core::{ThreadProgram, Transaction, TxOp, WorkItem};
use tcc_types::rng::SmallRng;
use tcc_types::Addr;

/// Cache-line size assumed by the address layout (matches the Table 2
/// default; the generators only need it to convert set sizes to line
/// counts).
const LINE_BYTES: u64 = 32;
/// Words per line at the default geometry.
const WORDS_PER_LINE: u64 = 8;
/// First line of each processor's private region (interleaved so that
/// `private` lines of processor `p` are homed at node `p`).
const PRIVATE_BASE: u64 = 1 << 20;
/// First line of the globally shared region.
const SHARED_BASE: u64 = 1 << 10;

/// Run-length scaling for a workload (tests use [`Scale::Smoke`],
/// the figure harness uses [`Scale::Full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ~1/8 of the full transaction count; for unit/integration tests.
    Smoke,
    /// The calibrated run length used by the figure harness.
    #[default]
    Full,
}

/// A parameterized synthetic application.
///
/// One profile describes a whole application class: transaction size
/// and footprint distributions, sharing behaviour, locality, and
/// barrier structure. [`AppProfile::generate`] turns it into one
/// deterministic [`ThreadProgram`] per processor.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name, as in Table 3.
    pub name: &'static str,
    /// The input description of Table 3's "Input" column (e.g.
    /// "16,384 mol.", "ref", "1M keys") — documentation of what run of
    /// the original application the profile was calibrated against.
    pub input: &'static str,
    /// Median transaction size, in instructions.
    pub tx_instr: u32,
    /// Distinct words read per median transaction.
    pub reads: u32,
    /// Distinct words written per median transaction.
    pub writes: u32,
    /// Fraction of *reads* aimed at the shared region.
    pub shared_frac: f64,
    /// Fraction of *writes* aimed at the shared region. Usually much
    /// lower than [`AppProfile::shared_frac`]: the paper's applications
    /// read-share far more than they write-share (write-sharing is what
    /// produces violations).
    pub shared_write_frac: f64,
    /// Per-processor private working set, in cache lines.
    pub private_lines: u32,
    /// Global shared region size, in cache lines.
    pub shared_lines: u32,
    /// Number of *directories* a transaction's shared accesses cluster
    /// into. Table 3 shows real transactions touch only 1–2 directories
    /// per commit; scattering shared accesses across many homes would
    /// chain every transaction's probe condition through every other's
    /// and serialize all commits globally.
    pub shared_dirs_per_tx: u32,
    /// Spread written lines across *all* directories (radix's
    /// all-directories-per-commit behaviour).
    pub write_spread_all: bool,
    /// Total transactions in the whole application (the fixed problem
    /// size; divided among the processors, so speedup curves measure a
    /// constant amount of work).
    pub total_txs: u32,
    /// Barrier-separated phases (>= 1). Work divides evenly within each
    /// phase; a global barrier separates consecutive phases.
    pub phases: u32,
    /// Multiplicative size jitter: transaction sizes vary in
    /// `[1/(1+j), 1+j]` around the median.
    pub size_jitter: f64,
}

impl AppProfile {
    /// Generates one deterministic program per processor.
    ///
    /// The same `(n_procs, seed)` always produces identical programs —
    /// the reproduction pipeline depends on it.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    #[must_use]
    pub fn generate(&self, n_procs: usize, seed: u64) -> Vec<ThreadProgram> {
        self.generate_scaled(n_procs, seed, Scale::Full)
    }

    /// As [`AppProfile::generate`], with an explicit run-length scale.
    #[must_use]
    pub fn generate_scaled(&self, n_procs: usize, seed: u64, scale: Scale) -> Vec<ThreadProgram> {
        assert!(n_procs > 0, "need at least one processor");
        let total = match scale {
            Scale::Full => self.total_txs.max(1),
            Scale::Smoke => (self.total_txs / 8).max(self.phases.max(1) * n_procs as u32),
        };
        let phases = self.phases.max(1);
        // Fixed problem size: each processor runs its share of each
        // phase, so the total work is (nearly) independent of the
        // machine size and speedups are meaningful.
        let per_phase_per_proc = (total / phases / n_procs as u32).max(1);
        (0..n_procs)
            .map(|p| self.generate_thread(p, n_procs, per_phase_per_proc, phases, seed))
            .collect()
    }

    fn generate_thread(
        &self,
        proc: usize,
        n_procs: usize,
        txs_per_phase: u32,
        phases: u32,
        seed: u64,
    ) -> ThreadProgram {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (proc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut items = Vec::new();
        for phase in 0..phases {
            for _ in 0..txs_per_phase {
                items.push(WorkItem::Tx(self.generate_tx(&mut rng, proc, n_procs)));
            }
            if phase + 1 < phases {
                items.push(WorkItem::Barrier);
            }
        }
        ThreadProgram::new(items)
    }

    /// Samples a jittered count around `median`.
    fn jittered(&self, rng: &mut SmallRng, median: u32) -> u32 {
        if median == 0 {
            return 0;
        }
        let lo = (f64::from(median) / (1.0 + self.size_jitter)).max(1.0);
        let hi = f64::from(median) * (1.0 + self.size_jitter);
        rng.gen_range(lo..=hi.max(lo + 1.0)) as u32
    }

    /// One synthetic transaction.
    fn generate_tx(&self, rng: &mut SmallRng, proc: usize, n_procs: usize) -> Transaction {
        // This transaction's shared accesses cluster into a few homes.
        let cluster = rng.gen_range(0..n_procs as u64);
        let n_reads = self.jittered(rng, self.reads).max(1);
        let n_writes = self.jittered(rng, self.writes);
        let instr = self.jittered(rng, self.tx_instr).max(n_reads + n_writes);
        let mem_ops = n_reads + n_writes;
        // Spread the non-memory instructions evenly between memory ops.
        let chunk = (instr - mem_ops) / (mem_ops + 1);
        let mut extra = (instr - mem_ops) % (mem_ops + 1);

        let mut ops = Vec::with_capacity((2 * mem_ops + 2) as usize);
        let push_compute = |ops: &mut Vec<TxOp>, extra: &mut u32| {
            let mut c = chunk;
            if *extra > 0 {
                c += 1;
                *extra -= 1;
            }
            if c > 0 {
                ops.push(TxOp::Compute(c));
            }
        };

        // Interleave reads and writes across the transaction body:
        // reads lead (gather), writes trail (scatter), roughly as the
        // paper's loop-structured benchmarks behave.
        for i in 0..n_reads {
            push_compute(&mut ops, &mut extra);
            ops.push(TxOp::Load(self.read_addr(rng, proc, n_procs, i, cluster)));
        }
        for i in 0..n_writes {
            push_compute(&mut ops, &mut extra);
            ops.push(TxOp::Store(self.write_addr(rng, proc, n_procs, i, cluster)));
        }
        push_compute(&mut ops, &mut extra);
        Transaction::new(ops)
    }

    /// Byte address of word `word` of `line`.
    fn addr(line: u64, word: u64) -> Addr {
        Addr(line * LINE_BYTES + (word % WORDS_PER_LINE) * 4)
    }

    /// A line in `proc`'s private region, homed at node `proc`.
    fn private_line(&self, proc: usize, index: u64, n_procs: usize) -> u64 {
        let span = u64::from(self.private_lines.max(1));
        PRIVATE_BASE + (index % span) * n_procs as u64 + proc as u64
    }

    /// A line in the shared region whose home falls inside this
    /// transaction's directory cluster.
    fn shared_line(&self, rng: &mut SmallRng, cluster: u64, n_procs: usize) -> u64 {
        let n = n_procs as u64;
        let rows = (u64::from(self.shared_lines.max(1)) / n).max(1);
        let k = u64::from(self.shared_dirs_per_tx.max(1)).min(n);
        let home = (cluster + rng.gen_range(0..k)) % n;
        SHARED_BASE + rng.gen_range(0..rows) * n + home
    }

    fn read_addr(
        &self,
        rng: &mut SmallRng,
        proc: usize,
        n_procs: usize,
        i: u32,
        cluster: u64,
    ) -> Addr {
        if rng.gen_bool(self.shared_frac) {
            let line = self.shared_line(rng, cluster, n_procs);
            Self::addr(line, rng.gen::<u64>())
        } else {
            // Sequential walk with reuse: consecutive reads touch
            // consecutive words, giving realistic spatial locality.
            let word = u64::from(i);
            let line = self.private_line(proc, word / WORDS_PER_LINE, n_procs);
            Self::addr(line, word)
        }
    }

    fn write_addr(
        &self,
        rng: &mut SmallRng,
        proc: usize,
        n_procs: usize,
        i: u32,
        cluster: u64,
    ) -> Addr {
        if self.write_spread_all {
            // radix: the write-set spans lines homed at every node, but
            // each processor scatters into its *own* slice of every
            // bucket (real radix partitions bucket offsets per
            // processor), so there is no write ping-pong.
            let target = u64::from(i) % n_procs as u64;
            let span = u64::from(self.private_lines.max(1));
            let slot = (proc as u64 * span + u64::from(i) / n_procs as u64 % span)
                % (span * n_procs as u64);
            let line = PRIVATE_BASE
                + span * n_procs as u64 // beyond the read region
                + slot * n_procs as u64
                + target;
            return Self::addr(line, rng.gen::<u64>());
        }
        if rng.gen_bool(self.shared_write_frac) {
            let line = self.shared_line(rng, cluster, n_procs);
            Self::addr(line, rng.gen::<u64>())
        } else {
            let word = u64::from(i);
            let line = self.private_line(proc, word / WORDS_PER_LINE, n_procs);
            Self::addr(line, word)
        }
    }

    /// Rough expected committed instructions for the whole application
    /// (for normalization sanity checks; actual counts jitter).
    #[must_use]
    pub fn expected_total_instr(&self) -> u64 {
        u64::from(self.tx_instr) * u64::from(self.total_txs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::LineGeometry;

    fn sample() -> AppProfile {
        AppProfile {
            name: "sample",
            input: "test",
            tx_instr: 1000,
            reads: 40,
            writes: 10,
            shared_frac: 0.1,
            shared_write_frac: 0.05,
            shared_dirs_per_tx: 2,
            private_lines: 64,
            shared_lines: 32,
            write_spread_all: false,
            total_txs: 128,
            phases: 4,
            size_jitter: 0.3,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sample().generate(4, 42);
        let b = sample().generate(4, 42);
        assert_eq!(a, b);
        let c = sample().generate(4, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn every_processor_gets_a_program_with_barriers_aligned() {
        let programs = sample().generate(8, 1);
        assert_eq!(programs.len(), 8);
        let barriers: Vec<usize> = programs.iter().map(ThreadProgram::barriers).collect();
        assert!(barriers.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(barriers[0], 3, "4 phases -> 3 barriers");
        for p in &programs {
            // 128 total / 4 phases / 8 procs = 4 per phase.
            assert_eq!(p.transactions(), 16);
        }
    }

    #[test]
    fn total_work_is_machine_size_independent() {
        let t1: usize = sample()
            .generate(1, 1)
            .iter()
            .map(ThreadProgram::transactions)
            .sum();
        let t8: usize = sample()
            .generate(8, 1)
            .iter()
            .map(ThreadProgram::transactions)
            .sum();
        assert_eq!(t1, 128);
        assert_eq!(t8, 128);
    }

    #[test]
    fn transaction_sizes_respect_the_jitter_envelope() {
        let programs = sample().generate(2, 7);
        for p in &programs {
            for item in &p.items {
                if let WorkItem::Tx(t) = item {
                    let n = t.instructions();
                    assert!((500..=1400).contains(&n), "tx size {n} out of envelope");
                }
            }
        }
    }

    #[test]
    fn private_reads_are_homed_at_the_owning_node() {
        let prof = AppProfile {
            shared_frac: 0.0,
            ..sample()
        };
        let geom = LineGeometry::default();
        let n = 8;
        let programs = prof.generate(n, 3);
        for (p, prog) in programs.iter().enumerate() {
            for item in &prog.items {
                if let WorkItem::Tx(t) = item {
                    for op in &t.ops {
                        if let TxOp::Load(a) = op {
                            let home = geom.home_of(geom.line_of(*a), n);
                            assert_eq!(home.index(), p, "private read must be local");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spread_writes_touch_every_directory() {
        let prof = AppProfile {
            write_spread_all: true,
            writes: 64,
            ..sample()
        };
        let geom = LineGeometry::default();
        let n = 8;
        let programs = prof.generate(n, 3);
        let mut homes = std::collections::HashSet::new();
        if let WorkItem::Tx(t) = &programs[0].items[0] {
            for op in &t.ops {
                if let TxOp::Store(a) = op {
                    homes.insert(geom.home_of(geom.line_of(*a), n));
                }
            }
        }
        assert_eq!(homes.len(), n, "radix-style writes must span all homes");
    }

    #[test]
    fn smoke_scale_shrinks_the_run() {
        let full = sample().generate_scaled(2, 1, Scale::Full);
        let smoke = sample().generate_scaled(2, 1, Scale::Smoke);
        assert!(smoke[0].transactions() < full[0].transactions());
        assert!(smoke[0].transactions() >= 2);
    }

    #[test]
    fn instruction_budget_is_fully_spent() {
        // Compute + memory ops must sum to the sampled size: no silent
        // truncation of the instruction budget.
        let prof = AppProfile {
            size_jitter: 0.0,
            ..sample()
        };
        let programs = prof.generate(1, 9);
        if let WorkItem::Tx(t) = &programs[0].items[0] {
            assert_eq!(t.instructions(), 1000);
        }
    }
}
