//! Shared deterministic samplers for workload and traffic generation.
//!
//! Every generator in the workspace draws from the same two building
//! blocks, so they live here exactly once:
//!
//! * [`Zipf`] — an exact Zipfian(θ) sampler over `0..n` via an explicit
//!   cumulative table and binary search (no rejection, no
//!   approximation). Used by the STM bench profiles and the
//!   `tcc-traffic` popularity models.
//! * [`stream_rng`] — the per-stream seed-derivation rule (`seed ⊕
//!   (stream+1)·φ64`): independent deterministic substreams from one
//!   run seed, so adding or removing a stream never perturbs the
//!   others.

use tcc_types::rng::SmallRng;

/// The 64-bit golden-ratio constant used to split one seed into
/// independent substreams.
pub const STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives the RNG for substream `stream` of a run seeded with `seed`.
///
/// Streams are keyed `seed ^ (stream+1)·φ64`, the rule every generator
/// in the workspace uses: per-thread scripts, per-shard traffic slices,
/// and per-scenario synthesis all stay independent of how many sibling
/// streams exist.
#[must_use]
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ stream.wrapping_add(1).wrapping_mul(STREAM_SALT))
}

/// Zipfian sampler over `0..n` with exponent `theta`, via an explicit
/// cumulative table and binary search — exact (no rejection, no
/// approximation), fine for the key-space sizes the benches and traffic
/// generators use. Rank 0 is the hottest key.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the cumulative table for `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative (`theta == 0` is
    /// the uniform distribution, which is legal here; callers that
    /// consider it degenerate reject it in their own validation).
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta >= 0.0, "negative skew is meaningless");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(theta).recip();
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks in the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` iff the domain is empty (never: `new` rejects `n == 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..len()`; rank 0 is the hottest.
    #[must_use]
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u = rng.gen_range(0.0f64..1.0);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rngs_are_deterministic_and_independent() {
        let mut a = stream_rng(42, 0);
        let mut a2 = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let xs2: Vec<u64> = (0..32).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, xs2, "same (seed, stream) must reproduce");
        assert_ne!(xs, ys, "sibling streams must diverge");
    }

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(256, 0.9);
        let mut rng = stream_rng(7, 0);
        let mut counts = vec![0u64; 256];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let total: u64 = counts.iter().sum();
        let head: u64 = counts[..8].iter().sum();
        assert!(
            head * 5 > total,
            "8 hottest ranks drew only {head}/{total} — not Zipfian"
        );
        // Rank order is frequency order for a Zipfian CDF.
        assert!(counts[0] > counts[128]);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(16, 0.0);
        let mut rng = stream_rng(11, 3);
        let mut counts = vec![0u64; 16];
        for _ in 0..32_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 32_000.0;
            assert!(
                (share - 1.0 / 16.0).abs() < 0.02,
                "uniform share off: {share}"
            );
        }
    }

    #[test]
    fn sampling_stream_resumes_identically_from_saved_state() {
        // Checkpoint semantics for workload generation: capturing the
        // xoshiro256** word state mid-stream and rebuilding with
        // `from_state` must reproduce the identical sampling tail —
        // both raw words and Zipf draws (which consume the stream
        // through `gen_range(f64)`).
        let z = Zipf::new(64, 0.8);
        let mut live = stream_rng(13, 2);
        for _ in 0..257 {
            let _ = z.sample(&mut live);
        }
        let mut resumed = SmallRng::from_state(live.state());
        for i in 0..1024 {
            assert_eq!(
                z.sample(&mut live),
                z.sample(&mut resumed),
                "Zipf tail diverged at draw {i}"
            );
        }
        assert_eq!(live.state(), resumed.state(), "word state diverged");
        for i in 0..256 {
            assert_eq!(
                live.next_u64(),
                resumed.next_u64(),
                "raw tail diverged at word {i}"
            );
        }
    }

    #[test]
    fn zipf_samples_stay_in_bounds() {
        let z = Zipf::new(3, 2.0);
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        let mut rng = stream_rng(5, 9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
