//! Micro-workloads: small hand-shaped transactional kernels.
//!
//! Unlike the calibrated application profiles in [`crate::apps`], these
//! are minimal, fully-understood kernels for targeted measurement and
//! teaching: each isolates exactly one protocol behaviour (contention,
//! producer-consumer forwarding, commit pressure, embarrassing
//! parallelism). The examples, integration tests, and ablations build
//! on them.

use tcc_core::{ThreadProgram, Transaction, TxOp, WorkItem};
use tcc_types::Addr;

/// Byte address of word `word` of cache line `line` (32-byte lines).
#[must_use]
fn addr(line: u64, word: u64) -> Addr {
    Addr(line * 32 + (word % 8) * 4)
}

/// Every processor read-modify-writes the *same* word `txs` times — the
/// maximally contended kernel. Exactly one transaction wins each round;
/// everyone else violates and retries.
#[must_use]
pub fn contended_counter(n_procs: usize, txs: usize) -> Vec<ThreadProgram> {
    let counter = addr(64, 0);
    (0..n_procs)
        .map(|_| {
            let items = (0..txs)
                .map(|_| {
                    WorkItem::Tx(Transaction::new(vec![
                        TxOp::Load(counter),
                        TxOp::Compute(30),
                        TxOp::Store(counter),
                    ]))
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

/// Processor 0 writes `lines` lines; after a barrier every other
/// processor reads them all — pure producer-consumer through the
/// write-back protocol (owner forwards, no conflicts).
#[must_use]
pub fn producer_consumer(n_procs: usize, lines: u64) -> Vec<ThreadProgram> {
    assert!(n_procs >= 2, "need a producer and at least one consumer");
    let produce = Transaction::new((0..lines).map(|l| TxOp::Store(addr(1000 + l, l))).collect());
    let consume = Transaction::new((0..lines).map(|l| TxOp::Load(addr(1000 + l, l))).collect());
    let idle = Transaction::new(vec![TxOp::Compute(1)]);
    (0..n_procs)
        .map(|p| {
            if p == 0 {
                ThreadProgram::new(vec![
                    WorkItem::Tx(produce.clone()),
                    WorkItem::Barrier,
                    WorkItem::Tx(idle.clone()),
                ])
            } else {
                ThreadProgram::new(vec![
                    WorkItem::Tx(idle.clone()),
                    WorkItem::Barrier,
                    WorkItem::Tx(consume.clone()),
                ])
            }
        })
        .collect()
}

/// Every processor runs `txs` *tiny* transactions over private data —
/// pure commit-protocol pressure with zero conflicts (the volrend limit
/// case, distilled).
#[must_use]
pub fn commit_storm(n_procs: usize, txs: usize) -> Vec<ThreadProgram> {
    (0..n_procs as u64)
        .map(|p| {
            let items = (0..txs as u64)
                .map(|t| {
                    WorkItem::Tx(Transaction::new(vec![
                        TxOp::Compute(20),
                        TxOp::Store(addr(10_000 + p * 1024 + t % 16, t)),
                    ]))
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

/// Embarrassingly parallel: each processor computes over its own lines;
/// no sharing of any kind. The protocol-overhead floor.
#[must_use]
pub fn embarrassingly_parallel(n_procs: usize, txs: usize, work: u32) -> Vec<ThreadProgram> {
    (0..n_procs as u64)
        .map(|p| {
            let items = (0..txs as u64)
                .map(|t| {
                    WorkItem::Tx(Transaction::new(vec![
                        TxOp::Load(addr(20_000 + p * 256 + t % 64, 0)),
                        TxOp::Compute(work),
                        TxOp::Store(addr(20_000 + p * 256 + t % 64, 1)),
                    ]))
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_core::{Simulator, SystemConfig};

    fn checked(n: usize) -> SystemConfig {
        SystemConfig {
            check_serializability: true,
            ..SystemConfig::with_procs(n)
        }
    }

    #[test]
    fn contended_counter_serializes_increments() {
        let r = Simulator::builder(checked(4))
            .programs(contended_counter(4, 4))
            .build()
            .expect("valid config")
            .run();
        assert_eq!(r.commits, 16);
        assert!(r.violations > 0, "a contended counter must conflict");
        r.assert_serializable();
    }

    #[test]
    fn producer_consumer_forwards_without_conflicts() {
        let r = Simulator::builder(checked(4))
            .programs(producer_consumer(4, 16))
            .build()
            .expect("valid config")
            .run();
        assert_eq!(r.commits, 8);
        assert_eq!(r.violations, 0);
        r.assert_serializable();
    }

    #[test]
    fn commit_storm_commits_everything() {
        let r = Simulator::builder(checked(8))
            .programs(commit_storm(8, 10))
            .build()
            .expect("valid config")
            .run();
        assert_eq!(r.commits, 80);
        assert_eq!(r.violations, 0);
        r.assert_serializable();
    }

    #[test]
    fn embarrassingly_parallel_scales() {
        let t1 = Simulator::builder(checked(1))
            .programs(embarrassingly_parallel(1, 32, 500))
            .build()
            .expect("valid config")
            .run()
            .total_cycles;
        // Same per-proc work on 8 procs finishes in about the same time
        // (it is 8x the total work at 1x the makespan).
        let t8 = Simulator::builder(checked(8))
            .programs(embarrassingly_parallel(8, 32, 500))
            .build()
            .expect("valid config")
            .run()
            .total_cycles;
        assert!(
            (t8 as f64) < (t1 as f64) * 1.8,
            "independent work should not slow down together: {t1} vs {t8}"
        );
    }

    #[test]
    #[should_panic(expected = "need a producer")]
    fn producer_consumer_needs_two_procs() {
        let _ = producer_consumer(1, 4);
    }
}
