//! Multithreaded stress: atomicity invariants under sustained
//! contention, opacity for concurrent snapshot readers, livelock
//! freedom (every started transaction eventually commits — the tests
//! terminating *is* the assertion), and end-state gap-freedom of the
//! TID space.

use tcc_stm::{Stm, StmConfig, TVar};

fn spawn_all<F: FnOnce() + Send + 'static>(fs: Vec<F>) {
    let handles: Vec<_> = fs.into_iter().map(std::thread::spawn).collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
}

/// Classic lost-update hunt: N threads × M read-modify-write increments
/// on one cell must sum exactly.
#[test]
fn concurrent_counter_is_exact() {
    let stm = Stm::new();
    let counter = stm.new_tvar(0u64);
    let threads = 4;
    let per_thread = 300u64;
    spawn_all(
        (0..threads)
            .map(|_| {
                let stm = stm.clone();
                let counter = counter.clone();
                move || {
                    for _ in 0..per_thread {
                        stm.atomically(|tx| {
                            let v = tx.read(&counter)?;
                            tx.write(&counter, v + 1)
                        });
                    }
                }
            })
            .collect(),
    );
    assert_eq!(
        stm.atomically(|tx| tx.read(&counter)),
        threads as u64 * per_thread
    );
    let stats = stm.stats();
    assert_eq!(stats.commits, threads as u64 * per_thread + 1);
}

/// Bank invariant under transfers plus concurrent full-snapshot
/// readers: the readers exercise opacity — a transaction must never
/// observe a torn (mid-transfer) state, even on attempts that would
/// later abort, because the sum assertion runs *inside* the closure.
#[test]
fn transfers_preserve_the_total_and_snapshots_are_opaque() {
    let stm = Stm::with_config(StmConfig {
        shards: 4,
        vendor_slots: 4,
        ..StmConfig::default()
    });
    let n_accounts = 8usize;
    let initial = 1_000u64;
    let accounts: Vec<TVar<u64>> = (0..n_accounts).map(|_| stm.new_tvar(initial)).collect();
    let total = initial * n_accounts as u64;

    let mut workers: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    // Two transfer threads with different (deterministic) walk patterns.
    for t in 0..2u64 {
        let stm = stm.clone();
        let accounts = accounts.clone();
        workers.push(Box::new(move || {
            for i in 0..400u64 {
                let from = ((i * 7 + t * 3) % n_accounts as u64) as usize;
                let to = ((i * 5 + t + 1) % n_accounts as u64) as usize;
                if from == to {
                    continue;
                }
                stm.atomically(|tx| {
                    let a = tx.read(&accounts[from])?;
                    let b = tx.read(&accounts[to])?;
                    let amount = (a / 2).min(i % 97);
                    tx.write(&accounts[from], a - amount)?;
                    tx.write(&accounts[to], b + amount)
                });
            }
        }));
    }
    // Two snapshot readers asserting the invariant inside the
    // transaction body.
    for _ in 0..2 {
        let stm = stm.clone();
        let accounts = accounts.clone();
        workers.push(Box::new(move || {
            for _ in 0..200 {
                let sum = stm.atomically(|tx| {
                    let mut sum = 0u64;
                    for acct in &accounts {
                        sum += tx.read(acct)?;
                    }
                    Ok(sum)
                });
                assert_eq!(sum, total, "torn snapshot escaped the STM");
            }
        }));
    }
    spawn_all(workers);

    let final_sum = stm.atomically(|tx| {
        let mut sum = 0u64;
        for acct in &accounts {
            sum += tx.read(acct)?;
        }
        Ok(sum)
    });
    assert_eq!(final_sum, total);
}

/// Worst-case starvation pressure: one shard, tiny vendor, immediate
/// escalation, every transaction touching the same cell. Termination
/// proves livelock freedom; the stats prove the starvation machinery
/// (not luck) is what delivered it.
#[test]
fn high_contention_single_shard_never_livelocks() {
    let stm = Stm::with_config(StmConfig {
        shards: 1,
        vendor_slots: 1,
        starvation_threshold: 1,
        ..StmConfig::default()
    });
    let hot = stm.new_tvar(0u64);
    let threads = 4;
    let per_thread = 150u64;
    spawn_all(
        (0..threads)
            .map(|_| {
                let stm = stm.clone();
                let hot = hot.clone();
                move || {
                    for _ in 0..per_thread {
                        let (_, receipt) = stm.run(|tx| {
                            let v = tx.read(&hot)?;
                            tx.write(&hot, v + 1)
                        });
                        // Bounded retries: early-TID mode guarantees
                        // commit within two executions of escalating.
                        assert!(
                            receipt.attempts <= 64,
                            "transaction needed {} attempts",
                            receipt.attempts
                        );
                    }
                }
            })
            .collect(),
    );
    assert_eq!(
        stm.atomically(|tx| tx.read(&hot)),
        threads as u64 * per_thread
    );
}

/// After any amount of churn, one final commit must leave the TID space
/// gap-free: every TID the vendor ever issued has been resolved at
/// every shard (NSTID == issued everywhere), i.e. no abort, handoff,
/// claim, or slot-exhaustion path ever lost a TID.
#[test]
fn tid_space_is_gap_free_after_stress() {
    let stm = Stm::with_config(StmConfig {
        shards: 8,
        vendor_slots: 2,
        starvation_threshold: 2,
        ..StmConfig::default()
    });
    let cells: Vec<TVar<u64>> = (0..16).map(|_| stm.new_tvar(0u64)).collect();
    spawn_all(
        (0..4u64)
            .map(|t| {
                let stm = stm.clone();
                let cells = cells.clone();
                move || {
                    for i in 0..250u64 {
                        let a = ((i + t) % 16) as usize;
                        let b = ((i * 3 + t * 5) % 16) as usize;
                        stm.atomically(|tx| {
                            let va = tx.read(&cells[a])?;
                            tx.write(&cells[b], va + 1)
                        });
                    }
                }
            })
            .collect(),
    );
    // A final transaction flushes any TID still parked in a handoff
    // slot (its commit claims and skips parked TIDs it stalls behind).
    stm.atomically(|tx| {
        let v = tx.read(&cells[0])?;
        tx.write(&cells[0], v)
    });
    let (issued, nstids) = stm.frontier();
    for (shard, nstid) in nstids.iter().enumerate() {
        assert_eq!(
            *nstid, issued,
            "shard {shard}: NSTID {nstid} != issued {issued} — a TID was lost"
        );
    }
    // Every issued TID is resolved at all shards exactly once: by its
    // committing owner, by a helper that claimed it out of a handoff
    // slot, or by its aborting owner when the slot was full. (Recycled
    // TIDs are re-vended, not resolved, so they don't appear here.)
    let stats = stm.stats();
    assert_eq!(
        stats.commits + stats.claimed_tids + stats.slot_exhausted,
        issued,
        "TID resolution accounting is off: {stats:?}"
    );
}
