//! Interleaving-explorer acceptance: the commit path survives bounded
//! exhaustive + seeded-random adversarial schedules with zero
//! serializability violations, the exploration demonstrably reaches the
//! interesting protocol paths (conflicts, TID recycling, helping,
//! starvation mode), and — the teeth test — disabling any load-bearing
//! step of the protocol is *caught* by the same explorer.

use tcc_stm::explore::{explore, ExploreConfig, ModelSpec, ModelTx};
use tcc_stm::proto::CommitTweaks;

fn tx(reads: &[usize], writes: &[usize]) -> ModelTx {
    ModelTx {
        reads: reads.to_vec(),
        writes: writes.to_vec(),
    }
}

/// Two threads fighting over two cells on two shards: read-write and
/// write-write conflicts, multi-shard footprints.
fn contended_2t() -> ModelSpec {
    ModelSpec {
        n_cells: 2,
        shards: 2,
        vendor_slots: 2,
        threads: vec![
            vec![tx(&[0], &[0, 1]), tx(&[1], &[0])],
            vec![tx(&[0, 1], &[1]), tx(&[0], &[0])],
        ],
        starvation_threshold: 2,
        tweaks: CommitTweaks::default(),
    }
}

/// Three threads, three cells, single shard — maximum serialization
/// pressure through one NSTID register.
fn contended_3t_one_shard() -> ModelSpec {
    ModelSpec {
        n_cells: 3,
        shards: 1,
        vendor_slots: 2,
        threads: vec![
            vec![tx(&[0], &[1])],
            vec![tx(&[1], &[2])],
            vec![tx(&[2], &[0])],
        ],
        starvation_threshold: 1,
        tweaks: CommitTweaks::default(),
    }
}

#[test]
fn exhaustive_and_random_schedules_find_no_violations() {
    let cfg = ExploreConfig {
        max_runs: 1_500,
        pair_runs: 256,
        random_runs: 96,
        ..ExploreConfig::default()
    };
    let report = explore(&contended_2t(), &cfg);
    assert!(
        report.violations.is_empty(),
        "serializability violations: {:?}",
        report.violations
    );
    assert!(report.runs > 100, "only {} runs explored", report.runs);
    // Every scripted transaction commits in every clean run.
    assert_eq!(report.commits, 4 * report.runs as u64);
    // Coverage: adversarial schedules must actually reach the
    // conflict/recycle machinery, or the exploration proves nothing.
    assert!(report.conflicts > 0, "no schedule produced a conflict");
    assert!(report.recycled > 0, "no schedule exercised TID handoff");
}

#[test]
fn single_shard_three_thread_schedules_are_clean() {
    let cfg = ExploreConfig {
        max_runs: 700,
        pair_runs: 192,
        random_runs: 64,
        ..ExploreConfig::default()
    };
    let report = explore(&contended_3t_one_shard(), &cfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.commits, 3 * report.runs as u64);
}

/// The starvation path: with an immediate escalation threshold and a
/// hot cell, some schedule must commit in early-TID mode; the helping
/// path (claiming a parked TID) must also be reached.
#[test]
fn exploration_reaches_starvation_and_helping_paths() {
    let spec = ModelSpec {
        n_cells: 1,
        shards: 1,
        vendor_slots: 1,
        threads: vec![
            vec![tx(&[0], &[0]), tx(&[0], &[0])],
            vec![tx(&[0], &[0]), tx(&[0], &[0])],
        ],
        starvation_threshold: 1,
        tweaks: CommitTweaks::default(),
    };
    let cfg = ExploreConfig {
        max_runs: 1_200,
        pair_runs: 256,
        random_runs: 128,
        switch_percent: 40,
        ..ExploreConfig::default()
    };
    let report = explore(&spec, &cfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert!(report.conflicts > 0);
    assert!(
        report.early_commits > 0,
        "no schedule reached early-TID starvation mode"
    );
    assert!(
        report.claimed > 0,
        "no schedule exercised the parked-TID helping path"
    );
}

/// Teeth: removing commit-time read validation must be caught.
#[test]
fn explorer_catches_skipped_read_validation() {
    let mut spec = contended_2t();
    spec.tweaks = CommitTweaks {
        skip_read_validation: true,
        ..CommitTweaks::default()
    };
    let report = explore(&spec, &ExploreConfig::default());
    assert!(
        !report.violations.is_empty(),
        "explorer failed to catch a commit path with no read validation \
         after {} runs",
        report.runs
    );
}

/// Teeth: publishing writes before the shards serialize the committer
/// must be caught.
#[test]
fn explorer_catches_publication_before_serving() {
    let mut spec = contended_2t();
    spec.tweaks = CommitTweaks {
        publish_before_serving: true,
        ..CommitTweaks::default()
    };
    let report = explore(&spec, &ExploreConfig::default());
    assert!(
        !report.violations.is_empty(),
        "explorer failed to catch early ownership publication after {} runs",
        report.runs
    );
}
