//! Differential harness: replays the chaos corpus' shrunk witness
//! programs through `tcc-stm` on real threads and checks the resulting
//! histories with the *simulator's* serializability oracle
//! (`tcc_core::Checker`).
//!
//! The witness programs were minimized against the cycle-level
//! simulator — each one once exposed (or regression-guards) a protocol
//! race. They only describe memory accesses, so they transplant
//! directly: each `(line, word)` becomes a `TVar`, each scripted
//! transaction becomes an `Stm::run` closure, and every committed
//! transaction's observed read origins (`ReadOrigin`) plus write set
//! become a `TxRecord`. If the STM's commit protocol ever admitted a
//! non-serializable interleaving on these programs, the checker's
//! serial replay in TID order would reject the history.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tcc_chaos::{witnesses, POp, Witness};
use tcc_core::{Checker, TxRecord};
use tcc_stm::{ReadOrigin, Stm, StmConfig, TVar};
use tcc_types::{LineAddr, Tid, WordMask};

/// Cells a witness program touches, keyed by `(line, word)`.
struct Cells {
    vars: HashMap<(u64, u64), TVar<u64>>,
}

impl Cells {
    fn for_witness(stm: &Stm, w: &Witness) -> Cells {
        let mut vars = HashMap::new();
        for thread in &w.threads {
            for tx in thread {
                for op in tx {
                    let key = match *op {
                        POp::Load(l, w) | POp::Store(l, w) => (l, w),
                        POp::Compute(_) => continue,
                    };
                    vars.entry(key).or_insert_with(|| stm.new_tvar(0u64));
                }
            }
        }
        Cells { vars }
    }

    fn var(&self, line: u64, word: u64) -> &TVar<u64> {
        &self.vars[&(line, word)]
    }
}

fn origin_tid(origin: ReadOrigin) -> Option<Option<Tid>> {
    match origin {
        ReadOrigin::Committed(t) => Some(t),
        // The simulator's checker excludes reads of a transaction's own
        // speculative writes.
        ReadOrigin::OwnWrite => None,
    }
}

/// Runs one witness program on real threads; returns the committed
/// history.
fn run_witness(witness: &Witness, config: StmConfig) -> Vec<TxRecord> {
    let stm = Stm::with_config(config);
    let cells = Arc::new(Cells::for_witness(&stm, witness));
    let records = Arc::new(Mutex::new(Vec::<TxRecord>::new()));

    let handles: Vec<_> = witness
        .threads
        .iter()
        .cloned()
        .map(|script| {
            let stm = stm.clone();
            let cells = Arc::clone(&cells);
            let records = Arc::clone(&records);
            std::thread::spawn(move || {
                for ops in script {
                    let mut reads = Vec::new();
                    let mut writes: Vec<(LineAddr, WordMask)> = Vec::new();
                    let (_, receipt) = stm.run(|tx| {
                        reads.clear();
                        writes.clear();
                        let mut sink = 0u64;
                        for op in &ops {
                            match *op {
                                POp::Load(l, w) => {
                                    let (v, origin) = tx.read_versioned(cells.var(l, w))?;
                                    sink = sink.wrapping_add(v);
                                    if let Some(tid) = origin_tid(origin) {
                                        reads.push((LineAddr(l), w as usize, tid));
                                    }
                                }
                                POp::Store(l, w) => {
                                    tx.write(cells.var(l, w), sink)?;
                                    writes.push((LineAddr(l), WordMask::single(w as usize)));
                                }
                                POp::Compute(c) => {
                                    // Stand-in for the simulated compute
                                    // delay: widen the race window.
                                    for _ in 0..(c % 8) {
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                        Ok(())
                    });
                    records.lock().unwrap().push(TxRecord {
                        tid: receipt.tid,
                        reads: reads.clone(),
                        writes: writes.clone(),
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("witness thread panicked");
    }
    Arc::try_unwrap(records)
        .expect("all threads joined")
        .into_inner()
        .unwrap()
}

/// Every corpus witness replays cleanly through the STM under several
/// shard layouts, with the simulator's checker as oracle.
#[test]
fn chaos_witnesses_replay_serializably_through_the_stm() {
    let all = witnesses().expect("load witness corpus");
    assert!(
        all.len() >= 6,
        "witness corpus unexpectedly small: {}",
        all.len()
    );
    let configs = [
        StmConfig {
            shards: 1,
            vendor_slots: 1,
            ..StmConfig::default()
        },
        StmConfig {
            shards: 4,
            vendor_slots: 4,
            ..StmConfig::default()
        },
        StmConfig::default(),
    ];
    let repeats = 3;
    for witness in &all {
        let total_txs: usize = witness.threads.iter().map(Vec::len).sum();
        for config in configs {
            for rep in 0..repeats {
                let history = run_witness(witness, config);
                assert_eq!(
                    history.len(),
                    total_txs,
                    "{}: lost transactions (liveness) with {} shards rep {rep}",
                    witness.name,
                    config.shards
                );
                let mut checker = Checker::new();
                for rec in history {
                    checker.record(rec);
                }
                if let Err(e) = checker.verify() {
                    panic!(
                        "{}: serializability violation with {} shards rep {rep}: {e}",
                        witness.name, config.shards
                    );
                }
            }
        }
    }
}

/// The witness API itself: stable ordering, unique names, non-empty
/// programs.
#[test]
fn witness_corpus_is_well_formed() {
    let a = witnesses().unwrap();
    let b = witnesses().unwrap();
    assert_eq!(a, b, "witness order must be stable");
    let mut names: Vec<&str> = a.iter().map(|w| w.name.as_str()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), before, "witness names must be unique");
    for w in &a {
        assert!(
            w.threads.iter().any(|t| !t.is_empty()),
            "{}: empty program",
            w.name
        );
    }
}
