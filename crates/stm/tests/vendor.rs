//! TID-vendor edge cases: gap-freedom under contention and slot
//! exhaustion, duplicate/skip-freedom across concurrent vendors, and
//! wraparound refusal built on the underflow-safe `Tid` arithmetic.

use std::sync::Arc;
use tcc_stm::proto::{Vendor, MAX_TID, TID_NONE};
use tcc_stm::shim::RealShim;
use tcc_types::Tid;

type RVendor = Vendor<RealShim>;

/// Property: concurrent acquirers never observe a duplicate and never
/// skip a value — the union of everything handed out is exactly
/// `0..issued`.
#[test]
fn concurrent_acquires_are_duplicate_and_gap_free() {
    let vendor = Arc::new(RVendor::new(4));
    let threads = 4;
    let per_thread = 500;
    let handles: Vec<_> = (0..threads)
        .map(|home| {
            let vendor = Arc::clone(&vendor);
            std::thread::spawn(move || {
                (0..per_thread)
                    .map(|_| vendor.acquire(home))
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..(threads * per_thread) as u64).collect();
    assert_eq!(all, expected, "no duplicates, no skipped TIDs");
    assert_eq!(vendor.issued(), (threads * per_thread) as u64);
}

/// Property: recycling through the handoff slots keeps the sequence
/// gap-free — at quiescence every issued TID is either held by a thread
/// or parked in a slot, each exactly once.
#[test]
fn concurrent_recycling_preserves_gap_freedom() {
    let slots = 4;
    let vendor = Arc::new(RVendor::new(slots));
    let threads = 4;
    let rounds = 400;
    let handles: Vec<_> = (0..threads)
        .map(|home| {
            let vendor = Arc::clone(&vendor);
            std::thread::spawn(move || {
                let mut held = Vec::new();
                for i in 0..rounds {
                    let t = vendor.acquire(home);
                    // Park every third acquisition, imitating aborts;
                    // when the slot is full the aborter keeps the TID
                    // (standing in for "skip it everywhere").
                    if i % 3 == 0 {
                        if !vendor.recycle(home, t) {
                            held.push(t);
                        }
                    } else {
                        held.push(t);
                    }
                }
                held
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    // Drain whatever is still parked in the handoff slots.
    for t in 0..vendor.issued() {
        if vendor.claim(t) {
            all.push(t);
        }
    }
    all.sort_unstable();
    let expected: Vec<u64> = (0..vendor.issued()).collect();
    assert_eq!(
        all, expected,
        "held ∪ parked must cover every issued TID exactly once"
    );
}

/// Slot exhaustion: with a single handoff slot, a second park is
/// refused rather than silently dropping a TID, and the parked TID
/// comes back before any fresh one.
#[test]
fn slot_exhaustion_refuses_and_preserves_the_parked_tid() {
    let vendor = RVendor::new(1);
    let a = vendor.acquire(0);
    let b = vendor.acquire(0);
    let c = vendor.acquire(0);
    assert_eq!((a, b, c), (0, 1, 2));
    assert!(vendor.recycle(0, a));
    assert!(!vendor.recycle(0, b), "slot already occupied");
    assert!(!vendor.recycle(0, c), "still occupied");
    assert_eq!(vendor.acquire(0), a, "parked TID is re-vended first");
    assert_eq!(vendor.acquire(0), 3, "then the sequencer resumes");
}

/// A claimed TID leaves the slot atomically: exactly one claimer wins,
/// and the loser sees the slot empty.
#[test]
fn concurrent_claims_have_exactly_one_winner() {
    for _ in 0..50 {
        let vendor = Arc::new(RVendor::new(2));
        let t = vendor.acquire(0);
        assert!(vendor.recycle(0, t));
        let winners: usize = (0..4)
            .map(|_| {
                let vendor = Arc::clone(&vendor);
                std::thread::spawn(move || usize::from(vendor.claim(t)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1, "claim must be exclusive");
    }
}

/// Wraparound refusal: the vendor panics rather than wrapping, and the
/// boundary is exactly `MAX_TID` (checked with the underflow-safe `Tid`
/// arithmetic rather than raw subtraction).
#[test]
fn vendor_refuses_to_wrap_at_the_exact_boundary() {
    let vendor = RVendor::with_base(1, MAX_TID - 2);
    assert_eq!(vendor.acquire(0), MAX_TID - 2);
    assert_eq!(vendor.acquire(0), MAX_TID - 1);
    assert_eq!(vendor.acquire(0), MAX_TID, "MAX_TID itself is vendable");
    let result = std::panic::catch_unwind(|| vendor.acquire(0));
    let msg = match result {
        Ok(t) => panic!("vendor wrapped: vended {t} past MAX_TID"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(msg.contains("refusing to wrap"), "unexpected panic: {msg}");
    // The Tid-level arithmetic the refusal is built on.
    assert_eq!(Tid(MAX_TID).checked_since(Tid(MAX_TID)), Some(0));
    assert_eq!(Tid(MAX_TID).checked_since(Tid(MAX_TID + 1)), None);
    assert!(Tid(MAX_TID).checked_next().is_some());
    assert!(Tid(u64::MAX).checked_next().is_none());
    // And the slot sentinel can never collide with a vendable TID.
    const { assert!(TID_NONE > MAX_TID) };
}
