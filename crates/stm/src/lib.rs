//! `tcc-stm` — a real software transactional memory running Scalable
//! TCC's non-blocking commit protocol on actual threads.
//!
//! The rest of the workspace *simulates* the paper's hardware protocol
//! with cycle-level fidelity; this crate *is* the protocol, translated
//! from coherence messages to atomics and run under real hardware
//! concurrency:
//!
//! * gap-free TIDs from a sharded [`proto::Vendor`] with per-shard
//!   handoff (aborts recycle their TID instead of leaving a gap);
//! * directory shards carrying per-shard NSTID plus a packed Skip
//!   Vector ([`proto::Shard`]);
//! * the Skip/Probe/Mark race-elimination rules as atomic operations on
//!   that sharded commit state ([`proto::commit`]);
//! * write-back commit via ownership publication: one pointer swap
//!   installs a committed version ([`stm`]).
//!
//! What makes the crate trustworthy is that the commit path is generic
//! over an instrumented atomics layer ([`shim`]): the exact same code
//! is driven through bounded-exhaustive and seeded-random adversarial
//! interleavings by a hand-rolled loom-style explorer ([`explore`]),
//! replayed against the simulator's serializability checker by the
//! differential harness (`tests/differential.rs`), and stressed on real
//! threads (`tests/stress.rs`, `tcc-bench --bin stm`).
//!
//! ```
//! use tcc_stm::Stm;
//!
//! let stm = Stm::new();
//! let a = stm.new_tvar(10u64);
//! let b = stm.new_tvar(32u64);
//! let sum = stm.atomically(|tx| {
//!     let x = tx.read(&a)?;
//!     let y = tx.read(&b)?;
//!     tx.write(&b, x + y)?;
//!     tx.read(&b)
//! });
//! assert_eq!(sum, 42);
//! ```

pub mod ebr;
pub mod explore;
pub mod proto;
pub mod shim;
mod stm;

pub use stm::{CommitReceipt, ReadOrigin, Stm, StmConfig, StmStats, TVar, Tx, TxError, TxResult};
