//! The commit protocol, generic over the [`Shim`] atomics layer.
//!
//! This module is the software transliteration of the paper's §3.2
//! two-phase parallel commit, and it is instantiated twice: over
//! [`RealShim`](crate::shim::RealShim) by the production STM
//! ([`crate::Stm`]) and over [`ModelShim`](crate::shim::ModelShim) by
//! the interleaving explorer ([`crate::explore`]) — the *same* code
//! path is what gets model-checked.
//!
//! Mapping from the paper's messages to atomic operations (full table
//! in DESIGN.md §12):
//!
//! | paper | here |
//! |---|---|
//! | TID vendor | [`Vendor`]: gap-free `fetch_add` sequencer + per-shard handoff slots |
//! | directory NSTID + Skip Vector | [`Shard`]: one word packing `nstid` (40 bits) and a 24-bit skip window |
//! | `Skip` multicast | [`Shard::resolve`] on every non-footprint shard |
//! | `Probe` (deferred response) | [`Shard::await_serving`] — spin until `NSTID == tid` |
//! | `Mark` | [`CellAccess::set_mark`] — write-intent published on the cell so racing reads can stall |
//! | `Commit` multicast / gang upgrade | [`CellAccess::publish`] while holding serial position `tid`, then [`Shard::resolve`] on the footprint |
//! | invalidation of sharers | commit-time read validation: a changed stamp *is* the invalidation |
//! | starved tx keeps early TID | [`CommitMode::EarlyTid`]: TID acquired at restart, nothing resolved until it commits |
//!
//! The livelock-freedom argument carries over intact: every shard's
//! NSTID is ≤ the lowest unresolved TID, so the holder of that TID
//! never waits on anyone — it validates, publishes and resolves; and a
//! TID parked in a vendor handoff slot (an abort that consumed no shard
//! state) is *claimable* by any waiter, which then skips it everywhere
//! itself ([`Helper`]). Directories never wait on a thread that is not
//! running.

use crate::shim::{Shim, ShimU64};
use tcc_types::Tid;

/// Version stamp of a cell no committed transaction has written yet.
pub const STAMP_INITIAL: u64 = 0;

/// The version stamp a commit with `tid` publishes. Offset by one so
/// the gap-free sequence can start at TID 0 while stamp 0 stays
/// reserved for the initial version.
#[inline]
#[must_use]
pub fn stamp_of(tid: u64) -> u64 {
    tid + 1
}

/// Sentinel for "no TID" (empty vendor handoff slot, unmarked cell).
pub const TID_NONE: u64 = u64::MAX;

/// Bits of the packed shard word spent on the skip window.
const SKIP_BITS: u32 = 24;
const SKIP_MASK: u64 = (1 << SKIP_BITS) - 1;

/// Largest TID the vendor will ever emit: the packed NSTID field is 40
/// bits and must be able to hold `MAX_TID + 1` after the final commit.
/// ~1.1e12 transactions; the vendor *refuses* (panics) rather than
/// wrapping — see [`Vendor::acquire`].
pub const MAX_TID: u64 = (1 << 40) - 2;

/// Maximum number of directory shards (footprints are shard bitmaps in
/// one `u64`).
pub const MAX_SHARDS: usize = 64;

// ---------------------------------------------------------------------
// Directory shard
// ---------------------------------------------------------------------

/// One directory shard's commit state: the `Now Serving TID` register
/// and the Skip Vector of Fig. 4, packed into a single atomic word so
/// skip-ahead and advancement are one CAS.
///
/// Layout: bits 63..24 = NSTID (lowest unresolved TID at this shard),
/// bits 23..0 = skip window, where bit `b` set means TID
/// `nstid + 1 + b` is already resolved here and the register can slide
/// over it the moment `nstid` itself resolves.
pub struct Shard<S: Shim> {
    state: S::U64,
}

impl<S: Shim> Default for Shard<S> {
    fn default() -> Self {
        Shard::new()
    }
}

impl<S: Shim> Shard<S> {
    #[must_use]
    pub fn new() -> Self {
        Shard {
            state: S::U64::new(0),
        }
    }

    /// The lowest TID not yet resolved (committed or skipped) here.
    #[inline]
    pub fn nstid(&self) -> u64 {
        self.state.load() >> SKIP_BITS
    }

    /// Marks `tid` resolved at this shard — the software `Skip` (and
    /// the tail of `Commit`). Idempotent. If `tid` is more than the
    /// window size ahead of the shard's NSTID, the caller waits (via
    /// `env`) for older TIDs to resolve first; this is the Skip
    /// Vector's bounded-capacity back-pressure.
    pub fn resolve(&self, tid: u64, env: &impl HelpEnv) {
        loop {
            let s = self.state.load();
            let n = s >> SKIP_BITS;
            if tid < n {
                return; // already resolved (helper beat us to it)
            }
            let new = if tid == n {
                // Head resolves: slide over it plus any contiguously
                // pre-resolved successors recorded in the window.
                let bits = s & SKIP_MASK;
                let adv = 1 + u64::from(bits.trailing_ones());
                ((n + adv) << SKIP_BITS) | (bits >> adv)
            } else {
                let k = tid - n;
                if k > u64::from(SKIP_BITS) {
                    // Window full: can't record a resolution this far
                    // ahead until the head moves.
                    env.stalled(n);
                    continue;
                }
                let bit = 1 << (k - 1);
                debug_assert_eq!(s & bit, 0, "TID {tid} resolved twice at one shard");
                s | bit
            };
            if self.state.compare_exchange(s, new).is_ok() {
                return;
            }
        }
    }

    /// Waits until this shard is serving exactly `tid` — the software
    /// `Probe`, with the paper's deferred-response optimization: we
    /// don't poll-and-retry, we watch the register until it arrives.
    ///
    /// # Panics
    ///
    /// Panics if the shard has already advanced past `tid`: NSTID never
    /// passes an unresolved TID, so this means `tid` was resolved twice.
    pub fn await_serving(&self, tid: u64, env: &impl HelpEnv) {
        loop {
            let n = self.nstid();
            if n == tid {
                return;
            }
            assert!(
                n < tid,
                "shard advanced past TID {tid} (NSTID {n}) while it was still committing"
            );
            env.stalled(n);
        }
    }
}

// ---------------------------------------------------------------------
// TID vendor
// ---------------------------------------------------------------------

/// The gap-free TID vendor: a global `fetch_add` sequencer fronted by
/// per-shard *handoff slots*.
///
/// Gap-freedom is the property the whole protocol leans on (§2.1):
/// every TID ever emitted must eventually be resolved at **every**
/// shard, or NSTIDs stop advancing. The handoff slots keep aborts
/// cheap without ever creating a gap:
///
/// * A transaction that aborts *before touching any shard state*
///   (commit-time validation failure happens before anything is
///   resolved) parks its TID in its home shard's slot
///   ([`Vendor::recycle`]). The next committer from that home reuses
///   it — an older serial position, which can only help it.
/// * A parked TID that somebody is *waiting on* (it is the NSTID of a
///   shard another committer needs) is claimed by the waiter
///   ([`Vendor::claim`]) and skipped everywhere on the parker's behalf,
///   so a slot can never stall the system.
/// * If the home slot is occupied, [`Vendor::recycle`] refuses and the
///   aborter must skip the TID at every shard itself — the
///   shard-exhaustion path.
pub struct Vendor<S: Shim> {
    next: S::U64,
    slots: Box<[S::U64]>,
}

impl<S: Shim> Vendor<S> {
    /// A vendor with `slots` handoff slots, vending from TID 0.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Vendor::with_base(slots, 0)
    }

    /// As [`Vendor::new`] but vending from `base` — used by the
    /// wraparound-refusal tests to start near [`MAX_TID`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn with_base(slots: usize, base: u64) -> Self {
        assert!(slots > 0, "vendor needs at least one handoff slot");
        Vendor {
            next: S::U64::new(base),
            slots: (0..slots).map(|_| S::U64::new(TID_NONE)).collect(),
        }
    }

    /// Vends the next TID: a parked handoff from `home`'s slot if one
    /// is waiting, otherwise a fresh value off the global sequencer.
    ///
    /// # Panics
    ///
    /// Panics ("refuses") instead of wrapping once the sequencer
    /// reaches [`MAX_TID`]: TID arithmetic across the crate relies on
    /// the sequence being monotone, and [`Tid::checked_since`] is how
    /// the refusal is detected without ever computing a wrapped value.
    pub fn acquire(&self, home: usize) -> u64 {
        let slot = &self.slots[home % self.slots.len()];
        let parked = slot.swap(TID_NONE);
        if parked != TID_NONE {
            return parked;
        }
        let t = self.next.fetch_add(1);
        // Underflow-safe refusal: `MAX_TID.checked_since(t)` is `None`
        // exactly when the sequencer has run past the vendable space.
        assert!(
            Tid(MAX_TID).checked_since(Tid(t)).is_some(),
            "gap-free TID space exhausted at {t} (MAX_TID {MAX_TID}); refusing to wrap"
        );
        t
    }

    /// Hands an **unpublished** TID back for reuse. Only sound for a
    /// TID that has not touched any shard state (no skip, no
    /// await-and-validate side effects, no publication): a recycled TID
    /// must be indistinguishable from one never vended. Returns `false`
    /// if `home`'s slot is occupied — the caller then owns the TID's
    /// resolution and must skip it at every shard.
    #[must_use]
    pub fn recycle(&self, home: usize, tid: u64) -> bool {
        debug_assert_ne!(tid, TID_NONE);
        self.slots[home % self.slots.len()]
            .compare_exchange(TID_NONE, tid)
            .is_ok()
    }

    /// Atomically removes `tid` from whichever handoff slot parks it.
    /// Returns `true` if this caller won the claim and is now
    /// responsible for skipping `tid` at every shard.
    pub fn claim(&self, tid: u64) -> bool {
        for slot in self.slots.iter() {
            if slot.load() == tid && slot.compare_exchange(tid, TID_NONE).is_ok() {
                return true;
            }
        }
        false
    }

    /// TIDs handed out so far by the global sequencer (parked handoffs
    /// included).
    pub fn issued(&self) -> u64 {
        self.next.load()
    }
}

// ---------------------------------------------------------------------
// Commit state + helping
// ---------------------------------------------------------------------

/// Commit-path statistics (shim counters so the model counts them too).
pub struct ProtoStats<S: Shim> {
    /// Commits completed.
    pub commits: S::U64,
    /// Commit-time validation failures (normal mode).
    pub conflicts: S::U64,
    /// Aborted TIDs parked in a handoff slot.
    pub recycled: S::U64,
    /// Parked TIDs claimed and skipped by a waiter.
    pub claimed: S::U64,
    /// Aborts that found their handoff slot occupied and had to skip
    /// their TID at every shard themselves.
    pub slot_exhausted: S::U64,
    /// Commits that ran in early-TID (starvation) mode.
    pub early_commits: S::U64,
}

impl<S: Shim> ProtoStats<S> {
    fn new() -> Self {
        ProtoStats {
            commits: S::U64::new(0),
            conflicts: S::U64::new(0),
            recycled: S::U64::new(0),
            claimed: S::U64::new(0),
            slot_exhausted: S::U64::new(0),
            early_commits: S::U64::new(0),
        }
    }
}

/// The sharded commit state one STM instance owns: the vendor, the
/// directory shards, and the protocol counters.
pub struct CommitState<S: Shim> {
    pub vendor: Vendor<S>,
    pub shards: Box<[Shard<S>]>,
    pub stats: ProtoStats<S>,
}

impl<S: Shim> CommitState<S> {
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds [`MAX_SHARDS`], or if
    /// `vendor_slots` is zero.
    #[must_use]
    pub fn new(n_shards: usize, vendor_slots: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&n_shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        CommitState {
            vendor: Vendor::new(vendor_slots),
            shards: (0..n_shards).map(|_| Shard::new()).collect(),
            stats: ProtoStats::new(),
        }
    }

    /// The helping environment waits use.
    #[must_use]
    pub fn helper(&self) -> Helper<'_, S> {
        Helper { state: self }
    }
}

/// What a spinning wait does while it cannot progress. Separated into a
/// trait so shard primitives stay testable without a full
/// [`CommitState`].
pub trait HelpEnv {
    /// Called with the TID the wait is stuck behind (the shard's
    /// current NSTID). Must back off; may help resolve `head`.
    fn stalled(&self, head: u64);
}

/// Backoff-only environment (no helping) for unit tests.
pub struct NoHelp<S: Shim>(std::marker::PhantomData<S>);

impl<S: Shim> Default for NoHelp<S> {
    fn default() -> Self {
        NoHelp(std::marker::PhantomData)
    }
}

impl<S: Shim> HelpEnv for NoHelp<S> {
    fn stalled(&self, _head: u64) {
        S::pause();
    }
}

/// The production helping rule: a wait stuck behind TID `head` first
/// checks whether `head` is parked in a vendor handoff slot — an abort
/// whose owner may never come back for it — and if so claims it and
/// skips it at every shard itself. Claims are exclusive (slot CAS), so
/// exactly one thread resolves each parked TID. Helping can nest: while
/// skipping a claimed TID we may stall behind an even older parked TID
/// and claim that too; the chain is strictly decreasing, so it
/// terminates.
pub struct Helper<'a, S: Shim> {
    state: &'a CommitState<S>,
}

impl<S: Shim> HelpEnv for Helper<'_, S> {
    fn stalled(&self, head: u64) {
        if self.state.vendor.claim(head) {
            self.state.stats.claimed.fetch_add(1);
            for shard in self.state.shards.iter() {
                shard.resolve(head, self);
            }
        } else {
            S::pause();
        }
    }
}

// ---------------------------------------------------------------------
// Commit driver
// ---------------------------------------------------------------------

/// How the commit driver touches cells. Implemented by the real STM
/// (version-pointer cells plus the transaction's write buffer) and by
/// the explorer's model (one shim word of stamp per cell).
pub trait CellAccess {
    /// Opaque per-transaction cell handle (an index into the caller's
    /// read/write arrays).
    type Handle: Copy;

    /// The cell's current committed version stamp.
    fn stamp(&self, h: Self::Handle) -> u64;
    /// Publish write intent on the cell (the `Mark`): racing reads may
    /// stall on it. Purely an anti-waste hint — correctness never
    /// depends on a mark being observed.
    fn set_mark(&self, h: Self::Handle, tid: u64);
    /// Withdraw this transaction's mark (after publication, or on
    /// abort). `tid` is the value passed to `set_mark`, so the
    /// implementation can CAS it away without clobbering a concurrent
    /// marker that overwrote it.
    fn clear_mark(&self, h: Self::Handle, tid: u64);
    /// Make the transaction's buffered value for this cell the current
    /// committed version, stamped [`stamp_of`]`(tid)`. Only called
    /// while the cell's home shard is serving `tid`.
    fn publish(&mut self, h: Self::Handle, tid: u64);
}

/// One read-set entry presented to the driver.
#[derive(Debug, Clone, Copy)]
pub struct ReadEntry<H> {
    pub cell: H,
    pub shard: usize,
    /// The stamp the transaction observed when it read the cell.
    pub stamp: u64,
}

/// One write-set entry presented to the driver.
#[derive(Debug, Clone, Copy)]
pub struct WriteEntry<H> {
    pub cell: H,
    pub shard: usize,
}

/// Which commit flavour to run.
#[derive(Debug, Clone, Copy)]
pub enum CommitMode {
    /// Acquire a TID now (post-execution), with `home` as the vendor
    /// handoff slot to prefer.
    Normal { home: usize },
    /// Starvation mode: the TID was acquired *at restart*, before the
    /// transaction (re-)executed, and is held across validation
    /// failures. Nothing is resolved anywhere until this transaction
    /// finally commits, which freezes every shard's NSTID at or below
    /// it — the paper's "directories cannot serve any higher TID until
    /// it finishes".
    EarlyTid(u64),
}

/// The driver's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    Committed {
        tid: u64,
    },
    /// Commit-time validation failed. In normal mode the TID was
    /// recycled or skipped (nothing kept); in early mode the TID is
    /// retained for the next attempt.
    Conflict {
        kept_tid: Option<u64>,
    },
}

/// Fault-injection knobs for the explorer's teeth tests: each disables
/// one load-bearing step of the commit path, and the interleaving
/// explorer must catch the resulting serializability violations.
/// Always default (off) in production.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitTweaks {
    /// BUG: skip commit-time read validation entirely.
    pub skip_read_validation: bool,
    /// BUG: publish writes immediately after marking, *before* the
    /// write shards are serving our TID.
    pub publish_before_serving: bool,
}

/// Runs the two-phase parallel commit for one transaction.
///
/// Phases, mirroring §3.2:
///
/// 1. **TID** — vend (or, in early mode, reuse the held) TID.
/// 2. **Mark** — publish write intent on every written cell.
/// 3. **Probe/validate** — for every shard in the read∪write
///    footprint, wait until its NSTID equals our TID (the deferred
///    probe response), then check every read homed there still carries
///    the stamp we observed. A mismatch is the software image of an
///    invalidation: some older-TID commit wrote the cell after we read
///    it.
/// 4. **Publish** — with every footprint shard simultaneously serving
///    our TID, no other transaction can publish anywhere we read or
///    write; install the buffered writes (ownership publication).
/// 5. **Resolve** — resolve our TID at every shard: `Commit` for the
///    footprint, `Skip` for the rest. Deferring the skips to the end
///    costs nothing (nobody can need our skip before we are done — the
///    TIDs below us don't wait on us, and the TIDs above us cannot pass
///    us anyway) and is what makes the abort path side-effect-free and
///    the TID recyclable.
///
/// On validation failure nothing has been published or resolved, so the
/// TID is handed back to the vendor (or skipped everywhere if the
/// handoff slot is full), and the caller re-executes.
pub fn commit<S: Shim, C: CellAccess>(
    state: &CommitState<S>,
    reads: &[ReadEntry<C::Handle>],
    writes: &[WriteEntry<C::Handle>],
    cells: &mut C,
    mode: CommitMode,
    tweaks: &CommitTweaks,
) -> CommitOutcome {
    let n = state.shards.len();
    debug_assert!(n <= MAX_SHARDS);
    let (tid, early) = match mode {
        CommitMode::Normal { home } => (state.vendor.acquire(home), false),
        CommitMode::EarlyTid(t) => (t, true),
    };

    // Footprint bitmap: which shards we must be served at.
    let mut footprint: u64 = 0;
    for r in reads {
        debug_assert!(r.shard < n);
        footprint |= 1 << r.shard;
    }
    for w in writes {
        debug_assert!(w.shard < n);
        footprint |= 1 << w.shard;
    }

    // Phase 2: Mark.
    for w in writes {
        cells.set_mark(w.cell, tid);
    }
    if tweaks.publish_before_serving {
        // BUG KNOB: ownership published before the shards serialize us.
        for w in writes {
            cells.publish(w.cell, tid);
        }
    }

    // Phase 3: Probe + validate, one footprint shard at a time. Order
    // doesn't matter for liveness: every wait depends only on
    // strictly-lower TIDs resolving.
    let helper = state.helper();
    let mut conflicted = false;
    'shards: for s in 0..n {
        if footprint & (1 << s) == 0 {
            continue;
        }
        state.shards[s].await_serving(tid, &helper);
        if tweaks.skip_read_validation {
            continue;
        }
        for r in reads {
            if r.shard == s && cells.stamp(r.cell) != r.stamp {
                conflicted = true;
                break 'shards;
            }
        }
    }

    if conflicted {
        for w in writes {
            cells.clear_mark(w.cell, tid);
        }
        state.stats.conflicts.fetch_add(1);
        if early {
            // Keep the TID and the frozen serial position; re-execute.
            return CommitOutcome::Conflict {
                kept_tid: Some(tid),
            };
        }
        let home = match mode {
            CommitMode::Normal { home } => home,
            CommitMode::EarlyTid(_) => unreachable!(),
        };
        // Nothing was resolved or published under this TID: hand it
        // off gap-free, or skip it everywhere if the slot is taken.
        if state.vendor.recycle(home, tid) {
            state.stats.recycled.fetch_add(1);
        } else {
            state.stats.slot_exhausted.fetch_add(1);
            for shard in state.shards.iter() {
                shard.resolve(tid, &helper);
            }
        }
        return CommitOutcome::Conflict { kept_tid: None };
    }

    // Phase 4: ownership publication at serial position `tid`.
    if !tweaks.publish_before_serving {
        for w in writes {
            cells.publish(w.cell, tid);
        }
    }
    for w in writes {
        cells.clear_mark(w.cell, tid);
    }

    // Phase 5: Commit multicast to the footprint, Skip to the rest.
    for shard in state.shards.iter() {
        shard.resolve(tid, &helper);
    }
    state.stats.commits.fetch_add(1);
    if early {
        state.stats.early_commits.fetch_add(1);
    }
    CommitOutcome::Committed { tid }
}

/// Should a read of a cell marked by `marked_by` stall? True when the
/// marker holds the cell's home shard's serial position — publication
/// is imminent, and reading the doomed old version would only buy a
/// guaranteed conflict later. Purely an abort-rate optimization; reads
/// proceed after a bounded number of stalls regardless.
#[inline]
pub fn read_should_stall<S: Shim>(state: &CommitState<S>, shard: usize, marked_by: u64) -> bool {
    marked_by != TID_NONE && state.shards[shard].nstid() == marked_by
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::RealShim;

    type RState = CommitState<RealShim>;

    fn nohelp() -> NoHelp<RealShim> {
        NoHelp::default()
    }

    #[test]
    fn shard_resolves_in_order() {
        let sh: Shard<RealShim> = Shard::new();
        assert_eq!(sh.nstid(), 0);
        sh.resolve(0, &nohelp());
        assert_eq!(sh.nstid(), 1);
        sh.resolve(1, &nohelp());
        assert_eq!(sh.nstid(), 2);
    }

    #[test]
    fn shard_skip_vector_slides_over_out_of_order_resolutions() {
        let sh: Shard<RealShim> = Shard::new();
        sh.resolve(2, &nohelp());
        sh.resolve(1, &nohelp());
        assert_eq!(sh.nstid(), 0, "head still unresolved");
        sh.resolve(0, &nohelp());
        assert_eq!(sh.nstid(), 3, "slides over the whole resolved run");
        sh.resolve(4, &nohelp());
        sh.resolve(3, &nohelp());
        assert_eq!(sh.nstid(), 5);
    }

    #[test]
    fn shard_resolve_is_idempotent_below_nstid() {
        let sh: Shard<RealShim> = Shard::new();
        sh.resolve(0, &nohelp());
        sh.resolve(0, &nohelp());
        assert_eq!(sh.nstid(), 1);
    }

    #[test]
    fn shard_window_full_waits_for_head() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sh: Shard<RealShim> = Shard::new();
        // Fill the whole window (TIDs 1..=24 with head 0 unresolved).
        for t in 1..=u64::from(SKIP_BITS) {
            sh.resolve(t, &nohelp());
        }
        struct ResolveHeadOnce<'a> {
            sh: &'a Shard<RealShim>,
            calls: AtomicU64,
        }
        impl HelpEnv for ResolveHeadOnce<'_> {
            fn stalled(&self, head: u64) {
                assert_eq!(head, 0);
                self.calls.fetch_add(1, Ordering::SeqCst);
                self.sh.resolve(0, &NoHelp::<RealShim>::default());
            }
        }
        let env = ResolveHeadOnce {
            sh: &sh,
            calls: AtomicU64::new(0),
        };
        // 25 is one past the window; resolving it must stall until the
        // head resolves, after which the window has slid to 25 exactly.
        sh.resolve(25, &env);
        assert_eq!(env.calls.load(Ordering::SeqCst), 1);
        assert_eq!(sh.nstid(), 26);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "resolved twice")]
    fn double_resolution_in_window_is_caught_in_debug() {
        let sh: Shard<RealShim> = Shard::new();
        sh.resolve(3, &nohelp());
        sh.resolve(3, &nohelp());
    }

    #[test]
    fn vendor_vends_sequentially_and_recycles() {
        let v: Vendor<RealShim> = Vendor::new(2);
        assert_eq!(v.acquire(0), 0);
        assert_eq!(v.acquire(1), 1);
        assert!(v.recycle(0, 0));
        // Handoff: same home gets the parked TID back.
        assert_eq!(v.acquire(0), 0);
        assert_eq!(v.acquire(0), 2);
        assert_eq!(v.issued(), 3);
    }

    #[test]
    fn vendor_slot_exhaustion_refuses_second_park() {
        let v: Vendor<RealShim> = Vendor::new(1);
        let a = v.acquire(0);
        let b = v.acquire(0);
        assert!(v.recycle(0, a));
        assert!(!v.recycle(0, b), "occupied slot must refuse the park");
    }

    #[test]
    fn vendor_claim_is_exclusive() {
        let v: Vendor<RealShim> = Vendor::new(4);
        let t = v.acquire(2);
        assert!(v.recycle(2, t));
        assert!(v.claim(t));
        assert!(!v.claim(t), "second claim must lose");
        assert!(!v.claim(99), "claiming an unparked TID fails");
    }

    #[test]
    #[should_panic(expected = "refusing to wrap")]
    fn vendor_refuses_to_wrap_past_max_tid() {
        let v: Vendor<RealShim> = Vendor::with_base(1, MAX_TID);
        let t = v.acquire(0);
        assert_eq!(t, MAX_TID);
        let _ = v.acquire(0);
    }

    /// Minimal real-shim cells for driving the commit path directly.
    struct TestCells {
        stamps: Vec<u64>,
    }
    impl TestCells {
        fn new(n: usize) -> Self {
            TestCells {
                stamps: vec![STAMP_INITIAL; n],
            }
        }
    }
    impl CellAccess for &mut TestCells {
        type Handle = usize;
        fn stamp(&self, h: usize) -> u64 {
            self.stamps[h]
        }
        fn set_mark(&self, _h: usize, _tid: u64) {}
        fn clear_mark(&self, _h: usize, _tid: u64) {}
        fn publish(&mut self, h: usize, tid: u64) {
            self.stamps[h] = stamp_of(tid);
        }
    }

    #[test]
    fn single_threaded_commit_chain() {
        let st = RState::new(4, 4);
        let mut cells = TestCells::new(2);
        // Blind write to cell 0 (shard 0).
        let out = commit(
            &st,
            &[],
            &[WriteEntry { cell: 0, shard: 0 }],
            &mut (&mut cells),
            CommitMode::Normal { home: 0 },
            &CommitTweaks::default(),
        );
        assert_eq!(out, CommitOutcome::Committed { tid: 0 });
        assert_eq!(cells.stamps[0], stamp_of(0));
        // Read it back + write cell 1 on another shard.
        let out = commit(
            &st,
            &[ReadEntry {
                cell: 0,
                shard: 0,
                stamp: stamp_of(0),
            }],
            &[WriteEntry { cell: 1, shard: 3 }],
            &mut (&mut cells),
            CommitMode::Normal { home: 0 },
            &CommitTweaks::default(),
        );
        assert_eq!(out, CommitOutcome::Committed { tid: 1 });
        // Every shard resolved both TIDs.
        for sh in st.shards.iter() {
            assert_eq!(sh.nstid(), 2);
        }
    }

    #[test]
    fn stale_read_conflicts_and_recycles_the_tid() {
        let st = RState::new(2, 2);
        let mut cells = TestCells::new(1);
        let _ = commit(
            &st,
            &[],
            &[WriteEntry { cell: 0, shard: 0 }],
            &mut (&mut cells),
            CommitMode::Normal { home: 0 },
            &CommitTweaks::default(),
        );
        // Claim to have observed the initial stamp: stale now.
        let out = commit(
            &st,
            &[ReadEntry {
                cell: 0,
                shard: 0,
                stamp: STAMP_INITIAL,
            }],
            &[],
            &mut (&mut cells),
            CommitMode::Normal { home: 0 },
            &CommitTweaks::default(),
        );
        assert_eq!(out, CommitOutcome::Conflict { kept_tid: None });
        assert_eq!(st.stats.conflicts.load(), 1);
        assert_eq!(st.stats.recycled.load(), 1);
        // The recycled TID comes back on the next acquire from home 0.
        assert_eq!(st.vendor.acquire(0), 1);
    }

    #[test]
    fn early_tid_mode_keeps_its_tid_across_conflicts() {
        let st = RState::new(2, 2);
        let mut cells = TestCells::new(1);
        let early = st.vendor.acquire(0);
        assert_eq!(early, 0);
        // A lower... no lower TID exists; make a conflicting commit
        // happen "during execution": another tx acquires TID 1 and
        // cannot commit past us — so instead simulate the conflict by
        // an initial-stamp mismatch after we ourselves publish under a
        // different pretend history. Simplest: claim a wrong stamp.
        let out = commit(
            &st,
            &[ReadEntry {
                cell: 0,
                shard: 0,
                stamp: 99, // wrong on purpose
            }],
            &[],
            &mut (&mut cells),
            CommitMode::EarlyTid(early),
            &CommitTweaks::default(),
        );
        assert_eq!(
            out,
            CommitOutcome::Conflict {
                kept_tid: Some(early)
            }
        );
        // Nothing resolved: every shard still waits on TID 0.
        for sh in st.shards.iter() {
            assert_eq!(sh.nstid(), 0);
        }
        // Retry with the right stamp commits and releases everything.
        let out = commit(
            &st,
            &[ReadEntry {
                cell: 0,
                shard: 0,
                stamp: STAMP_INITIAL,
            }],
            &[],
            &mut (&mut cells),
            CommitMode::EarlyTid(early),
            &CommitTweaks::default(),
        );
        assert_eq!(out, CommitOutcome::Committed { tid: early });
        assert_eq!(st.stats.early_commits.load(), 1);
        for sh in st.shards.iter() {
            assert_eq!(sh.nstid(), 1);
        }
    }

    #[test]
    fn helper_claims_a_parked_tid_instead_of_waiting_forever() {
        let st = RState::new(2, 2);
        // TID 0 parked in a slot (an abort that never touched shards).
        let t = st.vendor.acquire(0);
        assert!(st.vendor.recycle(0, t));
        // TID 1's commit must not wait on the parked 0: the helper
        // claims and skips it.
        let mut cells = TestCells::new(1);
        let out = commit(
            &st,
            &[],
            &[WriteEntry { cell: 0, shard: 1 }],
            &mut (&mut cells),
            CommitMode::Normal { home: 1 },
            &CommitTweaks::default(),
        );
        assert_eq!(out, CommitOutcome::Committed { tid: 1 });
        assert_eq!(st.stats.claimed.load(), 1);
        assert_eq!(st.shards[0].nstid(), 2);
        assert_eq!(st.shards[1].nstid(), 2);
    }

    #[test]
    fn read_stall_predicate() {
        let st = RState::new(2, 2);
        assert!(!read_should_stall(&st, 0, TID_NONE));
        assert!(read_should_stall(&st, 0, 0), "serving TID 0, marked by 0");
        assert!(!read_should_stall(&st, 0, 5), "marker far from serving");
    }
}
