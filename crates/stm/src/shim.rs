//! The instrumented atomics layer the commit protocol runs on.
//!
//! Every atomic word of the *commit-path state* — the TID vendor, the
//! directory shards' NSTID/skip-window registers, cell marks, and (in
//! the model) cell version stamps — is accessed through the [`Shim`]
//! trait instead of `std::sync::atomic` directly. The protocol code in
//! [`crate::proto`] is generic over the shim, which gives it exactly two
//! instantiations:
//!
//! * [`RealShim`] — plain `std` atomics. All protocol-state operations
//!   use `SeqCst`: they are read-modify-write operations on a handful of
//!   contended words where the cost difference against `AcqRel` is noise
//!   on every mainstream ISA, and sequential consistency is the memory
//!   model the interleaving explorer actually verifies. Claiming weaker
//!   orderings than the model checks would be unsound by construction.
//!   (The *data* path — cell version pointers — is not shim state; its
//!   Acquire/Release discipline is documented at the site, DESIGN.md
//!   §12.6.)
//! * [`ModelShim`] — every operation first yields to a cooperative
//!   [scheduler](crate::explore) that decides which thread runs next, so
//!   a bounded-exhaustive or seeded-random explorer can drive the *same
//!   protocol code* through adversarial interleavings. Outside a model
//!   run (no scheduler registered for the thread) it behaves exactly
//!   like [`RealShim`].
//!
//! Spin-wait sites call [`Shim::pause`] rather than looping hot: the
//! real shim yields the CPU (essential on oversubscribed hosts — a
//! committer that spins through its quantum while holding the lowest
//! TID would stall the whole system), and the model shim reports
//! "blocked" to the scheduler so exploration switches threads instead
//! of burning its step budget.

use std::sync::atomic::{AtomicU64, Ordering};

/// One 64-bit word of commit-protocol state.
pub trait ShimU64: Send + Sync + 'static {
    fn new(v: u64) -> Self;
    fn load(&self) -> u64;
    fn store(&self, v: u64);
    fn swap(&self, v: u64) -> u64;
    /// Compare-and-swap; returns `Err(actual)` on failure.
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64>;
    fn fetch_add(&self, v: u64) -> u64;
}

/// Selects the atomics substrate the protocol runs on.
pub trait Shim: Sized + Send + Sync + 'static {
    type U64: ShimU64;

    /// Back off inside a spin-wait. Called every iteration of every
    /// wait loop in the protocol; must eventually let other threads
    /// run.
    fn pause();
}

// ---------------------------------------------------------------------
// Real mode
// ---------------------------------------------------------------------

/// Production substrate: `std` atomics, `SeqCst` protocol state.
pub struct RealShim;

/// [`ShimU64`] backed directly by [`AtomicU64`].
#[derive(Debug, Default)]
pub struct RealU64(AtomicU64);

impl ShimU64 for RealU64 {
    #[inline]
    fn new(v: u64) -> Self {
        RealU64(AtomicU64::new(v))
    }
    #[inline]
    fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
    #[inline]
    fn store(&self, v: u64) {
        self.0.store(v, Ordering::SeqCst);
    }
    #[inline]
    fn swap(&self, v: u64) -> u64 {
        self.0.swap(v, Ordering::SeqCst)
    }
    #[inline]
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
    #[inline]
    fn fetch_add(&self, v: u64) -> u64 {
        self.0.fetch_add(v, Ordering::SeqCst)
    }
}

impl Shim for RealShim {
    type U64 = RealU64;

    #[inline]
    fn pause() {
        // A few pipeline pauses then a scheduler yield: on an
        // oversubscribed host the thread we are waiting on may not be
        // running at all, so spinning without yielding is a livelock.
        std::hint::spin_loop();
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------
// Model mode
// ---------------------------------------------------------------------

/// Exploration substrate: every operation is a scheduling point.
pub struct ModelShim;

/// [`ShimU64`] that reports to the thread's registered model scheduler
/// before every access. The underlying storage is still a real atomic —
/// the scheduler serializes threads, so each access happens in the
/// exact order the explored schedule dictates.
#[derive(Debug, Default)]
pub struct ModelU64(AtomicU64);

impl ShimU64 for ModelU64 {
    fn new(v: u64) -> Self {
        ModelU64(AtomicU64::new(v))
    }
    fn load(&self) -> u64 {
        crate::explore::yieldpoint(false);
        self.0.load(Ordering::SeqCst)
    }
    fn store(&self, v: u64) {
        crate::explore::yieldpoint(false);
        self.0.store(v, Ordering::SeqCst);
    }
    fn swap(&self, v: u64) -> u64 {
        crate::explore::yieldpoint(false);
        self.0.swap(v, Ordering::SeqCst)
    }
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        crate::explore::yieldpoint(false);
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
    fn fetch_add(&self, v: u64) -> u64 {
        crate::explore::yieldpoint(false);
        self.0.fetch_add(v, Ordering::SeqCst)
    }
}

impl Shim for ModelShim {
    type U64 = ModelU64;

    fn pause() {
        // Report "spinning": the scheduler must hand the CPU to another
        // thread or the wait can never be satisfied.
        crate::explore::yieldpoint(true);
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_u64_semantics() {
        let a = RealU64::new(7);
        assert_eq!(a.load(), 7);
        a.store(9);
        assert_eq!(a.swap(11), 9);
        assert_eq!(a.compare_exchange(11, 12), Ok(11));
        assert_eq!(a.compare_exchange(11, 13), Err(12));
        assert_eq!(a.fetch_add(5), 12);
        assert_eq!(a.load(), 17);
    }

    #[test]
    fn model_u64_without_scheduler_acts_real() {
        // Outside an exploration run the model shim must be a drop-in
        // real atomic, so model-mode unit tests can run it directly.
        let a = ModelU64::new(1);
        assert_eq!(a.fetch_add(1), 1);
        assert_eq!(a.load(), 2);
        ModelShim::pause();
    }
}
