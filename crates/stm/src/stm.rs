//! The user-facing STM: [`TVar`] cells, composable [`Tx`] read/write
//! sets, and the retry loop with starvation escalation.
//!
//! The surface is kcas-shaped — `stm.atomically(|tx| { let v =
//! tx.read(&a)?; tx.write(&b, v + 1)?; Ok(()) })` — but the commit path
//! underneath is the paper's non-blocking protocol
//! ([`crate::proto::commit`]) over [`RealShim`] atomics, which is what
//! buys the livelock-freedom guarantee classic obstruction-free kcas
//! designs lack: the transaction holding the lowest TID never waits on
//! anyone, and a starved transaction escalates to early-TID acquisition
//! ([`CommitMode::EarlyTid`]) after `starvation_threshold` failed
//! attempts, after which it commits within two more executions.
//!
//! Cells are version pointers: a committed write allocates one
//! [`Version<T>`] node (stamp + value) and publishes it with a single
//! pointer swap — the software image of the paper's write-back commit
//! via ownership publication, where commit communicates *who owns the
//! line*, not the data. Displaced versions are reclaimed through
//! [`crate::ebr`]. Reads are invisible; consistency during execution is
//! incremental revalidation (NOrec-style): every read re-checks the
//! stamps of all prior reads *after* loading the new value, so the
//! whole read set was simultaneously current at that load — the
//! transaction never observes a state no serial execution could produce
//! (opacity), which matters because user closures run on it.

use crate::ebr;
use crate::proto::{
    self, stamp_of, CellAccess, CommitMode, CommitOutcome, CommitState, CommitTweaks, ReadEntry,
    WriteEntry, STAMP_INITIAL, TID_NONE,
};
use crate::shim::{RealShim, Shim, ShimU64};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tcc_types::Tid;

// ---------------------------------------------------------------------
// Version nodes
// ---------------------------------------------------------------------

/// Type-erased header every committed version starts with. `#[repr(C)]`
/// so a `*mut VersionHdr` is also a pointer to the containing
/// [`Version<T>`]'s first field and the stamp can be read without
/// knowing `T`.
#[repr(C)]
struct VersionHdr {
    stamp: u64,
    /// Frees the whole `Version<T>` allocation; stored per-node so the
    /// cell can be dropped and garbage reclaimed type-erased.
    free: unsafe fn(*mut VersionHdr),
}

#[repr(C)]
struct Version<T> {
    hdr: VersionHdr,
    value: T,
}

unsafe fn free_version<T>(p: *mut VersionHdr) {
    drop(unsafe { Box::from_raw(p.cast::<Version<T>>()) });
}

fn alloc_version<T>(stamp: u64, value: T) -> *mut VersionHdr {
    Box::into_raw(Box::new(Version {
        hdr: VersionHdr {
            stamp,
            free: free_version::<T>,
        },
        value,
    }))
    .cast::<VersionHdr>()
}

unsafe fn free_erased(p: *mut ()) {
    let hdr = p.cast::<VersionHdr>();
    unsafe { ((*hdr).free)(hdr) };
}

// ---------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------

/// Type-erased cell state shared by all clones of a [`TVar`].
struct CellCore {
    /// Home directory shard (assigned round-robin at creation — the
    /// software image of address-interleaved directories).
    shard: usize,
    /// Write-intent mark: TID of a committer about to publish here, or
    /// [`TID_NONE`]. A hint only — see [`proto::read_should_stall`].
    mark: AtomicU64,
    /// The current committed version. Readers `Acquire`-load it (to see
    /// the version's contents), commit `AcqRel`-swaps it.
    current: AtomicPtr<VersionHdr>,
    /// Keeps the commit state and collector alive as long as any TVar
    /// clone exists.
    stm: Arc<Inner>,
}

impl Drop for CellCore {
    fn drop(&mut self) {
        // Last TVar clone gone: nobody can load `current` anymore, and
        // all *previous* versions were retired through EBR at publish
        // time, so the final version can be freed inline.
        let p = *self.current.get_mut();
        if !p.is_null() {
            unsafe { ((*p).free)(p) };
        }
    }
}

/// A transactional variable: a `T`-typed cell readable and writable
/// only inside [`Tx`] closures. Cloning is cheap (`Arc`) and clones
/// alias the same cell.
pub struct TVar<T> {
    core: Arc<CellCore>,
    _t: PhantomData<T>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
            _t: PhantomData,
        }
    }
}

// Values of `T` move between threads through the cell and `&T` is
// cloned concurrently, hence both bounds.
unsafe impl<T: Send + Sync> Send for TVar<T> {}
unsafe impl<T: Send + Sync> Sync for TVar<T> {}

// ---------------------------------------------------------------------
// Errors, receipts, config, stats
// ---------------------------------------------------------------------

/// Why a transaction attempt failed (it will be retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// A concurrent commit invalidated something this attempt read.
    Conflict,
}

pub type TxResult<T> = Result<T, TxError>;

/// Where a [`Tx::read_versioned`] value came from — the differential
/// harness uses this to reconstruct reads-from edges for the
/// simulator's serializability checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOrigin {
    /// A committed version: `Some(tid)` of the committing transaction,
    /// or `None` for the initial value.
    Committed(Option<Tid>),
    /// The transaction's own buffered write.
    OwnWrite,
}

/// Proof of commit returned by [`Stm::run`].
#[derive(Debug, Clone, Copy)]
pub struct CommitReceipt {
    /// The gap-free TID this transaction committed at — its position
    /// in the global serial order.
    pub tid: Tid,
    /// Execution attempts it took (1 = first try).
    pub attempts: u32,
    /// Whether the commit ran in early-TID starvation mode.
    pub early: bool,
}

/// Construction parameters for [`Stm::with_config`].
#[derive(Debug, Clone, Copy)]
pub struct StmConfig {
    /// Directory shard count, `1..=`[`proto::MAX_SHARDS`].
    pub shards: usize,
    /// TID-vendor handoff slots (usually = shards).
    pub vendor_slots: usize,
    /// Failed attempts before a transaction escalates to early-TID
    /// acquisition (the paper's starvation defense).
    pub starvation_threshold: u32,
    /// Max spins a read stalls on a marked cell whose writer holds the
    /// serial position (abort-avoidance hint; 0 disables stalling).
    pub read_stall_spins: u32,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            shards: 8,
            vendor_slots: 8,
            starvation_threshold: 4,
            read_stall_spins: 64,
        }
    }
}

/// Monotonic counters snapshot from [`Stm::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StmStats {
    pub commits: u64,
    pub conflicts: u64,
    pub early_commits: u64,
    pub recycled_tids: u64,
    pub claimed_tids: u64,
    pub slot_exhausted: u64,
    /// TIDs handed out by the global sequencer so far.
    pub issued_tids: u64,
}

// ---------------------------------------------------------------------
// Stm
// ---------------------------------------------------------------------

struct Inner {
    state: CommitState<RealShim>,
    collector: ebr::Collector,
    config: StmConfig,
    next_cell: AtomicUsize,
}

/// A software transactional memory instance: a TID vendor, a set of
/// directory shards, and an epoch collector. Cheap to clone (`Arc`).
#[derive(Clone)]
pub struct Stm {
    inner: Arc<Inner>,
}

impl Default for Stm {
    fn default() -> Self {
        Stm::new()
    }
}

/// Stable small integer for the calling thread, used as the vendor
/// handoff home so recycled TIDs stay local.
fn thread_home() -> usize {
    static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
    }
    HOME.with(|h| *h)
}

impl Stm {
    #[must_use]
    pub fn new() -> Self {
        Stm::with_config(StmConfig::default())
    }

    /// # Panics
    ///
    /// Panics if the shard count is outside `1..=`[`proto::MAX_SHARDS`]
    /// or `vendor_slots` is zero.
    #[must_use]
    pub fn with_config(config: StmConfig) -> Self {
        Stm {
            inner: Arc::new(Inner {
                state: CommitState::new(config.shards, config.vendor_slots),
                collector: ebr::Collector::new(),
                config,
                next_cell: AtomicUsize::new(0),
            }),
        }
    }

    /// Creates a cell holding `init`. Cells are assigned to directory
    /// shards round-robin.
    pub fn new_tvar<T: Clone + Send + Sync + 'static>(&self, init: T) -> TVar<T> {
        let idx = self.inner.next_cell.fetch_add(1, Ordering::Relaxed);
        TVar {
            core: Arc::new(CellCore {
                shard: idx % self.inner.config.shards,
                mark: AtomicU64::new(TID_NONE),
                current: AtomicPtr::new(alloc_version(STAMP_INITIAL, init)),
                stm: Arc::clone(&self.inner),
            }),
            _t: PhantomData,
        }
    }

    /// Runs `f` transactionally until it commits, returning its result
    /// plus the [`CommitReceipt`].
    ///
    /// `f` may be re-executed any number of times; side effects other
    /// than `tx` operations must be idempotent. If `f` panics, the
    /// panic propagates and the instance stays live: a starvation-mode
    /// early TID held at that point is resolved at every shard on
    /// unwind (see [`EarlyTidGuard`]), so other threads keep
    /// committing.
    pub fn run<R>(&self, mut f: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> (R, CommitReceipt) {
        let inner = &*self.inner;
        let home = thread_home();
        let mut attempts: u32 = 0;
        let mut early = EarlyTidGuard { inner, tid: None };
        loop {
            attempts += 1;
            if early.tid.is_none() && attempts > inner.config.starvation_threshold {
                // Starvation escalation: take the TID *before*
                // re-executing. Until we commit, no shard's NSTID can
                // pass it, so the state we re-read stabilizes and the
                // next validation is conflict-free.
                early.tid = Some(inner.state.vendor.acquire(home));
            }
            let mut tx = Tx::new(inner);
            match f(&mut tx) {
                Ok(r) => {
                    let was_early = early.tid.is_some();
                    let mode = match early.tid {
                        Some(t) => CommitMode::EarlyTid(t),
                        None => CommitMode::Normal { home },
                    };
                    match tx.commit(mode) {
                        CommitOutcome::Committed { tid } => {
                            // The commit resolved the TID everywhere;
                            // disarm the guard before returning.
                            early.tid = None;
                            return (
                                r,
                                CommitReceipt {
                                    tid: Tid(tid),
                                    attempts,
                                    early: was_early,
                                },
                            );
                        }
                        CommitOutcome::Conflict { kept_tid } => {
                            early.tid = kept_tid;
                        }
                    }
                }
                // Execution-time validation failure; an early TID (if
                // held) is kept — nothing was resolved under it.
                Err(TxError::Conflict) => {}
            }
            backoff(attempts);
        }
    }

    /// [`Stm::run`] without the receipt.
    pub fn atomically<R>(&self, f: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        self.run(f).0
    }

    pub fn stats(&self) -> StmStats {
        let s = &self.inner.state.stats;
        StmStats {
            commits: s.commits.load(),
            conflicts: s.conflicts.load(),
            early_commits: s.early_commits.load(),
            recycled_tids: s.recycled.load(),
            claimed_tids: s.claimed.load(),
            slot_exhausted: s.slot_exhausted.load(),
            issued_tids: self.inner.state.vendor.issued(),
        }
    }

    /// Protocol frontier: `(tids_issued, per-shard NSTID)`. At
    /// quiescence after a final commit, every shard's NSTID equals the
    /// issued count — the observable form of gap-freedom (no TID was
    /// ever lost; every one was resolved at every shard).
    pub fn frontier(&self) -> (u64, Vec<u64>) {
        (
            self.inner.state.vendor.issued(),
            self.inner.state.shards.iter().map(|s| s.nstid()).collect(),
        )
    }

    pub fn config(&self) -> StmConfig {
        self.inner.config
    }
}

/// Owns a starvation-mode early TID across re-executions of the user
/// closure in [`Stm::run`]. A gap in the TID sequence is fatal to the
/// whole instance — no shard can ever serve past an unresolved TID —
/// and user closures may panic (asserts, slice indexing are ordinary
/// Rust). If the closure unwinds while a TID is held, the TID has
/// touched no shard state (an early TID resolves nothing until its
/// commit succeeds), so this guard's `Drop` resolves it at every shard
/// and lets the panic propagate against a still-live instance. The run
/// loop disarms the guard (`tid = None`) once a commit has resolved
/// the TID itself.
struct EarlyTidGuard<'s> {
    inner: &'s Inner,
    tid: Option<u64>,
}

impl Drop for EarlyTidGuard<'_> {
    fn drop(&mut self) {
        if let Some(tid) = self.tid {
            let helper = self.inner.state.helper();
            for shard in self.inner.state.shards.iter() {
                shard.resolve(tid, &helper);
            }
        }
    }
}

fn backoff(attempts: u32) {
    // Yield-heavy: on an oversubscribed host the conflicting committer
    // needs our quantum more than we need to spin.
    for _ in 0..(1u32 << attempts.min(4)) {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------

struct ReadSlot {
    core: Arc<CellCore>,
    stamp: u64,
}

struct WriteSlot {
    core: Arc<CellCore>,
    /// Pre-allocated version node; stamp patched at publish time.
    /// Owned by the Tx until published, then owned by the cell.
    prepared: *mut VersionHdr,
    published: bool,
}

/// One transaction attempt: invisible-read read set + buffered write
/// set, pinned for its whole lifetime so version loads stay safe.
pub struct Tx<'s> {
    stm: &'s Inner,
    guard: ebr::Guard<'s>,
    reads: Vec<ReadSlot>,
    writes: Vec<WriteSlot>,
}

impl<'s> Tx<'s> {
    fn new(stm: &'s Inner) -> Self {
        Tx {
            stm,
            guard: stm.collector.pin(),
            // Typical footprints are a handful of cells; skip the
            // doubling reallocs on the hot path.
            reads: Vec::with_capacity(8),
            writes: Vec::with_capacity(4),
        }
    }

    fn check_same_stm<T>(&self, v: &TVar<T>) {
        assert!(
            std::ptr::eq(Arc::as_ptr(&v.core.stm), self.stm),
            "TVar used with a different Stm instance"
        );
    }

    /// Re-checks that every recorded read still carries the stamp we
    /// observed. Called after each new read's value load: passing means
    /// the entire read set (including the value just loaded) was
    /// simultaneously current at that load instant.
    fn validate_reads(&self) -> TxResult<()> {
        for slot in &self.reads {
            let p = slot.core.current.load(Ordering::Acquire);
            if unsafe { (*p).stamp } != slot.stamp {
                return Err(TxError::Conflict);
            }
        }
        Ok(())
    }

    /// Reads `v`, also reporting where the value came from.
    pub fn read_versioned<T: Clone + Send + Sync + 'static>(
        &mut self,
        v: &TVar<T>,
    ) -> TxResult<(T, ReadOrigin)> {
        self.check_same_stm(v);
        let core = &v.core;

        // Read-your-own-write.
        if let Some(w) = self.writes.iter().find(|w| Arc::ptr_eq(&w.core, core)) {
            let value = unsafe { (*w.prepared.cast::<Version<T>>()).value.clone() };
            return Ok((value, ReadOrigin::OwnWrite));
        }

        // Mark stall: if a committer has marked this cell and already
        // holds the cell's serial position, its publication is
        // imminent — reading the doomed version would only manufacture
        // a conflict. Bounded, so it can never become a wait-for edge.
        let mut spins = 0;
        while spins < self.stm.config.read_stall_spins {
            let m = core.mark.load(Ordering::SeqCst);
            if !proto::read_should_stall(&self.stm.state, core.shard, m) {
                break;
            }
            spins += 1;
            RealShim::pause();
        }

        let p = core.current.load(Ordering::Acquire);
        let (stamp, value) = unsafe { ((*p).stamp, (*p.cast::<Version<T>>()).value.clone()) };
        // Opacity: the whole read set must be current at the instant
        // `p` was loaded.
        self.validate_reads()?;

        let origin = if stamp == STAMP_INITIAL {
            ReadOrigin::Committed(None)
        } else {
            ReadOrigin::Committed(Some(Tid(stamp - 1)))
        };
        if !self.reads.iter().any(|r| Arc::ptr_eq(&r.core, core)) {
            self.reads.push(ReadSlot {
                core: Arc::clone(core),
                stamp,
            });
        }
        Ok((value, origin))
    }

    /// Reads `v`'s current value into the transaction's read set.
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, v: &TVar<T>) -> TxResult<T> {
        self.read_versioned(v).map(|(value, _)| value)
    }

    /// Buffers a write of `value` to `v` (visible to this transaction's
    /// subsequent reads, published only at commit).
    pub fn write<T: Clone + Send + Sync + 'static>(
        &mut self,
        v: &TVar<T>,
        value: T,
    ) -> TxResult<()> {
        self.check_same_stm(v);
        if let Some(w) = self
            .writes
            .iter_mut()
            .find(|w| Arc::ptr_eq(&w.core, &v.core))
        {
            // Overwrite: replace the prepared node's value in place.
            unsafe { (*w.prepared.cast::<Version<T>>()).value = value };
            return Ok(());
        }
        self.writes.push(WriteSlot {
            core: Arc::clone(&v.core),
            prepared: alloc_version(STAMP_INITIAL, value),
            published: false,
        });
        Ok(())
    }

    /// Number of distinct cells read / written so far.
    pub fn footprint(&self) -> (usize, usize) {
        (self.reads.len(), self.writes.len())
    }

    fn commit(mut self, mode: CommitMode) -> CommitOutcome {
        let read_entries: Vec<ReadEntry<usize>> = self
            .reads
            .iter()
            .enumerate()
            .map(|(i, r)| ReadEntry {
                cell: i,
                shard: r.core.shard,
                stamp: r.stamp,
            })
            .collect();
        let write_entries: Vec<WriteEntry<usize>> = self
            .writes
            .iter()
            .enumerate()
            .map(|(i, w)| WriteEntry {
                cell: i,
                shard: w.core.shard,
            })
            .collect();
        let mut cells = TxCells {
            reads: &self.reads,
            writes: &mut self.writes,
            guard: &self.guard,
        };
        proto::commit::<RealShim, _>(
            &self.stm.state,
            &read_entries,
            &write_entries,
            &mut cells,
            mode,
            &CommitTweaks::default(),
        )
        // Tx drops here: unpublished prepared nodes are freed by the
        // Drop impl, the pin is released.
    }
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        for w in &self.writes {
            if !w.published {
                unsafe { ((*w.prepared).free)(w.prepared) };
            }
        }
    }
}

/// [`CellAccess`] over a real transaction's slots. Handles are indices:
/// read handles into `reads`, write handles into `writes`.
struct TxCells<'t> {
    reads: &'t [ReadSlot],
    writes: &'t mut [WriteSlot],
    guard: &'t ebr::Guard<'t>,
}

impl CellAccess for TxCells<'_> {
    type Handle = usize;

    fn stamp(&self, h: usize) -> u64 {
        let p = self.reads[h].core.current.load(Ordering::Acquire);
        unsafe { (*p).stamp }
    }

    fn set_mark(&self, h: usize, tid: u64) {
        self.writes[h].core.mark.store(tid, Ordering::SeqCst);
    }

    fn clear_mark(&self, h: usize, tid: u64) {
        // CAS so we never erase a mark a later committer overwrote.
        let _ = self.writes[h].core.mark.compare_exchange(
            tid,
            TID_NONE,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    fn publish(&mut self, h: usize, tid: u64) {
        let w = &mut self.writes[h];
        // Stamp first (Release on the swap makes it visible with the
        // pointer), then ownership publication: one swap installs the
        // whole version.
        unsafe { (*w.prepared).stamp = stamp_of(tid) };
        let old = w.core.current.swap(w.prepared, Ordering::AcqRel);
        w.published = true;
        // The displaced version may still be under a concurrent
        // reader's pin; EBR decides when it is really dead.
        unsafe { self.guard.defer(old.cast(), free_erased) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_read_write_commit() {
        let stm = Stm::new();
        let a = stm.new_tvar(10u64);
        let b = stm.new_tvar(0u64);
        let (sum, receipt) = stm.run(|tx| {
            let va = tx.read(&a)?;
            tx.write(&b, va + 5)?;
            tx.read(&b).map(|vb| va + vb)
        });
        assert_eq!(sum, 25, "read-your-own-write");
        assert_eq!(receipt.tid, Tid(0));
        assert_eq!(receipt.attempts, 1);
        assert!(!receipt.early);
        assert_eq!(stm.atomically(|tx| tx.read(&b)), 15);
    }

    #[test]
    fn read_origin_tracks_writer_tid() {
        let stm = Stm::new();
        let a = stm.new_tvar(1u32);
        let ((_, o0), _) = stm.run(|tx| tx.read_versioned(&a));
        assert_eq!(o0, ReadOrigin::Committed(None), "initial version");
        let (_, r1) = stm.run(|tx| tx.write(&a, 2));
        let ((v, o2), _) = stm.run(|tx| tx.read_versioned(&a));
        assert_eq!(v, 2);
        assert_eq!(o2, ReadOrigin::Committed(Some(r1.tid)));
        let ((v, o3), _) = stm.run(|tx| {
            tx.write(&a, 9)?;
            tx.read_versioned(&a)
        });
        assert_eq!((v, o3), (9, ReadOrigin::OwnWrite));
    }

    #[test]
    fn overwrite_in_same_tx_keeps_last_value() {
        let stm = Stm::new();
        let a = stm.new_tvar(String::from("x"));
        stm.atomically(|tx| {
            tx.write(&a, String::from("first"))?;
            tx.write(&a, String::from("second"))?;
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| tx.read(&a)), "second");
    }

    #[test]
    fn frontier_shows_gap_free_resolution() {
        let stm = Stm::with_config(StmConfig {
            shards: 3,
            ..StmConfig::default()
        });
        let a = stm.new_tvar(0u64);
        for i in 0..10 {
            stm.atomically(|tx| tx.write(&a, i));
        }
        let (issued, nstids) = stm.frontier();
        assert_eq!(issued, 10);
        assert_eq!(nstids, vec![10, 10, 10], "every TID resolved everywhere");
    }

    #[test]
    fn drops_do_not_leak_or_double_free() {
        // Exercised under the full test suite's allocator; the
        // structure here is the hazard: unpublished prepared nodes,
        // published chains, live TVar clones outliving the Stm handle.
        let stm = Stm::new();
        let a = stm.new_tvar(vec![1u8, 2, 3]);
        let a2 = a.clone();
        stm.atomically(|tx| tx.write(&a, vec![9]));
        drop(stm);
        drop(a);
        drop(a2);
    }

    #[test]
    #[should_panic(expected = "different Stm instance")]
    fn cross_instance_tvar_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let foreign = stm2.new_tvar(0u8);
        stm1.atomically(|tx| tx.read(&foreign));
    }

    /// Regression: a user closure that panics while the transaction
    /// holds a starvation-mode early TID must not strand it — a
    /// stranded TID freezes every shard's NSTID and deadlocks the whole
    /// instance for every other thread, forever.
    #[test]
    fn panic_in_starvation_mode_does_not_strand_the_early_tid() {
        let stm = Stm::with_config(StmConfig {
            starvation_threshold: 1,
            ..StmConfig::default()
        });
        let a = stm.new_tvar(0u64);
        let mut calls = 0u32;
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.run(|tx| -> TxResult<()> {
                tx.read(&a)?;
                calls += 1;
                if calls == 1 {
                    // Fail the first attempt so the retry escalates to
                    // early-TID acquisition...
                    return Err(TxError::Conflict);
                }
                // ...and blow up while holding it.
                panic!("user closure panicked in starvation mode");
            })
        }));
        assert!(unwound.is_err());
        assert_eq!(calls, 2, "the panic fired on the escalated attempt");

        // The unwind resolved the early TID everywhere: later
        // transactions still commit and the frontier stays gap-free.
        let (_, receipt) = stm.run(|tx| {
            let v = tx.read(&a)?;
            tx.write(&a, v + 1)
        });
        assert!(!receipt.early);
        assert_eq!(stm.atomically(|tx| tx.read(&a)), 1);
        let (issued, nstids) = stm.frontier();
        assert_eq!(issued, 3, "panicked TID + two commits");
        assert!(
            nstids.iter().all(|&n| n == issued),
            "every TID resolved at every shard: {nstids:?}"
        );
    }

    #[test]
    fn two_thread_counter_smoke() {
        let stm = Stm::new();
        let c = stm.new_tvar(0u64);
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let stm = stm.clone();
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        stm.atomically(|tx| {
                            let v = tx.read(&c)?;
                            tx.write(&c, v + 1)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(stm.atomically(|tx| tx.read(&c)), 200);
        assert!(stm.stats().commits >= 200);
    }
}
