//! Hand-rolled epoch-based reclamation for version nodes.
//!
//! Commit publishes a write by swapping a cell's version pointer
//! ([`crate::stm`]); the displaced version may still be in use by a
//! concurrent reader that loaded the pointer a moment earlier, so it
//! cannot be freed inline. This is the classic three-epoch scheme
//! (Fraser's EBR, the same shape as `crossbeam-epoch`, hand-rolled here
//! because the workspace is hermetic):
//!
//! * A global epoch counter advances only when every *pinned*
//!   participant has observed the current value.
//! * A thread [`pin`](Collector::pin)s before dereferencing any version
//!   pointer and stays pinned for the whole transaction; retired
//!   garbage is stamped with the **global** epoch at retirement time
//!   (not the retiring thread's pinned epoch, which may lag the global
//!   by one — see [`Guard::defer`]).
//! * Garbage stamped `e` is freed once the global epoch reaches `e + 2`:
//!   any reader still holding the pointer pinned before the unlink, so
//!   at an epoch `≤ e`, and a participant pinned at `e' < e + 1` blocks
//!   every advance toward `e + 2` — by the time the global gets there,
//!   all such readers have unpinned.
//!
//! Three bags per participant, indexed `epoch % 3`, make the stamp
//! check implicit: when a bag is reused at epoch `e` its previous
//! contents are from some `e' ≤ e - 3`, which is always safely
//! reclaimable. Participants are acquired per-pin from a lock-free
//! (Treiber) registry with an ownership CAS — no thread-locals, so a
//! collector's participants can never dangle past the collector itself.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};

/// Retired garbage: drain a bag this many items deep tries to advance
/// the global epoch so the bag can empty soon.
const ADVANCE_THRESHOLD: usize = 64;

/// One deferred deallocation.
struct Garbage {
    ptr: *mut (),
    free: unsafe fn(*mut ()),
}

// Garbage travels from the retiring thread's stack into a bag that a
// different thread (the collector's dropper) may drain.
unsafe impl Send for Garbage {}

struct Bag {
    /// Epoch at which the current contents were retired.
    epoch: u64,
    items: Vec<Garbage>,
}

impl Bag {
    fn drain(&mut self) {
        for g in self.items.drain(..) {
            unsafe { (g.free)(g.ptr) };
        }
    }
}

struct Participant {
    /// `0` = quiescent; otherwise `(epoch << 1) | 1`.
    active: AtomicU64,
    /// Ownership flag: a pin CASes this `false → true` to claim the
    /// slot, so `bags` is only ever touched by one thread at a time.
    owned: AtomicBool,
    next: *mut Participant,
    bags: UnsafeCell<[Bag; 3]>,
}

/// The collector one [`crate::Stm`] instance owns.
pub struct Collector {
    global: AtomicU64,
    head: AtomicPtr<Participant>,
}

// `head` chains heap nodes only this collector frees; all cross-thread
// state in a node is atomic, and `bags` is guarded by `owned`.
unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    #[must_use]
    pub fn new() -> Self {
        Collector {
            global: AtomicU64::new(0),
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Current global epoch (test/introspection hook).
    pub fn epoch(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Pins the calling thread: until the returned [`Guard`] drops,
    /// the global epoch can advance at most once, so any version
    /// pointer loaded under the guard stays allocated.
    pub fn pin(&self) -> Guard<'_> {
        let part = self.acquire_participant();
        let p = unsafe { &*part };
        let mut e = self.global.load(SeqCst);
        // Publish our epoch, then re-check: if the global moved while
        // we were publishing, chase it so an advancer never observes us
        // pinned more than one epoch behind.
        loop {
            p.active.store((e << 1) | 1, SeqCst);
            let now = self.global.load(SeqCst);
            if now == e {
                break;
            }
            e = now;
        }
        // Opportunistically drain any of our bags whose contents are
        // already two epochs stale.
        let bags = unsafe { &mut *p.bags.get() };
        for bag in bags.iter_mut() {
            if !bag.items.is_empty() && e >= bag.epoch + 2 {
                bag.drain();
            }
        }
        Guard {
            collector: self,
            part,
        }
    }

    fn acquire_participant(&self) -> *mut Participant {
        // Reuse a released slot if one exists.
        let mut p = self.head.load(SeqCst);
        while !p.is_null() {
            let node = unsafe { &*p };
            if node
                .owned
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                return p;
            }
            p = node.next;
        }
        // Register a fresh one (never unregistered before collector
        // drop; participant count is bounded by peak pin concurrency).
        let make_bag = || Bag {
            epoch: 0,
            items: Vec::new(),
        };
        let node = Box::into_raw(Box::new(Participant {
            active: AtomicU64::new(0),
            owned: AtomicBool::new(true),
            next: std::ptr::null_mut(),
            bags: UnsafeCell::new([make_bag(), make_bag(), make_bag()]),
        }));
        loop {
            let head = self.head.load(SeqCst);
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, SeqCst, SeqCst)
                .is_ok()
            {
                return node;
            }
        }
    }

    /// Advances the global epoch if every pinned participant has
    /// caught up to it.
    fn try_advance(&self) {
        let e = self.global.load(SeqCst);
        let mut p = self.head.load(SeqCst);
        while !p.is_null() {
            let node = unsafe { &*p };
            let a = node.active.load(SeqCst);
            if a & 1 == 1 && a >> 1 != e {
                return; // someone is still pinned in the previous epoch
            }
            p = node.next;
        }
        let _ = self.global.compare_exchange(e, e + 1, SeqCst, SeqCst);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the collector (their
        // lifetime borrows it), so every bag is safe to drain and every
        // participant node safe to free.
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            let mut node = unsafe { Box::from_raw(p) };
            p = node.next;
            for bag in node.bags.get_mut().iter_mut() {
                bag.drain();
            }
        }
    }
}

/// An active pin. `!Send` by construction (raw participant pointer):
/// the pin must be released on the thread that took it.
pub struct Guard<'c> {
    collector: &'c Collector,
    part: *mut Participant,
}

impl Guard<'_> {
    /// Defers `free(ptr)` until every thread pinned at this moment has
    /// unpinned.
    ///
    /// # Safety
    ///
    /// `ptr` must not be reachable by any thread that pins *after* this
    /// call (i.e. it has been unlinked from all shared locations), and
    /// `free` must be safe to call on it exactly once.
    pub unsafe fn defer(&self, ptr: *mut (), free: unsafe fn(*mut ())) {
        let p = unsafe { &*self.part };
        // Stamp with the *global* epoch, not our pinned epoch. Our pin
        // may lag the global by one (pin at `e`, global advances to
        // `e + 1`, then we unlink), and a reader pinned at `e + 1` can
        // have loaded the pointer before the unlink. Stamping `e` would
        // let a pin at `e + 2` free under that reader; stamping the
        // global (`e + 1` here) makes the `stamp + 2` drain condition
        // wait for it. The global is ≥ the pin epoch of every reader
        // that pinned before the unlink, and monotone across successive
        // defers, so bag reuse below stays ordered.
        let e = self.collector.global.load(SeqCst);
        let bags = unsafe { &mut *p.bags.get() };
        let bag = &mut bags[(e % 3) as usize];
        if bag.epoch != e {
            // Previous contents are from epoch ≤ e - 3: reclaimable.
            bag.drain();
            bag.epoch = e;
        }
        bag.items.push(Garbage { ptr, free });
        if bag.items.len() >= ADVANCE_THRESHOLD {
            self.collector.try_advance();
        }
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let p = unsafe { &*self.part };
        p.active.store(0, SeqCst);
        p.owned.store(false, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    static FREED: AtomicUsize = AtomicUsize::new(0);

    unsafe fn count_free(p: *mut ()) {
        drop(unsafe { Box::from_raw(p.cast::<u64>()) });
        FREED.fetch_add(1, SeqCst);
    }

    fn retire_one(g: &Guard<'_>) {
        let b = Box::into_raw(Box::new(0u64));
        unsafe { g.defer(b.cast(), count_free) };
    }

    #[test]
    fn garbage_survives_while_pinned_and_frees_after_epochs() {
        FREED.store(0, SeqCst);
        let c = Collector::new();
        {
            let g = c.pin();
            retire_one(&g);
            assert_eq!(FREED.load(SeqCst), 0);
        }
        // Advance two epochs with nobody pinned, then pin again: the
        // stale bag drains on pin.
        c.try_advance();
        c.try_advance();
        {
            let _g = c.pin();
            assert_eq!(FREED.load(SeqCst), 1);
        }
    }

    #[test]
    fn pinned_reader_blocks_advance() {
        let c = Collector::new();
        let g1 = c.pin();
        let e0 = c.epoch();
        c.try_advance();
        assert_eq!(c.epoch(), e0 + 1, "one advance is fine");
        c.try_advance();
        assert_eq!(c.epoch(), e0 + 1, "second advance must wait for g1");
        drop(g1);
        c.try_advance();
        assert_eq!(c.epoch(), e0 + 2);
    }

    /// Regression: a retirer pinned at epoch `e` unlinks *after* the
    /// global has advanced to `e + 1`. A reader pinned at `e + 1`
    /// (which loaded the pointer before the unlink) does not block the
    /// advance to `e + 2`, so garbage stamped with the retirer's pin
    /// epoch `e` would be freed at `e + 2` under that reader. Stamping
    /// with the global epoch (`e + 1`) keeps it alive.
    #[test]
    fn defer_after_global_advance_waits_for_lagging_epoch_reader() {
        FREED.store(0, SeqCst);
        let c = Collector::new();
        let retirer = c.pin(); // pinned at epoch 0
        c.try_advance();
        assert_eq!(c.epoch(), 1, "retirer at 0 does not block 0 -> 1");
        let reader = c.pin(); // pinned at epoch 1, "holds" the pointer
        retire_one(&retirer); // unlink happens at global epoch 1
        drop(retirer);
        c.try_advance();
        assert_eq!(c.epoch(), 2, "reader at 1 does not block 1 -> 2");
        {
            // A pin at epoch 2 drains stale bags in the retirer's
            // recycled slot; the garbage is stamped 1, and 2 < 1 + 2,
            // so it must survive while `reader` is still pinned.
            let _g = c.pin();
            assert_eq!(FREED.load(SeqCst), 0, "freed under a live reader");
        }
        drop(reader);
        c.try_advance();
        assert_eq!(c.epoch(), 3);
        // Two concurrent pins: the first reuses the reader's released
        // slot (registry head), the second the retirer's — whose bag is
        // now two epochs stale and drains.
        let _g1 = c.pin();
        let _g2 = c.pin();
        assert_eq!(FREED.load(SeqCst), 1, "freed once the reader unpins");
    }

    #[test]
    fn collector_drop_frees_everything() {
        FREED.store(0, SeqCst);
        {
            let c = Collector::new();
            let g = c.pin();
            for _ in 0..10 {
                retire_one(&g);
            }
            drop(g);
        }
        assert_eq!(FREED.load(SeqCst), 10);
    }

    #[test]
    fn participants_are_reused_across_pins() {
        let c = Collector::new();
        let p1 = c.pin().part;
        let p2 = c.pin().part;
        assert_eq!(p1, p2, "sequential pins reuse the released slot");
    }

    #[test]
    fn concurrent_pin_smoke() {
        let c = Arc::new(Collector::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let g = c.pin();
                        let b = Box::into_raw(Box::new(7u64));
                        unsafe {
                            g.defer(b.cast(), |p| drop(Box::from_raw(p.cast::<u64>())));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Drop frees the remainder; miri/asan would flag leaks or UAF.
    }
}
