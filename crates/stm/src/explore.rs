//! A hand-rolled loom-style interleaving explorer for the commit path.
//!
//! The protocol code in [`crate::proto`] is generic over the
//! [`Shim`](crate::shim::Shim) atomics layer; instantiated over
//! [`ModelShim`](crate::shim::ModelShim), every shared-memory operation
//! first calls [`yieldpoint`], which hands control to a cooperative
//! **scheduler**: exactly one model thread runs at a time, and the
//! scheduler decides — per schedule — where to preempt it. Because
//! every access to shared protocol state is a scheduling point, the
//! explored interleavings are exactly the sequentially-consistent
//! executions of the commit path, and the run is fully deterministic
//! given a [`Policy`].
//!
//! Exploration strategy (CHESS-style preemption bounding):
//!
//! 1. one [`Policy::Sequential`] run measures the schedule length `L`;
//! 2. **exhaustive k=1**: every single preemption `(step s → thread t)`
//!    for `s ∈ 1..=L`, every target;
//! 3. **sampled k=2**: seeded-random preemption pairs, as many as the
//!    run budget allows;
//! 4. **seeded-random walks**: at every yieldpoint, switch with
//!    probability `switch_percent`.
//!
//! The oracle ([`check_history`]) asserts strict serializability the
//! same way the simulator's checker does: every scripted transaction
//! commits exactly once, TIDs are unique, and replaying the commits in
//! TID order reproduces every stamp each transaction observed. A run
//! that exhausts its step budget is reported as a violation too — with
//! these bounded scripts, that is the livelock detector.
//!
//! The explorer has teeth: the [`CommitTweaks`] bug knobs
//! (`skip_read_validation`, `publish_before_serving`) each disable one
//! load-bearing step of the protocol, and the test suite asserts the
//! explorer catches both.

use crate::proto::{
    self, stamp_of, CellAccess, CommitMode, CommitOutcome, CommitState, CommitTweaks, ReadEntry,
    WriteEntry, STAMP_INITIAL, TID_NONE,
};
use crate::shim::{ModelShim, Shim, ShimU64};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use tcc_types::rng::SmallRng;

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

/// How the scheduler picks the next thread at each yieldpoint.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Never preempt; switch only when a thread pauses or finishes.
    Sequential,
    /// Preempt at the given `(step, target thread)` points, otherwise
    /// sequential. Steps are global yieldpoint counts, so the prefix
    /// before each preemption is deterministic.
    PreemptAt(Vec<(usize, usize)>),
    /// At every yieldpoint switch to a random live thread with
    /// probability `percent`/100 (seeded — still deterministic).
    Random { seed: u64, percent: u32 },
}

struct SchedInner {
    current: usize,
    alive: Vec<bool>,
    step: usize,
    budget: usize,
    policy: Policy,
    rng: SmallRng,
    poison: Option<String>,
}

impl SchedInner {
    fn next_alive_after(&self, i: usize) -> Option<usize> {
        let n = self.alive.len();
        (1..=n).map(|d| (i + d) % n).find(|&j| self.alive[j])
    }

    fn choose_next(&mut self, i: usize, is_pause: bool) -> usize {
        let forced = match &self.policy {
            Policy::Sequential => None,
            Policy::PreemptAt(points) => points
                .iter()
                .find(|(s, _)| *s == self.step)
                .map(|&(_, t)| t),
            Policy::Random { percent, .. } => {
                let p = *percent;
                if self.rng.gen_range(0..100u32) < p {
                    Some(self.rng.gen_range(0..self.alive.len()))
                } else {
                    None
                }
            }
        };
        if let Some(t) = forced {
            if self.alive[t % self.alive.len()] {
                return t % self.alive.len();
            }
            if let Some(t2) = self.next_alive_after(t % self.alive.len()) {
                return t2;
            }
        }
        if is_pause {
            // A pausing thread is waiting for someone else's store:
            // keeping it running cannot make progress.
            if let Some(t) = self.next_alive_after(i) {
                if t != i {
                    return t;
                }
            }
        }
        i
    }
}

/// Cooperative baton scheduler: one runnable model thread at a time.
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

fn relock(m: &Mutex<SchedInner>) -> MutexGuard<'_, SchedInner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Scheduler {
    fn new(n: usize, policy: Policy, budget: usize) -> Arc<Self> {
        let seed = match &policy {
            Policy::Random { seed, .. } => *seed,
            _ => 0,
        };
        Arc::new(Scheduler {
            inner: Mutex::new(SchedInner {
                current: 0,
                alive: vec![true; n],
                step: 0,
                budget,
                policy,
                rng: SmallRng::seed_from_u64(seed),
                poison: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Blocks until it is thread `i`'s turn (entry gate at spawn).
    fn enter(&self, i: usize) {
        let mut g = relock(&self.inner);
        while g.current != i && g.poison.is_none() {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some(p) = g.poison.clone() {
            drop(g);
            resume_poison(&p);
        }
    }

    fn yield_from(&self, i: usize, is_pause: bool) {
        let mut g = relock(&self.inner);
        if let Some(p) = g.poison.clone() {
            drop(g);
            resume_poison(&p);
        }
        g.step += 1;
        if g.step > g.budget {
            let msg = format!(
                "step budget {} exhausted (possible livelock) at thread {i}",
                g.budget
            );
            g.poison = Some(msg.clone());
            self.cv.notify_all();
            drop(g);
            resume_poison(&msg);
        }
        let next = g.choose_next(i, is_pause);
        if next == i {
            return;
        }
        g.current = next;
        self.cv.notify_all();
        while g.current != i && g.poison.is_none() {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some(p) = g.poison.clone() {
            drop(g);
            resume_poison(&p);
        }
    }

    fn finish(&self, i: usize) {
        let mut g = relock(&self.inner);
        g.alive[i] = false;
        if g.current == i {
            if let Some(t) = g.next_alive_after(i) {
                g.current = t;
            }
        }
        self.cv.notify_all();
    }

    fn poison_with(&self, msg: String) {
        let mut g = relock(&self.inner);
        if g.poison.is_none() {
            g.poison = Some(msg);
        }
        self.cv.notify_all();
    }

    fn poison_reason(&self) -> Option<String> {
        relock(&self.inner).poison.clone()
    }

    fn steps(&self) -> usize {
        relock(&self.inner).step
    }
}

/// Marker prefix so the catch_unwind wrapper can tell a scheduler
/// shutdown apart from a genuine protocol panic.
const POISON_MARK: &str = "[model-poisoned] ";

fn resume_poison(reason: &str) -> ! {
    std::panic::panic_any(format!("{POISON_MARK}{reason}"))
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Called by [`ModelShim`](crate::shim::ModelShim) before every shared
/// access (`is_pause = false`) and on every spin-wait backoff
/// (`is_pause = true`). No-op outside a model run.
pub(crate) fn yieldpoint(is_pause: bool) {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    if let Some((sched, i)) = ctx {
        sched.yield_from(i, is_pause);
    }
}

// ---------------------------------------------------------------------
// Model world
// ---------------------------------------------------------------------

/// One scripted transaction: cells to read, cells to write. Written
/// values are implicit — in the model a cell's *stamp* is its value,
/// which is exactly what the serializability oracle needs.
#[derive(Debug, Clone, Default)]
pub struct ModelTx {
    pub reads: Vec<usize>,
    pub writes: Vec<usize>,
}

/// A model-checking problem: per-thread transaction scripts over
/// `n_cells` cells striped across `shards` directory shards.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    pub n_cells: usize,
    pub shards: usize,
    pub vendor_slots: usize,
    pub threads: Vec<Vec<ModelTx>>,
    /// Failed attempts before early-TID escalation (small, so the
    /// explorer reaches the starvation path quickly).
    pub starvation_threshold: u32,
    /// Bug knobs; must stay default outside teeth tests.
    pub tweaks: CommitTweaks,
}

struct ModelCell {
    stamp: <ModelShim as Shim>::U64,
    mark: <ModelShim as Shim>::U64,
}

struct World {
    state: CommitState<ModelShim>,
    cells: Vec<ModelCell>,
    shards: usize,
    tweaks: CommitTweaks,
    log: Mutex<Vec<TxCommit>>,
}

/// One committed transaction as the oracle sees it.
#[derive(Debug, Clone)]
struct TxCommit {
    tid: u64,
    /// `(cell, stamp observed during the committed attempt)`.
    reads: Vec<(usize, u64)>,
    writes: Vec<usize>,
}

struct ModelCells<'w> {
    cells: &'w [ModelCell],
}

impl CellAccess for ModelCells<'_> {
    /// Handles are global cell indices.
    type Handle = usize;

    fn stamp(&self, h: usize) -> u64 {
        self.cells[h].stamp.load()
    }
    fn set_mark(&self, h: usize, tid: u64) {
        self.cells[h].mark.store(tid);
    }
    fn clear_mark(&self, h: usize, tid: u64) {
        let _ = self.cells[h].mark.compare_exchange(tid, TID_NONE);
    }
    fn publish(&mut self, h: usize, tid: u64) {
        self.cells[h].stamp.store(stamp_of(tid));
    }
}

/// Runs one thread's script to completion (same retry/escalation loop
/// as the real [`crate::Stm::run`]).
fn run_script(world: &World, me: usize, script: &[ModelTx], threshold: u32) {
    let shard_of = |c: usize| c % world.shards;
    for tx in script {
        let mut attempts: u32 = 0;
        let mut early: Option<u64> = None;
        loop {
            attempts += 1;
            if early.is_none() && attempts > threshold {
                early = Some(world.state.vendor.acquire(me));
            }
            // Execution: read each cell, incrementally revalidating the
            // prior reads (mirrors Tx::read_versioned).
            let mut reads: Vec<ReadEntry<usize>> = Vec::with_capacity(tx.reads.len());
            let mut consistent = true;
            'exec: for &c in &tx.reads {
                for _ in 0..2 {
                    let m = world.cells[c].mark.load();
                    if proto::read_should_stall(&world.state, shard_of(c), m) {
                        ModelShim::pause();
                    } else {
                        break;
                    }
                }
                let s = world.cells[c].stamp.load();
                for prior in &reads {
                    if world.cells[prior.cell].stamp.load() != prior.stamp {
                        consistent = false;
                        break 'exec;
                    }
                }
                if !reads.iter().any(|r| r.cell == c) {
                    reads.push(ReadEntry {
                        cell: c,
                        shard: shard_of(c),
                        stamp: s,
                    });
                }
            }
            if !consistent {
                continue; // re-execute; a held early TID is kept
            }
            let writes: Vec<WriteEntry<usize>> = tx
                .writes
                .iter()
                .map(|&c| WriteEntry {
                    cell: c,
                    shard: shard_of(c),
                })
                .collect();
            let mode = match early {
                Some(t) => CommitMode::EarlyTid(t),
                None => CommitMode::Normal { home: me },
            };
            let mut cells = ModelCells {
                cells: &world.cells,
            };
            match proto::commit::<ModelShim, _>(
                &world.state,
                &reads,
                &writes,
                &mut cells,
                mode,
                &world.tweaks,
            ) {
                CommitOutcome::Committed { tid } => {
                    world
                        .log
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(TxCommit {
                            tid,
                            reads: reads.iter().map(|r| (r.cell, r.stamp)).collect(),
                            writes: tx.writes.clone(),
                        });
                    break;
                }
                CommitOutcome::Conflict { kept_tid } => {
                    early = kept_tid;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// One run
// ---------------------------------------------------------------------

/// Outcome of a single explored schedule.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Yieldpoints executed.
    pub steps: usize,
    /// Serializability/liveness violation, if any.
    pub violation: Option<String>,
    pub commits: u64,
    pub conflicts: u64,
    pub recycled: u64,
    pub claimed: u64,
    pub early_commits: u64,
}

/// Executes `spec` once under `policy` with the given step budget.
pub fn run_schedule(spec: &ModelSpec, policy: Policy, step_budget: usize) -> RunOutcome {
    let n = spec.threads.len();
    assert!(n >= 1, "need at least one model thread");
    let world = Arc::new(World {
        state: CommitState::new(spec.shards, spec.vendor_slots),
        cells: (0..spec.n_cells)
            .map(|_| ModelCell {
                stamp: <ModelShim as Shim>::U64::new(STAMP_INITIAL),
                mark: <ModelShim as Shim>::U64::new(TID_NONE),
            })
            .collect(),
        shards: spec.shards,
        tweaks: spec.tweaks,
        log: Mutex::new(Vec::new()),
    });
    let sched = Scheduler::new(n, policy, step_budget);

    let handles: Vec<_> = (0..n)
        .map(|i| {
            let world = Arc::clone(&world);
            let sched = Arc::clone(&sched);
            let script = spec.threads[i].clone();
            let threshold = spec.starvation_threshold;
            std::thread::spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), i)));
                let res = catch_unwind(AssertUnwindSafe(|| {
                    sched.enter(i);
                    run_script(&world, i, &script, threshold);
                }));
                CURRENT.with(|c| *c.borrow_mut() = None);
                if let Err(payload) = res {
                    let msg = panic_message(payload.as_ref());
                    if !msg.starts_with(POISON_MARK) {
                        sched.poison_with(format!("thread {i} panicked: {msg}"));
                    }
                }
                sched.finish(i);
            })
        })
        .collect();
    for h in handles {
        let _ = h.join(); // panics were converted to poison above
    }

    let violation = match sched.poison_reason() {
        Some(p) => Some(p),
        None => {
            let log = world
                .log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            check_history(spec, &log).err()
        }
    };
    let s = &world.state.stats;
    RunOutcome {
        steps: sched.steps(),
        violation,
        commits: s.commits.load(),
        conflicts: s.conflicts.load(),
        recycled: s.recycled.load(),
        claimed: s.claimed.load(),
        early_commits: s.early_commits.load(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

/// The serializability oracle: commits replayed in TID order must
/// reproduce every observed stamp.
fn check_history(spec: &ModelSpec, log: &[TxCommit]) -> Result<(), String> {
    let expected: usize = spec.threads.iter().map(Vec::len).sum();
    if log.len() != expected {
        return Err(format!(
            "liveness: {} of {expected} scripted transactions committed",
            log.len()
        ));
    }
    let mut order: Vec<&TxCommit> = log.iter().collect();
    order.sort_by_key(|t| t.tid);
    for pair in order.windows(2) {
        if pair[0].tid == pair[1].tid {
            return Err(format!("duplicate TID {} in history", pair[0].tid));
        }
    }
    let mut sim = vec![STAMP_INITIAL; spec.n_cells];
    for tx in &order {
        for &(cell, observed) in &tx.reads {
            if sim[cell] != observed {
                return Err(format!(
                    "not serializable: tx with TID {} observed stamp {observed} on cell \
                     {cell}, but at its serial position the cell carries stamp {}",
                    tx.tid, sim[cell]
                ));
            }
        }
        for &cell in &tx.writes {
            sim[cell] = stamp_of(tx.tid);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Exploration budget and seeds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Yieldpoint budget per run (livelock detector threshold).
    pub step_budget: usize,
    /// Cap on total runs (exhaustive k=1 enumeration is truncated to
    /// fit; sampled k=2 and random walks get what remains).
    pub max_runs: usize,
    /// Seeded-random-walk runs.
    pub random_runs: usize,
    /// Sampled two-preemption runs.
    pub pair_runs: usize,
    pub seed: u64,
    /// Switch probability (percent) for random walks.
    pub switch_percent: u32,
    /// Stop at the first violation instead of collecting all.
    pub stop_on_violation: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            step_budget: 50_000,
            max_runs: 4_000,
            random_runs: 192,
            pair_runs: 512,
            seed: 0x7cc_5eed,
            switch_percent: 25,
            stop_on_violation: true,
        }
    }
}

/// Aggregated result of an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    pub runs: usize,
    /// Schedule length of the sequential probe run.
    pub sequential_steps: usize,
    pub violations: Vec<String>,
    /// Protocol-path coverage, summed over all runs.
    pub commits: u64,
    pub conflicts: u64,
    pub recycled: u64,
    pub claimed: u64,
    pub early_commits: u64,
}

impl ExploreReport {
    fn absorb(&mut self, r: &RunOutcome) {
        self.runs += 1;
        self.commits += r.commits;
        self.conflicts += r.conflicts;
        self.recycled += r.recycled;
        self.claimed += r.claimed;
        self.early_commits += r.early_commits;
        if let Some(v) = &r.violation {
            self.violations.push(v.clone());
        }
    }

    fn done(&self, cfg: &ExploreConfig) -> bool {
        (cfg.stop_on_violation && !self.violations.is_empty()) || self.runs >= cfg.max_runs
    }
}

/// Explores `spec`: sequential probe, exhaustive single preemptions,
/// sampled preemption pairs, seeded random walks.
pub fn explore(spec: &ModelSpec, cfg: &ExploreConfig) -> ExploreReport {
    let n = spec.threads.len();
    let mut report = ExploreReport::default();

    // 1. Sequential probe: measures L and checks the trivial schedule.
    let probe = run_schedule(spec, Policy::Sequential, cfg.step_budget);
    report.sequential_steps = probe.steps;
    let len = probe.steps;
    report.absorb(&probe);
    if report.done(cfg) {
        return report;
    }

    // 2. Exhaustive k=1: one preemption at every (step, target).
    'k1: for s in 1..=len {
        for t in 0..n {
            let r = run_schedule(spec, Policy::PreemptAt(vec![(s, t)]), cfg.step_budget);
            report.absorb(&r);
            if report.done(cfg) {
                break 'k1;
            }
        }
    }
    if report.done(cfg) {
        return report;
    }

    // 3. Sampled k=2: seeded-random preemption pairs. Schedules after
    // the first preemption can be longer than L, so the second point
    // samples from a stretched range.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.pair_runs {
        let s1 = rng.gen_range(1..=len.max(1));
        let s2 = s1 + rng.gen_range(1..=len.max(1));
        let t1 = rng.gen_range(0..n);
        let t2 = rng.gen_range(0..n);
        let r = run_schedule(
            spec,
            Policy::PreemptAt(vec![(s1, t1), (s2, t2)]),
            cfg.step_budget,
        );
        report.absorb(&r);
        if report.done(cfg) {
            return report;
        }
    }

    // 4. Random walks.
    for i in 0..cfg.random_runs {
        let r = run_schedule(
            spec,
            Policy::Random {
                seed: cfg.seed.wrapping_add(1 + i as u64),
                percent: cfg.switch_percent,
            },
            cfg.step_budget,
        );
        report.absorb(&r);
        if report.done(cfg) {
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_thread_contended() -> ModelSpec {
        ModelSpec {
            n_cells: 2,
            shards: 2,
            vendor_slots: 2,
            threads: vec![
                vec![ModelTx {
                    reads: vec![0],
                    writes: vec![0, 1],
                }],
                vec![ModelTx {
                    reads: vec![0, 1],
                    writes: vec![0],
                }],
            ],
            starvation_threshold: 2,
            tweaks: CommitTweaks::default(),
        }
    }

    #[test]
    fn sequential_run_is_clean_and_deterministic() {
        let spec = two_thread_contended();
        let a = run_schedule(&spec, Policy::Sequential, 50_000);
        let b = run_schedule(&spec, Policy::Sequential, 50_000);
        assert_eq!(a.violation, None);
        assert_eq!(a.steps, b.steps, "model runs must be deterministic");
        assert_eq!(a.commits, 2);
    }

    #[test]
    fn single_preemption_runs_are_clean() {
        let spec = two_thread_contended();
        for s in [1, 3, 7, 12] {
            for t in 0..2 {
                let r = run_schedule(&spec, Policy::PreemptAt(vec![(s, t)]), 50_000);
                assert_eq!(r.violation, None, "preempt at ({s},{t})");
            }
        }
    }

    #[test]
    fn random_walks_are_clean() {
        let spec = two_thread_contended();
        for seed in 0..8 {
            let r = run_schedule(&spec, Policy::Random { seed, percent: 30 }, 100_000);
            assert_eq!(r.violation, None, "seed {seed}");
        }
    }

    #[test]
    fn explorer_smoke_with_tiny_budget() {
        let spec = two_thread_contended();
        let cfg = ExploreConfig {
            max_runs: 40,
            random_runs: 8,
            pair_runs: 8,
            ..ExploreConfig::default()
        };
        let rep = explore(&spec, &cfg);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.runs >= 17, "probe + some k=1 runs");
        assert!(rep.commits >= 2 * rep.runs as u64);
    }

    #[test]
    fn oracle_rejects_stale_read_history() {
        let spec = two_thread_contended();
        // Fabricate: tx 1 claims to have read cell 0's initial stamp
        // even though tx 0 (earlier TID) wrote it.
        let log = vec![
            TxCommit {
                tid: 0,
                reads: vec![],
                writes: vec![0],
            },
            TxCommit {
                tid: 1,
                reads: vec![(0, STAMP_INITIAL), (1, STAMP_INITIAL)],
                writes: vec![0],
            },
        ];
        let err = check_history(&spec, &log).unwrap_err();
        assert!(err.contains("not serializable"), "{err}");
    }

    #[test]
    fn oracle_rejects_duplicate_tids_and_lost_txs() {
        let spec = two_thread_contended();
        let dup = vec![
            TxCommit {
                tid: 3,
                reads: vec![],
                writes: vec![0],
            },
            TxCommit {
                tid: 3,
                reads: vec![],
                writes: vec![1],
            },
        ];
        assert!(check_history(&spec, &dup)
            .unwrap_err()
            .contains("duplicate TID"));
        assert!(check_history(&spec, &dup[..1])
            .unwrap_err()
            .contains("liveness"));
    }
}
