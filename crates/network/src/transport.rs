//! Reliable transport: exactly-once, per-channel in-order delivery over
//! an unreliable wire.
//!
//! The Scalable TCC protocol (§3.3) assumes the interconnect delivers
//! every message exactly once and, per directed `(src, dst)` channel,
//! in order. The simulated mesh gives that away for free; this module
//! *earns* it, so the chaos subsystem may drop, duplicate, and reorder
//! frames (see [`crate::chaos`]) without changing what the protocol
//! layer observes. The design is the classic sliding-window scheme (cf.
//! go-back-N):
//!
//! * **Sequencing** — every protocol [`Message`] is wrapped in a
//!   [`Frame::Data`] carrying a per-channel sequence number
//!   ([`SendChannel`]); multicast fan-out sequences each destination
//!   copy independently on its own channel.
//! * **Dedup + reorder window** — the receiver ([`RecvChannel`]) drops
//!   already-delivered sequence numbers (re-acking them, in case the
//!   previous ack was lost) and buffers out-of-order frames until the
//!   gap fills, releasing messages strictly in sequence order.
//! * **Cumulative acks** — `ack = next_expected` rides piggybacked on
//!   every reverse-direction data frame; when no reverse traffic shows
//!   up within [`TransportConfig::ack_delay`] cycles a standalone
//!   [`Frame::Ack`] goes out instead.
//! * **Retransmission** — the sender keeps every unacked frame. A
//!   per-channel timer fires after the current RTO; on each fire all
//!   unacked frames retransmit (go-back-N) and the RTO doubles, capped
//!   at `rto << max_backoff_exp`. An ack that advances the window
//!   resets the backoff. After [`TransportConfig::max_retries`]
//!   consecutive fires with no progress the transport reports
//!   [`RetryExhausted`] — the simulator surfaces that as a typed
//!   `RunError::Stalled`, never a hang.
//!
//! The transport is a *passive* state machine: it never schedules
//! anything itself. Every entry point returns [`TransportAction`]s
//! (frames to put on the wire, timers to arm) that the caller — the
//! simulator's event loop — turns into events. That keeps the module
//! deterministic, directly unit-testable, and free of any dependency on
//! the engine.
//!
//! Two [`ProtocolBugs`] knobs deliberately break this layer so the
//! chaos mutation self-test can prove the oracle notices:
//! `transport_no_dedup` leaks duplicate deliveries to the protocol, and
//! `transport_no_reorder` delivers frames in arrival order, cumulatively
//! acking away any gap (so skipped messages are lost for good).

use std::collections::BTreeMap;

use tcc_trace::{TraceEvent, Tracer};
use tcc_types::snap::{Snap, SnapError, SnapReader, SnapWriter};
use tcc_types::{Cycle, Frame, Message, NodeId, ProtocolBugs};

/// Tuning for the reliable transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Base retransmission timeout in cycles (before backoff).
    pub rto: u64,
    /// Exponential-backoff cap: the RTO never exceeds
    /// `rto << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Consecutive no-progress timer fires tolerated per channel before
    /// the transport gives up with [`RetryExhausted`].
    pub max_retries: u32,
    /// Cycles a receiver waits for reverse traffic to piggyback an ack
    /// on before sending a standalone [`Frame::Ack`].
    pub ack_delay: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        // RTO comfortably above one mesh round trip plus directory
        // service (corner-to-corner on a 64-node grid with default
        // latencies is well under 200 cycles); ack_delay short enough
        // that a lone sender's window reopens quickly.
        TransportConfig {
            rto: 400,
            max_backoff_exp: 6,
            max_retries: 16,
            ack_delay: 64,
        }
    }
}

/// Transport activity counters (also mirrored into `tcc-trace` when a
/// tracer is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Data frames handed to the wire for the first time.
    pub data_frames: u64,
    /// Data frames re-sent by the retransmission timer.
    pub retransmits: u64,
    /// Received frames discarded as duplicates (and re-acked).
    pub dup_drops: u64,
    /// Retransmission-timer fires that found unacked frames.
    pub timeout_fires: u64,
    /// Standalone ack frames emitted.
    pub acks: u64,
    /// Protocol messages released to the receiver in order.
    pub delivered: u64,
    /// Out-of-order frames parked in a reorder buffer.
    pub buffered: u64,
}

/// What the caller must do after poking the transport: put a frame on
/// the wire or arm a timer. Timers carry the channel's epoch; a bumped
/// epoch silently cancels every timer armed before it.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportAction {
    /// Put this frame on the (unreliable) wire now.
    Wire(Frame),
    /// Arm the retransmission timer for channel `src → dst`, firing
    /// `delay` cycles from now.
    RetxTimer {
        src: NodeId,
        dst: NodeId,
        delay: u64,
        epoch: u64,
    },
    /// Arm the standalone-ack timer for data channel `src → dst` (the
    /// ack itself will travel `dst → src`), firing `delay` cycles from
    /// now.
    AckTimer {
        src: NodeId,
        dst: NodeId,
        delay: u64,
        epoch: u64,
    },
}

/// A channel's retry budget ran out: `retries` consecutive timer fires
/// saw no ack progress. Carried inside the simulator's stall
/// diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Sender end of the starved channel.
    pub src: NodeId,
    /// Receiver end of the starved channel.
    pub dst: NodeId,
    /// Oldest unacked sequence number.
    pub seq: u64,
    /// Message kind of that oldest unacked frame.
    pub kind: &'static str,
    /// Timer fires spent on it.
    pub retries: u32,
}

/// Sender side of one directed channel.
#[derive(Debug, Default)]
struct SendChannel {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Every sent-but-unacked message, keyed by sequence number.
    unacked: BTreeMap<u64, Message>,
    /// Consecutive timer fires without ack progress.
    retries: u32,
    /// Timer-cancellation epoch: a fire whose epoch is stale is a
    /// no-op.
    epoch: u64,
    /// Whether a retransmission timer chain is currently armed.
    timer_armed: bool,
}

/// Receiver side of one directed channel.
#[derive(Debug, Default)]
struct RecvChannel {
    /// Lowest sequence number not yet delivered; everything below it
    /// has been released in order (and is covered by our cumulative
    /// ack).
    next_expected: u64,
    /// Out-of-order frames waiting for the gap to fill.
    buffer: BTreeMap<u64, Message>,
    /// A standalone ack is owed (armed via an `AckTimer`).
    ack_pending: bool,
    /// Cancellation epoch for the ack timer (piggybacking bumps it).
    ack_epoch: u64,
}

/// The global transport state machine (one per simulator; channels are
/// keyed by directed `(src, dst)` pairs). `BTreeMap` keeps every
/// iteration deterministic.
#[derive(Debug)]
pub struct Transport {
    cfg: TransportConfig,
    bugs: ProtocolBugs,
    tx: BTreeMap<(NodeId, NodeId), SendChannel>,
    rx: BTreeMap<(NodeId, NodeId), RecvChannel>,
    stats: TransportStats,
    tracer: Tracer,
}

impl Transport {
    #[must_use]
    pub fn new(cfg: TransportConfig, bugs: ProtocolBugs) -> Self {
        Transport {
            cfg,
            bugs,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            stats: TransportStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches the shared tracing sink (observation-only).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Splits a (typically checkpoint-restored) global transport into
    /// per-node parts: node `i` receives the sender state of every
    /// channel it sends on and the receiver state of every channel it
    /// receives on — the same ownership partition the sharded parallel
    /// engine uses for fresh runs, where each event's owner node holds
    /// the channel state that event mutates. The aggregate counters go
    /// to node 0's part, so summing per-node stats at the end of a
    /// resumed run reproduces an uninterrupted run's totals exactly.
    #[must_use]
    pub fn into_node_parts(self, n: usize) -> Vec<Transport> {
        let Transport {
            cfg,
            bugs,
            tx,
            rx,
            stats,
            tracer,
        } = self;
        let mut parts: Vec<Transport> = (0..n)
            .map(|_| {
                let mut t = Transport::new(cfg, bugs);
                t.set_tracer(tracer.clone());
                t
            })
            .collect();
        for ((src, dst), ch) in tx {
            parts[src.index()].tx.insert((src, dst), ch);
        }
        for ((src, dst), ch) in rx {
            parts[dst.index()].rx.insert((src, dst), ch);
        }
        if let Some(p0) = parts.first_mut() {
            p0.stats = stats;
        }
        parts
    }

    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Data frames currently in flight (sent, not yet acked).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.tx.values().map(|ch| ch.unacked.len() as u64).sum()
    }

    /// Frames parked in receiver reorder buffers.
    #[must_use]
    pub fn reorder_buffered(&self) -> u64 {
        self.rx.values().map(|ch| ch.buffer.len() as u64).sum()
    }

    /// `true` once every frame is acked, every reorder buffer drained,
    /// and no standalone ack is owed — the transport adds nothing to a
    /// quiescent system.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0
            && self.reorder_buffered() == 0
            && self.rx.values().all(|ch| !ch.ack_pending)
    }

    /// The cumulative ack to piggyback on traffic toward `to`: our
    /// next-expected on the reverse (`to → from`) data channel.
    fn piggyback_ack(&mut self, from: NodeId, to: NodeId) -> u64 {
        match self.rx.get_mut(&(to, from)) {
            Some(ch) => {
                // This frame carries the ack, so any owed standalone
                // ack is satisfied; bump the epoch to cancel its timer.
                if ch.ack_pending {
                    ch.ack_pending = false;
                    ch.ack_epoch += 1;
                }
                ch.next_expected
            }
            None => 0,
        }
    }

    /// Wrap and send one protocol message. Returns the wire/timer
    /// actions for the caller to schedule.
    pub fn send(&mut self, msg: Message) -> Vec<TransportAction> {
        debug_assert_ne!(msg.src, msg.dst, "local messages bypass the transport");
        let (src, dst) = (msg.src, msg.dst);
        let ack = self.piggyback_ack(src, dst);
        let ch = self.tx.entry((src, dst)).or_default();
        let seq = ch.next_seq;
        ch.next_seq += 1;
        ch.unacked.insert(seq, msg.clone());
        self.stats.data_frames += 1;
        let mut actions = vec![TransportAction::Wire(Frame::Data { seq, ack, msg })];
        if !ch.timer_armed {
            ch.timer_armed = true;
            actions.push(TransportAction::RetxTimer {
                src,
                dst,
                delay: self.cfg.rto,
                epoch: ch.epoch,
            });
        }
        actions
    }

    /// Current RTO for a channel given its consecutive-retry count.
    fn rto_for(&self, retries: u32) -> u64 {
        self.cfg.rto << retries.min(self.cfg.max_backoff_exp)
    }

    /// Process an arriving frame. Returns the protocol messages now
    /// deliverable **in order**, plus follow-up actions.
    pub fn on_frame(&mut self, frame: Frame) -> (Vec<Message>, Vec<TransportAction>) {
        match frame {
            Frame::Ack { src, dst, ack } => {
                // The ack frame runs receiver → sender, acknowledging
                // the reverse data channel `dst → src`.
                self.process_ack(dst, src, ack);
                (Vec::new(), Vec::new())
            }
            Frame::Data { seq, ack, msg } => {
                let (src, dst) = (msg.src, msg.dst);
                // Piggybacked ack covers our reverse-direction sends.
                self.process_ack(dst, src, ack);
                let mut actions = Vec::new();
                let delivered = self.receive_data(seq, msg);
                self.stats.delivered += delivered.len() as u64;
                // Every data frame (fresh or duplicate) earns an ack:
                // if none is owed yet, owe one now. Duplicates matter —
                // they usually mean our previous ack was lost.
                let ch = self.rx.entry((src, dst)).or_default();
                if !ch.ack_pending {
                    ch.ack_pending = true;
                    ch.ack_epoch += 1;
                    actions.push(TransportAction::AckTimer {
                        src,
                        dst,
                        delay: self.cfg.ack_delay,
                        epoch: ch.ack_epoch,
                    });
                }
                (delivered, actions)
            }
        }
    }

    /// Receiver-side sequencing for one data frame on channel
    /// `src → dst` (taken from `msg`).
    fn receive_data(&mut self, seq: u64, msg: Message) -> Vec<Message> {
        let key = (msg.src, msg.dst);
        let ch = self.rx.entry(key).or_default();
        if self.bugs.transport_no_reorder {
            // Mutation: no reorder window. Deliver in arrival order and
            // cumulatively ack past any gap — skipped frames are lost.
            if seq >= ch.next_expected {
                ch.next_expected = seq + 1;
                return vec![msg];
            }
            // Older-than-expected frames still hit the dedup filter
            // below (unless that is mutated away too).
        }
        if seq < ch.next_expected || ch.buffer.contains_key(&seq) {
            self.stats.dup_drops += 1;
            self.tracer.count("transport.dup_drops", 1);
            if self.bugs.transport_no_dedup {
                // Mutation: leak the duplicate to the protocol.
                return vec![msg];
            }
            return Vec::new();
        }
        if seq == ch.next_expected {
            ch.next_expected += 1;
            let mut out = vec![msg];
            // Drain the reorder buffer while it stays contiguous.
            while let Some(next) = ch.buffer.remove(&ch.next_expected) {
                ch.next_expected += 1;
                out.push(next);
            }
            return out;
        }
        // A future frame: park it until the gap fills.
        ch.buffer.insert(seq, msg);
        self.stats.buffered += 1;
        self.tracer.count("transport.buffered", 1);
        Vec::new()
    }

    /// Apply a cumulative ack for data channel `src → dst`: everything
    /// below `ack` is delivered.
    fn process_ack(&mut self, src: NodeId, dst: NodeId, ack: u64) {
        let Some(ch) = self.tx.get_mut(&(src, dst)) else {
            return;
        };
        let before = ch.unacked.len();
        ch.unacked = ch.unacked.split_off(&ack);
        if ch.unacked.len() < before {
            // Window advanced: the channel is making progress.
            ch.retries = 0;
            if ch.unacked.is_empty() && ch.timer_armed {
                ch.timer_armed = false;
                ch.epoch += 1; // cancel the in-flight timer chain
            }
        }
    }

    /// Retransmission-timer fire for channel `src → dst`. Stale epochs
    /// are cancelled timers (no-op). On a live fire every unacked frame
    /// is retransmitted and the next timer arms with doubled RTO;
    /// exhausting the retry budget returns `Err`.
    pub fn on_retx_timer(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        epoch: u64,
    ) -> Result<Vec<TransportAction>, RetryExhausted> {
        let ack = self.piggyback_ack(src, dst);
        let Some(ch) = self.tx.get_mut(&(src, dst)) else {
            return Ok(Vec::new());
        };
        if epoch != ch.epoch || !ch.timer_armed {
            return Ok(Vec::new());
        }
        if ch.unacked.is_empty() {
            ch.timer_armed = false;
            return Ok(Vec::new());
        }
        self.stats.timeout_fires += 1;
        self.tracer.count("transport.timeout_fires", 1);
        ch.retries += 1;
        if ch.retries > self.cfg.max_retries {
            let (&seq, oldest) = ch.unacked.iter().next().expect("non-empty");
            return Err(RetryExhausted {
                src,
                dst,
                seq,
                kind: oldest.payload.kind_name(),
                retries: ch.retries - 1,
            });
        }
        let mut actions = Vec::new();
        for (&seq, msg) in &ch.unacked {
            actions.push(TransportAction::Wire(Frame::Data {
                seq,
                ack,
                msg: msg.clone(),
            }));
        }
        let n = ch.unacked.len() as u64;
        self.stats.retransmits += n;
        self.tracer.count("transport.retransmits", n);
        let retries = ch.retries;
        let epoch = ch.epoch;
        self.tracer.record(now, || TraceEvent::RetxFired {
            src,
            dst,
            count: n,
            retries,
        });
        actions.push(TransportAction::RetxTimer {
            src,
            dst,
            delay: self.rto_for(retries),
            epoch,
        });
        Ok(actions)
    }

    /// Standalone-ack timer fire for data channel `src → dst`: if the
    /// ack is still owed (no reverse traffic piggybacked it first),
    /// emit it.
    pub fn on_ack_timer(&mut self, src: NodeId, dst: NodeId, epoch: u64) -> Vec<TransportAction> {
        let Some(ch) = self.rx.get_mut(&(src, dst)) else {
            return Vec::new();
        };
        if epoch != ch.ack_epoch || !ch.ack_pending {
            return Vec::new();
        }
        ch.ack_pending = false;
        let ack = ch.next_expected;
        self.stats.acks += 1;
        self.tracer.count("transport.acks", 1);
        vec![TransportAction::Wire(Frame::Ack {
            src: dst,
            dst: src,
            ack,
        })]
    }

    /// Serializes every channel's sliding-window state — sequence
    /// counters, unacked frames, reorder buffers, timer epochs — plus
    /// the activity counters. Config and bugs are not included; they
    /// are covered by the snapshot's config digest.
    pub fn save_state(&self, w: &mut SnapWriter) {
        (self.tx.len() as u64).save(w);
        for (&(src, dst), ch) in &self.tx {
            (src, dst).save(w);
            ch.next_seq.save(w);
            ch.unacked.save(w);
            ch.retries.save(w);
            ch.epoch.save(w);
            ch.timer_armed.save(w);
        }
        (self.rx.len() as u64).save(w);
        for (&(src, dst), ch) in &self.rx {
            (src, dst).save(w);
            ch.next_expected.save(w);
            ch.buffer.save(w);
            ch.ack_pending.save(w);
            ch.ack_epoch.save(w);
        }
        self.stats.data_frames.save(w);
        self.stats.retransmits.save(w);
        self.stats.dup_drops.save(w);
        self.stats.timeout_fires.save(w);
        self.stats.acks.save(w);
        self.stats.delivered.save(w);
        self.stats.buffered.save(w);
    }

    /// Restores channel state saved by [`Transport::save_state`].
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tx.clear();
        let n = r.get_len(8)?;
        for _ in 0..n {
            let key: (NodeId, NodeId) = r.get()?;
            let ch = SendChannel {
                next_seq: r.get()?,
                unacked: r.get()?,
                retries: r.get()?,
                epoch: r.get()?,
                timer_armed: r.get()?,
            };
            self.tx.insert(key, ch);
        }
        self.rx.clear();
        let n = r.get_len(8)?;
        for _ in 0..n {
            let key: (NodeId, NodeId) = r.get()?;
            let ch = RecvChannel {
                next_expected: r.get()?,
                buffer: r.get()?,
                ack_pending: r.get()?,
                ack_epoch: r.get()?,
            };
            self.rx.insert(key, ch);
        }
        self.stats = TransportStats {
            data_frames: r.get()?,
            retransmits: r.get()?,
            dup_drops: r.get()?,
            timeout_fires: r.get()?,
            acks: r.get()?,
            delivered: r.get()?,
            buffered: r.get()?,
        };
        Ok(())
    }

    /// Per-channel in-flight summary for stall diagnostics: every
    /// channel with unacked frames, as
    /// `(src, dst, unacked, oldest_seq, retries)`.
    #[must_use]
    pub fn in_flight_channels(&self) -> Vec<(NodeId, NodeId, u64, u64, u32)> {
        self.tx
            .iter()
            .filter(|(_, ch)| !ch.unacked.is_empty())
            .map(|(&(src, dst), ch)| {
                let oldest = *ch.unacked.keys().next().expect("non-empty");
                (src, dst, ch.unacked.len() as u64, oldest, ch.retries)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::{Payload, Tid};

    fn msg(src: u16, dst: u16, tid: u64) -> Message {
        Message::new(NodeId(src), NodeId(dst), Payload::Skip { tid: Tid(tid) })
    }

    fn wires(actions: &[TransportAction]) -> Vec<Frame> {
        actions
            .iter()
            .filter_map(|a| match a {
                TransportAction::Wire(f) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_frames_deliver_immediately_and_ack_cumulatively() {
        let mut t = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut r = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        for i in 0..4 {
            let sent = t.send(msg(0, 1, i));
            let frames = wires(&sent);
            assert_eq!(frames.len(), 1);
            let (delivered, _) = r.on_frame(frames[0].clone());
            assert_eq!(delivered, vec![msg(0, 1, i)]);
        }
        assert_eq!(t.in_flight(), 4);
        // A standalone ack from the receiver clears the window.
        let acks = r.on_ack_timer(NodeId(0), NodeId(1), 1);
        let (d, _) = t.on_frame(wires(&acks)[0].clone());
        assert!(d.is_empty());
        assert_eq!(t.in_flight(), 0);
        assert!(t.is_quiescent());
    }

    #[test]
    fn out_of_order_frames_are_buffered_and_released_in_sequence() {
        let mut sender = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut rcv = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut frames = Vec::new();
        for i in 0..3 {
            frames.extend(wires(&sender.send(msg(0, 1, i))));
        }
        // Deliver 2, 0, 1; the receiver must release 0, then 1 and 2.
        let (d, _) = rcv.on_frame(frames[2].clone());
        assert!(d.is_empty());
        assert_eq!(rcv.reorder_buffered(), 1);
        let (d, _) = rcv.on_frame(frames[0].clone());
        assert_eq!(d, vec![msg(0, 1, 0)]);
        let (d, _) = rcv.on_frame(frames[1].clone());
        assert_eq!(d, vec![msg(0, 1, 1), msg(0, 1, 2)]);
        assert_eq!(rcv.reorder_buffered(), 0);
        assert_eq!(rcv.stats().delivered, 3);
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let mut sender = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut rcv = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let f = wires(&sender.send(msg(0, 1, 9)))[0].clone();
        let (d, _) = rcv.on_frame(f.clone());
        assert_eq!(d.len(), 1);
        // Ack goes out, then the duplicate arrives: dropped, but a new
        // standalone ack is owed (the first ack may have been lost).
        assert!(!rcv
            .on_ack_timer(NodeId(0), NodeId(1), rcv_epoch(&rcv))
            .is_empty());
        let (d, actions) = rcv.on_frame(f);
        assert!(d.is_empty());
        assert_eq!(rcv.stats().dup_drops, 1);
        assert!(actions
            .iter()
            .any(|a| matches!(a, TransportAction::AckTimer { .. })));
    }

    fn rcv_epoch(t: &Transport) -> u64 {
        t.rx[&(NodeId(0), NodeId(1))].ack_epoch
    }

    #[test]
    fn piggybacked_ack_cancels_standalone_ack() {
        let mut a = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let f = wires(&a.send(msg(0, 1, 1)))[0].clone();
        let mut b = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let (_, actions) = b.on_frame(f);
        let TransportAction::AckTimer { epoch, .. } = actions[0] else {
            panic!("expected ack timer");
        };
        // B now sends reverse traffic: the data frame carries ack=1.
        let reply = wires(&b.send(msg(1, 0, 2)))[0].clone();
        let Frame::Data { ack, .. } = &reply else {
            panic!()
        };
        assert_eq!(*ack, 1);
        // The armed standalone ack is now stale and fires as a no-op.
        assert!(b.on_ack_timer(NodeId(0), NodeId(1), epoch).is_empty());
        assert_eq!(b.stats().acks, 0);
        // A processes the piggybacked ack: window clear.
        let (_, _) = a.on_frame(reply);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn retx_timer_retransmits_all_unacked_with_backoff_until_exhaustion() {
        let cfg = TransportConfig {
            rto: 100,
            max_backoff_exp: 2,
            max_retries: 3,
            ack_delay: 10,
        };
        let mut t = Transport::new(cfg, ProtocolBugs::default());
        let first = t.send(msg(0, 1, 1));
        let TransportAction::RetxTimer { delay, epoch, .. } = first[1] else {
            panic!("first send must arm the retx timer");
        };
        assert_eq!(delay, 100);
        t.send(msg(0, 1, 2));
        // Fire 1: both frames retransmit, RTO doubles.
        let acts = t
            .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap();
        assert_eq!(wires(&acts).len(), 2);
        assert_eq!(t.stats().retransmits, 2);
        let TransportAction::RetxTimer { delay, .. } = acts[2] else {
            panic!()
        };
        assert_eq!(delay, 200);
        // Fire 2 then 3: backoff caps at rto << 2 = 400.
        let acts = t
            .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap();
        let TransportAction::RetxTimer { delay, .. } = acts[2] else {
            panic!()
        };
        assert_eq!(delay, 400);
        let acts = t
            .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap();
        let TransportAction::RetxTimer { delay, .. } = acts[2] else {
            panic!()
        };
        assert_eq!(delay, 400);
        // Fire 4: budget (3) exhausted.
        let err = t
            .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap_err();
        assert_eq!(err.src, NodeId(0));
        assert_eq!(err.dst, NodeId(1));
        assert_eq!(err.seq, 0);
        assert_eq!(err.retries, 3);
        assert_eq!(err.kind, "Skip");
    }

    #[test]
    fn ack_progress_resets_backoff_and_cancels_timer_when_drained() {
        let mut t = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let acts = t.send(msg(0, 1, 1));
        let TransportAction::RetxTimer { epoch, .. } = acts[1] else {
            panic!()
        };
        t.on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap();
        // Full ack: window drains, epoch bumps, the old chain is dead.
        t.on_frame(Frame::Ack {
            src: NodeId(1),
            dst: NodeId(0),
            ack: 1,
        });
        assert_eq!(t.in_flight(), 0);
        assert!(t
            .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap()
            .is_empty());
        // A later send arms a fresh chain with base RTO.
        let acts = t.send(msg(0, 1, 2));
        let TransportAction::RetxTimer {
            delay, epoch: e2, ..
        } = acts[1]
        else {
            panic!()
        };
        assert_eq!(delay, TransportConfig::default().rto);
        assert_ne!(e2, epoch);
    }

    /// Property check: under a deterministic adversarial wire that
    /// drops, duplicates, and reorders frames, every message is
    /// delivered exactly once, in per-channel order, as long as the
    /// wire is only *intermittently* lossy.
    #[test]
    fn exactly_once_in_order_delivery_under_lossy_wire() {
        use tcc_types::rng::SmallRng;
        for trial in 0..20u64 {
            let cfg = TransportConfig {
                rto: 50,
                max_backoff_exp: 4,
                max_retries: 32,
                ack_delay: 8,
            };
            let mut end = Transport::new(cfg, ProtocolBugs::default());
            let mut rng = SmallRng::seed_from_u64(trial_seed(trial));
            // Discrete event list: (time, order, frame).
            let mut queue: BTreeMap<(u64, u64), QEvent> = BTreeMap::new();
            let mut order = 0u64;
            let push =
                |queue: &mut BTreeMap<(u64, u64), QEvent>, order: &mut u64, at: u64, ev: QEvent| {
                    queue.insert((at, *order), ev);
                    *order += 1;
                };
            // Channel 0→1 sends 60 messages at t = k*7; the wire drops
            // 25% and duplicates 20% of frames with up to 80 cycles of
            // reorder jitter.
            let total = 60u64;
            for k in 0..total {
                push(&mut queue, &mut order, k * 7, QEvent::AppSend(k));
            }
            let mut got: Vec<u64> = Vec::new();
            let mut steps = 0u64;
            while let Some((&(at, ord), _)) = queue.iter().next() {
                steps += 1;
                assert!(steps < 200_000, "harness runaway");
                let ev = queue.remove(&(at, ord)).unwrap();
                let actions = match ev {
                    QEvent::AppSend(k) => end.send(msg(0, 1, k)),
                    QEvent::Arrive(frame) => {
                        let (delivered, acts) = end.on_frame(frame);
                        for m in delivered {
                            let Payload::Skip { tid } = m.payload else {
                                panic!()
                            };
                            got.push(tid.0);
                        }
                        acts
                    }
                    QEvent::Retx(src, dst, epoch) => end
                        .on_retx_timer(Cycle(at), src, dst, epoch)
                        .expect("budget ample"),
                    QEvent::AckT(src, dst, epoch) => end.on_ack_timer(src, dst, epoch),
                };
                for a in actions {
                    match a {
                        TransportAction::Wire(f) => {
                            // Adversarial wire: drop/dup/reorder, but
                            // never starve retransmissions forever.
                            let lossy = at < total * 7 + 2000;
                            if lossy && rng.gen_bool(0.25) {
                                continue; // dropped
                            }
                            let jitter = rng.gen_range(0..=80);
                            push(
                                &mut queue,
                                &mut order,
                                at + 5 + jitter,
                                QEvent::Arrive(f.clone()),
                            );
                            if lossy && rng.gen_bool(0.2) {
                                let jitter = rng.gen_range(0..=80);
                                push(&mut queue, &mut order, at + 9 + jitter, QEvent::Arrive(f));
                            }
                        }
                        TransportAction::RetxTimer {
                            src,
                            dst,
                            delay,
                            epoch,
                        } => push(
                            &mut queue,
                            &mut order,
                            at + delay,
                            QEvent::Retx(src, dst, epoch),
                        ),
                        TransportAction::AckTimer {
                            src,
                            dst,
                            delay,
                            epoch,
                        } => push(
                            &mut queue,
                            &mut order,
                            at + delay,
                            QEvent::AckT(src, dst, epoch),
                        ),
                    }
                }
            }
            let want: Vec<u64> = (0..total).collect();
            assert_eq!(got, want, "trial {trial}: exactly-once in-order broken");
            assert!(end.is_quiescent(), "trial {trial}: transport not quiescent");
            assert!(
                end.stats().retransmits > 0,
                "trial {trial}: wire was not lossy"
            );
        }
    }

    // Stable per-trial seed for the adversarial-wire property check.
    fn trial_seed(trial: u64) -> u64 {
        0x7cc0_11ff ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[derive(Debug, Clone)]
    enum QEvent {
        AppSend(u64),
        Arrive(Frame),
        Retx(NodeId, NodeId, u64),
        AckT(NodeId, NodeId, u64),
    }

    /// Checkpointing a transport with unacked frames, a reorder-buffer
    /// gap, and a pending standalone ack must round-trip exactly:
    /// identical bytes on re-save and identical behaviour afterwards.
    #[test]
    fn save_restore_round_trips_mid_retransmission_state() {
        let cfg = TransportConfig {
            rto: 100,
            max_backoff_exp: 2,
            max_retries: 8,
            ack_delay: 10,
        };
        let mut t = Transport::new(cfg, ProtocolBugs::default());
        // Sender side: two unacked frames on 0→1, one timer fire spent.
        let acts = t.send(msg(0, 1, 1));
        let TransportAction::RetxTimer { epoch, .. } = acts[1] else {
            panic!()
        };
        t.send(msg(0, 1, 2));
        t.on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
            .unwrap();
        // Receiver side: out-of-order frame parked, standalone ack owed.
        let mut peer = Transport::new(cfg, ProtocolBugs::default());
        peer.send(msg(2, 0, 1));
        let f = wires(&peer.send(msg(2, 0, 2)))[0].clone();
        t.on_frame(f);
        assert_eq!(t.reorder_buffered(), 1);

        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut r = Transport::new(cfg, ProtocolBugs::default());
        let mut rd = SnapReader::new(&bytes);
        r.restore_state(&mut rd).unwrap();
        assert!(rd.is_done());
        let mut w2 = SnapWriter::new();
        r.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Both copies behave identically from here on.
        for t in [&mut t, &mut r] {
            // The next retx fire retransmits both frames with the
            // already-doubled RTO.
            let acts = t
                .on_retx_timer(Cycle(0), NodeId(0), NodeId(1), epoch)
                .unwrap();
            assert_eq!(wires(&acts).len(), 2);
            let TransportAction::RetxTimer { delay, .. } = acts[2] else {
                panic!()
            };
            assert_eq!(delay, 400);
            // The missing seq 0 on 2→0 releases the buffered frame too.
            let f =
                wires(&Transport::new(cfg, ProtocolBugs::default()).send(msg(2, 0, 1)))[0].clone();
            let (d, _) = t.on_frame(f);
            assert_eq!(d, vec![msg(2, 0, 1), msg(2, 0, 2)]);
            assert_eq!(t.stats().retransmits, 4);
        }

        // Truncated snapshots are refused.
        let mut fresh = Transport::new(cfg, ProtocolBugs::default());
        let mut short = SnapReader::new(&bytes[..bytes.len() - 3]);
        assert!(fresh.restore_state(&mut short).is_err());
    }

    #[test]
    fn no_dedup_mutation_leaks_duplicates() {
        let bugs = ProtocolBugs {
            transport_no_dedup: true,
            ..ProtocolBugs::default()
        };
        let mut sender = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut rcv = Transport::new(TransportConfig::default(), bugs);
        let f = wires(&sender.send(msg(0, 1, 5)))[0].clone();
        let (d, _) = rcv.on_frame(f.clone());
        assert_eq!(d.len(), 1);
        let (d, _) = rcv.on_frame(f);
        assert_eq!(d.len(), 1, "mutated transport must leak the duplicate");
    }

    #[test]
    fn no_reorder_mutation_delivers_in_arrival_order_and_loses_the_gap() {
        let bugs = ProtocolBugs {
            transport_no_reorder: true,
            ..ProtocolBugs::default()
        };
        let mut sender = Transport::new(TransportConfig::default(), ProtocolBugs::default());
        let mut rcv = Transport::new(TransportConfig::default(), bugs);
        let mut frames = Vec::new();
        for i in 0..3 {
            frames.extend(wires(&sender.send(msg(0, 1, i))));
        }
        // seq 2 first: delivered immediately, gap acked away.
        let (d, _) = rcv.on_frame(frames[2].clone());
        assert_eq!(d, vec![msg(0, 1, 2)]);
        // seq 0 arrives late: treated as a duplicate and dropped — the
        // protocol never sees it.
        let (d, _) = rcv.on_frame(frames[0].clone());
        assert!(d.is_empty());
    }
}
