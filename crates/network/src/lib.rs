//! Interconnection-network model for the Scalable TCC simulator.
//!
//! The paper's machine (Table 2) connects nodes with a **2D grid** whose
//! per-hop link latency is a key experimental parameter (Figure 8 sweeps
//! it). This crate models that fabric:
//!
//! * [`Mesh2D`] — a near-square 2D mesh with dimension-order (XY)
//!   routing, per-hop pipeline latency, and per-link serialization /
//!   contention (each directed link is busy for `size / bandwidth`
//!   cycles per message).
//! * [`Network`] — the facade the protocol layer uses: it times a
//!   [`Message`] across the mesh and records its bytes in the Figure 9
//!   traffic accounts ([`TrafficStats`]).
//!
//! Messages between a processor and its *own* node's directory do not
//! cross the network; they pay a small fixed local latency and are not
//! counted as remote traffic.
//!
//! # Example
//!
//! ```
//! use tcc_network::{Mesh2D, NetworkConfig};
//! use tcc_types::{Cycle, NodeId};
//!
//! let mut mesh = Mesh2D::new(16, NetworkConfig::default());
//! // A 16-node machine forms a 4x4 grid; corner-to-corner is 6 hops.
//! assert_eq!(mesh.hops(NodeId(0), NodeId(15)), 6);
//! let arrival = mesh.send(Cycle(0), NodeId(0), NodeId(15), 16);
//! assert!(arrival > Cycle(0));
//! ```

pub mod chaos;
mod mesh;
mod stats;
pub mod transport;

pub use chaos::{
    ChaosConfig, ChaosStats, DropRule, DupRule, FaultInjector, HotSpot, KindDelay, SeededInjector,
};
pub use mesh::{Mesh2D, NetworkConfig};
pub use stats::TrafficStats;
pub use transport::{RetryExhausted, Transport, TransportAction, TransportConfig, TransportStats};

use tcc_trace::{TraceEvent, Tracer};
use tcc_types::snap::{Snap, SnapError, SnapReader, SnapWriter};
use tcc_types::{Cycle, Frame, Message, NodeId};

/// The interconnect facade: routes [`Message`]s over a [`Mesh2D`] and
/// accounts their traffic.
#[derive(Debug)]
pub struct Network {
    mesh: Mesh2D,
    stats: TrafficStats,
    line_bytes: u32,
    tracer: Tracer,
    injector: Option<Box<dyn FaultInjector>>,
}

impl Network {
    /// Creates a network for `n_nodes` nodes with cache lines of
    /// `line_bytes` bytes (needed to size data messages).
    #[must_use]
    pub fn new(n_nodes: usize, line_bytes: u32, config: NetworkConfig) -> Network {
        Network {
            mesh: Mesh2D::new(n_nodes, config),
            stats: TrafficStats::new(n_nodes),
            line_bytes,
            tracer: Tracer::disabled(),
            injector: None,
        }
    }

    /// Attaches the shared tracing sink (observation-only: tracing does
    /// not alter timing or routing).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches an adversarial [`FaultInjector`]; every subsequent send
    /// (unicast and multicast, local and remote) is routed through it.
    pub fn set_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Runs `arrival` through the attached injector, if any, recording
    /// the perturbation in the trace.
    fn apply_chaos(&mut self, now: Cycle, msg: &Message, arrival: Cycle) -> Cycle {
        let Some(injector) = self.injector.as_mut() else {
            return arrival;
        };
        let perturbed = injector.perturb(now, msg, arrival);
        debug_assert!(perturbed >= arrival, "fault injector must only add latency");
        let delay = perturbed.0.saturating_sub(arrival.0);
        if delay > 0 {
            self.tracer.count("chaos.perturbed_messages", 1);
            self.tracer.count("chaos.extra_cycles", delay);
            self.tracer.record(now, || TraceEvent::ChaosPerturb {
                kind: msg.payload.kind_name(),
                src: msg.src,
                dst: msg.dst,
                delay,
            });
        }
        perturbed
    }

    /// Records one message injection in the trace (all sends funnel
    /// through here).
    fn trace_send(&self, now: Cycle, msg: &Message, size: u32) {
        self.tracer.count("net.messages", 1);
        self.tracer.count("net.bytes", u64::from(size));
        self.tracer.record(now, || TraceEvent::MsgSend {
            kind: msg.payload.kind_name(),
            src: msg.src,
            dst: msg.dst,
            bytes: u64::from(size),
        });
    }

    /// Times `msg` from its source to its destination starting at `now`,
    /// updating link occupancy and traffic statistics. Returns the
    /// delivery time.
    pub fn send(&mut self, now: Cycle, msg: &Message) -> Cycle {
        let size = msg.size_bytes(self.line_bytes);
        self.trace_send(now, msg, size);
        if msg.src != msg.dst {
            self.stats
                .record(msg.src, msg.dst, msg.payload.category(), size);
            self.stats.record_kind(msg.payload.kind_name());
        }
        let arrival = self.mesh.send(now, msg.src, msg.dst, size);
        self.apply_chaos(now, msg, arrival)
    }

    /// Times one copy of a *multicast* message (Skip/Commit/Abort
    /// distribution). The paper relies on limited multicast being cheap
    /// ("limited multicast messages are cheap in a high bandwidth
    /// interconnect", §2.2): copies replicate in the fabric instead of
    /// serializing at the source, so each copy pays only the
    /// uncontended path latency. Traffic is still accounted per copy
    /// delivered (the receive-side view Figure 9 reports).
    pub fn send_multicast(&mut self, now: Cycle, msg: &Message) -> Cycle {
        let size = msg.size_bytes(self.line_bytes);
        self.trace_send(now, msg, size);
        if msg.src == msg.dst {
            let arrival = self.mesh.send(now, msg.src, msg.dst, size);
            return self.apply_chaos(now, msg, arrival);
        }
        self.stats
            .record(msg.src, msg.dst, msg.payload.category(), size);
        self.stats.record_kind(msg.payload.kind_name());
        let hops = self.mesh.hops(msg.src, msg.dst);
        let arrival = now + self.mesh.uncontended_latency(hops, size);
        self.apply_chaos(now, msg, arrival)
    }

    /// Times one transport [`Frame`] across the mesh and asks the
    /// attached injector (if any) for its **wire fate**: the returned
    /// vector holds one delivery time per copy that survives the wire
    /// (empty = dropped, two = duplicated). Unlike [`Network::send`],
    /// no per-channel FIFO clamp applies — the reliable transport layer
    /// restores ordering itself — so this is the only path on which the
    /// chaos drop/dup/reorder rules take effect.
    ///
    /// `multicast` selects the uncontended-path timing model used for
    /// Skip/Commit/Abort fan-out (see [`Network::send_multicast`]);
    /// traffic is still accounted per copy put on the wire, including
    /// retransmissions — resending costs real bytes.
    pub fn send_frame(&mut self, now: Cycle, frame: &Frame, multicast: bool) -> Vec<Cycle> {
        let size = frame.size_bytes(self.line_bytes);
        let (src, dst) = (frame.src(), frame.dst());
        let kind = frame.kind_name();
        self.tracer.count("net.messages", 1);
        self.tracer.count("net.bytes", u64::from(size));
        self.tracer.record(now, || TraceEvent::MsgSend {
            kind,
            src,
            dst,
            bytes: u64::from(size),
        });
        debug_assert_ne!(src, dst, "local messages bypass the transport");
        self.stats.record(src, dst, frame.category(), size);
        self.stats.record_kind(kind);
        let arrival = if multicast {
            let hops = self.mesh.hops(src, dst);
            now + self.mesh.uncontended_latency(hops, size)
        } else {
            self.mesh.send(now, src, dst, size)
        };
        let fates = match self.injector.as_mut() {
            None => vec![arrival],
            Some(injector) => injector.wire_fate(now, kind, src, dst, arrival),
        };
        debug_assert!(
            fates.iter().all(|&t| t >= arrival),
            "wire faults must not deliver early"
        );
        if fates.is_empty() {
            self.tracer.count("chaos.dropped_frames", 1);
            self.tracer
                .record(now, || TraceEvent::FrameDropped { kind, src, dst });
        } else if fates.len() > 1 {
            let copies = fates.len() as u64 - 1;
            self.tracer.count("chaos.duplicated_frames", copies);
            self.tracer.record(now, || TraceEvent::FrameDuplicated {
                kind,
                src,
                dst,
                copies,
            });
        }
        fates
    }

    /// Serializes the network's mutable state: link occupancy, traffic
    /// accounts, and — when an injector is attached — its RNG and
    /// clamp state. Topology and line size come from config and are
    /// covered by the snapshot's config digest.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.mesh.link_state().to_vec().save(w);
        self.stats.save_state(w);
        match self.injector.as_ref() {
            None => false.save(w),
            Some(inj) => {
                true.save(w);
                inj.save_state(w);
            }
        }
    }

    /// Restores state saved by [`Network::save_state`] into a network
    /// built from the same configuration (same topology, and an
    /// injector attached iff one was attached at save time).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let links: Vec<Cycle> = r.get()?;
        if links.len() != self.mesh.link_state().len() {
            return Err(SnapError::invalid(
                "Network.mesh",
                "link state from a differently shaped mesh",
            ));
        }
        self.mesh.restore_link_state(links);
        self.stats.restore_state(r)?;
        let had_injector: bool = r.get()?;
        match (had_injector, self.injector.as_mut()) {
            (true, Some(inj)) => inj.restore_state(r)?,
            (false, None) => {}
            (saved, _) => {
                return Err(SnapError::invalid(
                    "Network.injector",
                    format!(
                        "snapshot {} an injector but this network {} one",
                        if saved { "carries" } else { "lacks" },
                        if saved { "lacks" } else { "carries" },
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Number of mesh hops between two nodes.
    #[must_use]
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        self.mesh.hops(a, b)
    }

    /// Accumulated traffic statistics.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The network configuration in force.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        self.mesh.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::{Payload, Tid, TrafficCategory};

    #[test]
    fn network_counts_remote_but_not_local_traffic() {
        let mut net = Network::new(4, 32, NetworkConfig::default());
        let remote = Message::new(NodeId(0), NodeId(3), Payload::Skip { tid: Tid(0) });
        let local = Message::new(NodeId(1), NodeId(1), Payload::Skip { tid: Tid(0) });
        net.send(Cycle(0), &remote);
        net.send(Cycle(0), &local);
        assert_eq!(net.stats().total_bytes(), u64::from(remote.size_bytes(32)));
        assert_eq!(
            net.stats().bytes_in_category(TrafficCategory::Commit),
            u64::from(remote.size_bytes(32))
        );
    }

    #[test]
    fn local_messages_are_fast() {
        let mut net = Network::new(4, 32, NetworkConfig::default());
        let local = Message::new(NodeId(1), NodeId(1), Payload::Skip { tid: Tid(0) });
        let remote = Message::new(NodeId(0), NodeId(3), Payload::Skip { tid: Tid(0) });
        let t_local = net.send(Cycle(0), &local);
        let t_remote = net.send(Cycle(0), &remote);
        assert!(t_local < t_remote);
    }

    #[test]
    fn save_restore_round_trips_links_stats_and_injector() {
        let mk = || {
            let mut net = Network::new(9, 32, NetworkConfig::default());
            net.set_injector(Box::new(SeededInjector::new(ChaosConfig {
                seed: 77,
                jitter: 30,
                jitter_prob: 0.5,
                ..ChaosConfig::default()
            })));
            net
        };
        let mut net = mk();
        for i in 0..40u64 {
            let m = Message::new(
                NodeId((i % 9) as u16),
                NodeId(((i * 5 + 3) % 9) as u16),
                Payload::Skip { tid: Tid(i) },
            );
            net.send(Cycle(i * 2), &m);
        }
        let mut w = SnapWriter::new();
        net.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = mk();
        let mut r = SnapReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        let mut w2 = SnapWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Post-restore sends see identical contention and chaos.
        for i in 40..60u64 {
            let m = Message::new(NodeId(0), NodeId(8), Payload::Skip { tid: Tid(i) });
            assert_eq!(net.send(Cycle(i), &m), restored.send(Cycle(i), &m));
        }
        assert_eq!(net.stats().total_bytes(), restored.stats().total_bytes());

        // A snapshot with an injector cannot restore into a network
        // without one.
        let mut plain = Network::new(9, 32, NetworkConfig::default());
        let mut r = SnapReader::new(&bytes);
        assert!(plain.restore_state(&mut r).is_err());
    }
}
