//! Remote-traffic accounting in the categories of Figure 9.

use std::collections::BTreeMap;

use tcc_types::snap::{Snap, SnapError, SnapReader, SnapWriter};
use tcc_types::{NodeId, TrafficCategory};

/// Number of traffic categories (see [`TrafficCategory::ALL`]).
const N_CATS: usize = 5;

fn cat_index(c: TrafficCategory) -> usize {
    match c {
        TrafficCategory::Overhead => 0,
        TrafficCategory::Miss => 1,
        TrafficCategory::WriteBack => 2,
        TrafficCategory::Commit => 3,
        TrafficCategory::Shared => 4,
    }
}

/// Accumulated remote-traffic statistics.
///
/// Figure 9 of the paper reports "the traffic produced and consumed on
/// average at each directory … in terms of bytes per instruction". We
/// record, per node, the bytes it *received*, broken down by
/// [`TrafficCategory`]; global totals and message counts are kept as
/// well. Bytes-per-instruction normalization happens in `tcc-stats`,
/// which knows the instruction counts.
#[derive(Debug, Clone)]
pub struct TrafficStats {
    /// `received[node][category]` = bytes delivered to `node`.
    received: Vec<[u64; N_CATS]>,
    /// Global message count per category.
    messages: [u64; N_CATS],
    /// Census: remote message count per protocol message kind (the
    /// Table 1 vocabulary plus replies/acks).
    by_kind: BTreeMap<&'static str, u64>,
    /// Total messages timed (including local ones is the caller's
    /// choice; [`crate::Network`] only records remote messages here).
    total_messages: u64,
}

impl TrafficStats {
    /// Creates zeroed statistics for an `n_nodes` machine.
    #[must_use]
    pub fn new(n_nodes: usize) -> TrafficStats {
        TrafficStats {
            received: vec![[0; N_CATS]; n_nodes],
            messages: [0; N_CATS],
            by_kind: BTreeMap::new(),
            total_messages: 0,
        }
    }

    /// Records one `size`-byte message from `_src` delivered to `dst`.
    pub fn record(&mut self, _src: NodeId, dst: NodeId, cat: TrafficCategory, size: u32) {
        let i = cat_index(cat);
        self.received[dst.index()][i] += u64::from(size);
        self.messages[i] += 1;
        self.total_messages += 1;
    }

    /// Records one message in the per-kind census (call alongside
    /// [`TrafficStats::record`]).
    pub fn record_kind(&mut self, kind: &'static str) {
        *self.by_kind.entry(kind).or_default() += 1;
    }

    /// The remote-message census: `(message kind, count)` in
    /// alphabetical order.
    #[must_use]
    pub fn message_census(&self) -> Vec<(&'static str, u64)> {
        self.by_kind.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Total bytes delivered across the whole machine.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.received.iter().flatten().sum()
    }

    /// Total bytes delivered in one category.
    #[must_use]
    pub fn bytes_in_category(&self, cat: TrafficCategory) -> u64 {
        let i = cat_index(cat);
        self.received.iter().map(|r| r[i]).sum()
    }

    /// Bytes delivered to one node in one category.
    #[must_use]
    pub fn bytes_at(&self, node: NodeId, cat: TrafficCategory) -> u64 {
        self.received[node.index()][cat_index(cat)]
    }

    /// Number of remote messages in one category.
    #[must_use]
    pub fn messages_in_category(&self, cat: TrafficCategory) -> u64 {
        self.messages[cat_index(cat)]
    }

    /// Total number of remote messages.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Average bytes per node in one category (the Figure 9 y-axis
    /// numerator).
    #[must_use]
    pub fn avg_bytes_per_node(&self, cat: TrafficCategory) -> f64 {
        if self.received.is_empty() {
            return 0.0;
        }
        self.bytes_in_category(cat) as f64 / self.received.len() as f64
    }

    /// Serializes the accumulated counters for a checkpoint. The
    /// per-kind census stores owned kind names; restore re-interns them
    /// against the protocol vocabulary.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.received.save(w);
        self.messages.save(w);
        (self.by_kind.len() as u64).save(w);
        for (&kind, &count) in &self.by_kind {
            kind.to_string().save(w);
            count.save(w);
        }
        self.total_messages.save(w);
    }

    /// Restores counters from a checkpoint taken on a same-sized
    /// machine.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let received: Vec<[u64; N_CATS]> = r.get()?;
        if received.len() != self.received.len() {
            return Err(SnapError::invalid(
                "TrafficStats.received",
                format!(
                    "snapshot has {} nodes, machine has {}",
                    received.len(),
                    self.received.len()
                ),
            ));
        }
        self.received = received;
        self.messages = r.get()?;
        let n = r.get_len(2)?;
        self.by_kind.clear();
        for _ in 0..n {
            let name: String = r.get()?;
            let count: u64 = r.get()?;
            let kind = tcc_types::msg::intern_kind_name(&name).ok_or_else(|| {
                SnapError::invalid("TrafficStats.by_kind", format!("unknown kind {name:?}"))
            })?;
            self.by_kind.insert(kind, count);
        }
        self.total_messages = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_by_node_and_category() {
        let mut s = TrafficStats::new(4);
        s.record(NodeId(0), NodeId(1), TrafficCategory::Miss, 40);
        s.record(NodeId(2), NodeId(1), TrafficCategory::Miss, 40);
        s.record(NodeId(0), NodeId(3), TrafficCategory::Commit, 16);
        assert_eq!(s.total_bytes(), 96);
        assert_eq!(s.bytes_in_category(TrafficCategory::Miss), 80);
        assert_eq!(s.bytes_at(NodeId(1), TrafficCategory::Miss), 80);
        assert_eq!(s.bytes_at(NodeId(3), TrafficCategory::Commit), 16);
        assert_eq!(s.bytes_at(NodeId(3), TrafficCategory::Miss), 0);
        assert_eq!(s.messages_in_category(TrafficCategory::Miss), 2);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn averages_divide_by_node_count() {
        let mut s = TrafficStats::new(4);
        s.record(NodeId(0), NodeId(1), TrafficCategory::Shared, 100);
        assert_eq!(s.avg_bytes_per_node(TrafficCategory::Shared), 25.0);
        assert_eq!(s.avg_bytes_per_node(TrafficCategory::Miss), 0.0);
    }

    #[test]
    fn all_categories_are_distinct_buckets() {
        let mut s = TrafficStats::new(1);
        for (i, c) in TrafficCategory::ALL.iter().enumerate() {
            s.record(NodeId(0), NodeId(0), *c, (i as u32 + 1) * 10);
        }
        for (i, c) in TrafficCategory::ALL.iter().enumerate() {
            assert_eq!(s.bytes_in_category(*c), (i as u64 + 1) * 10);
        }
    }
}
