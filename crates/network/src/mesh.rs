//! 2D mesh topology with dimension-order routing and link contention.

use tcc_types::{Cycle, NodeId};

/// Interconnect timing parameters.
///
/// The defaults correspond to Table 2 of the paper: a 2D grid with a
/// 4-cycle link latency (Figure 8 sweeps 1–8 cycles per hop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Pipeline latency of one hop, in cycles ("cycles per hop" in
    /// Figure 8).
    pub link_latency: u64,
    /// Link bandwidth in bytes per cycle; a message occupies each link on
    /// its path for `ceil(size / bytes_per_cycle)` cycles.
    pub bytes_per_cycle: u32,
    /// Fixed latency for messages that stay within a node (processor to
    /// co-located directory).
    pub local_latency: u64,
    /// Add wrap-around links in both dimensions (a 2D torus instead of
    /// the paper's plain grid), halving worst-case hop counts. An
    /// extension study — the paper's Table 2 machine is a grid.
    pub torus: bool,
}

impl Default for NetworkConfig {
    fn default() -> NetworkConfig {
        NetworkConfig {
            link_latency: 4,
            bytes_per_cycle: 8,
            local_latency: 2,
            torus: false,
        }
    }
}

/// The four mesh directions, used to index a node's output links.
const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

/// A near-square 2D mesh with XY (dimension-order) routing.
///
/// Each directed link tracks the cycle at which it next becomes free;
/// a message walking its path claims each link in order, so concurrent
/// messages through the same link serialize. Because the simulation's
/// event queue delivers sends in global time order, this eager
/// path-walking is causally consistent.
#[derive(Debug)]
pub struct Mesh2D {
    cols: usize,
    rows: usize,
    n_nodes: usize,
    config: NetworkConfig,
    /// `links[node * 4 + direction]` = earliest cycle the link is free.
    link_free: Vec<Cycle>,
}

impl Mesh2D {
    /// Builds a mesh for `n_nodes` nodes, arranged as the most square
    /// grid whose area covers them (e.g. 12 nodes → 4×3).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn new(n_nodes: usize, config: NetworkConfig) -> Mesh2D {
        assert!(n_nodes > 0, "mesh must have at least one node");
        let cols = (n_nodes as f64).sqrt().ceil() as usize;
        let rows = n_nodes.div_ceil(cols);
        // Routers exist at every grid position, even when the last row is
        // only partially populated with nodes, so XY routes may cross them.
        Mesh2D {
            cols,
            rows,
            n_nodes,
            config,
            link_free: vec![Cycle::ZERO; cols * rows * 4],
        }
    }

    /// The grid dimensions `(columns, rows)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    fn pos(&self, n: NodeId) -> (usize, usize) {
        let i = n.index();
        debug_assert!(i < self.n_nodes, "node {n} outside mesh");
        (i % self.cols, i / self.cols)
    }

    fn id_at(&self, x: usize, y: usize) -> usize {
        y * self.cols + x
    }

    /// Signed per-dimension step toward `to` (torus picks the shorter
    /// way around; ties go the positive direction).
    fn step(&self, from: usize, to: usize, extent: usize) -> isize {
        if from == to {
            return 0;
        }
        if !self.config.torus {
            return if to > from { 1 } else { -1 };
        }
        let fwd = (to + extent - from) % extent;
        let back = (from + extent - to) % extent;
        if fwd <= back {
            1
        } else {
            -1
        }
    }

    /// Distance along one dimension (wrap-aware on a torus).
    fn dim_dist(&self, a: usize, b: usize, extent: usize) -> u64 {
        let d = a.abs_diff(b);
        if self.config.torus {
            d.min(extent - d) as u64
        } else {
            d as u64
        }
    }

    /// Hop count between two nodes (0 for a node to itself): Manhattan
    /// distance on the grid, wrap-aware on a torus.
    #[must_use]
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.pos(a);
        let (bx, by) = self.pos(b);
        self.dim_dist(ax, bx, self.cols) + self.dim_dist(ay, by, self.rows)
    }

    /// Serialization delay of a message of `size` bytes on one link.
    fn ser_cycles(&self, size: u32) -> u64 {
        u64::from(size.div_ceil(self.config.bytes_per_cycle)).max(1)
    }

    /// Routes a message of `size` bytes from `src` to `dst`, injected at
    /// `now`. Claims each link along the XY path in order (modelling
    /// contention) and returns the delivery time.
    ///
    /// Messages with `src == dst` pay only
    /// [`NetworkConfig::local_latency`].
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, size: u32) -> Cycle {
        if src == dst {
            return now + self.config.local_latency;
        }
        let ser = self.ser_cycles(size);
        let (mut x, mut y) = self.pos(src);
        let (dx, dy) = self.pos(dst);
        let mut t = now;
        // X dimension first, then Y (deadlock-free dimension-order
        // route); on a torus each dimension takes the shorter way
        // around, using the same four per-node links (the wrap link of
        // the edge node in that direction).
        while x != dx {
            let step = self.step(x, dx, self.cols);
            let dir = if step > 0 { EAST } else { WEST };
            t = self.cross_link(self.id_at(x, y), dir, t, ser);
            x = (x as isize + step).rem_euclid(self.cols as isize) as usize;
        }
        while y != dy {
            let step = self.step(y, dy, self.rows);
            let dir = if step > 0 { SOUTH } else { NORTH };
            t = self.cross_link(self.id_at(x, y), dir, t, ser);
            y = (y as isize + step).rem_euclid(self.rows as isize) as usize;
        }
        t
    }

    /// Claims the `dir` output link of node `node` for `ser` cycles
    /// starting no earlier than `arrive`; returns when the head of the
    /// message reaches the next router.
    fn cross_link(&mut self, node: usize, dir: usize, arrive: Cycle, ser: u64) -> Cycle {
        let slot = &mut self.link_free[node * 4 + dir];
        let start = arrive.max(*slot);
        *slot = start + ser;
        start + ser + self.config.link_latency
    }

    /// Uncontended latency of a `size`-byte message over `hops` hops.
    ///
    /// Useful for analytical checks; [`Mesh2D::send`] will return exactly
    /// this when the path is idle.
    #[must_use]
    pub fn uncontended_latency(&self, hops: u64, size: u32) -> u64 {
        hops * (self.ser_cycles(size) + self.config.link_latency)
    }

    /// The per-link next-free cycles — the mesh's only mutable state —
    /// for checkpointing.
    #[must_use]
    pub fn link_state(&self) -> &[Cycle] {
        &self.link_free
    }

    /// Overwrites the per-link occupancy with a checkpointed copy.
    ///
    /// # Panics
    ///
    /// Panics if `link_free` was captured from a differently shaped
    /// mesh (the link count is fixed by the grid dimensions).
    pub fn restore_link_state(&mut self, link_free: Vec<Cycle>) {
        assert_eq!(
            link_free.len(),
            self.link_free.len(),
            "link state from a differently shaped mesh"
        );
        self.link_free = link_free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::rng::SmallRng;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            link_latency: 3,
            bytes_per_cycle: 8,
            local_latency: 2,
            torus: false,
        }
    }

    fn torus_cfg() -> NetworkConfig {
        NetworkConfig {
            torus: true,
            ..cfg()
        }
    }

    #[test]
    fn torus_halves_corner_distances() {
        let grid = Mesh2D::new(16, cfg());
        let torus = Mesh2D::new(16, torus_cfg());
        // Corner to corner on a 4x4: 6 hops on the grid, 2 on the torus.
        assert_eq!(grid.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(torus.hops(NodeId(0), NodeId(15)), 2);
        // Adjacent nodes are unchanged.
        assert_eq!(torus.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(torus.hops(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn torus_routes_deliver_at_wrap_aware_latency() {
        let mut m = Mesh2D::new(16, torus_cfg());
        let hops = m.hops(NodeId(0), NodeId(15));
        let t = m.send(Cycle(0), NodeId(0), NodeId(15), 16);
        assert_eq!(t - Cycle(0), m.uncontended_latency(hops, 16));
    }

    #[test]
    fn torus_hops_stay_a_metric() {
        let m = Mesh2D::new(36, torus_cfg());
        for a in 0..36u16 {
            for b in 0..36u16 {
                assert_eq!(m.hops(NodeId(a), NodeId(b)), m.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn grid_dimensions_cover_all_nodes() {
        for n in 1..=70 {
            let m = Mesh2D::new(n, cfg());
            let (c, r) = m.dims();
            assert!(c * r >= n, "{n} nodes need {c}x{r} >= n");
            assert!(c.abs_diff(r) <= 1, "grid should be near-square: {c}x{r}");
        }
    }

    #[test]
    fn perfect_squares_form_square_grids() {
        for (n, side) in [(4, 2), (16, 4), (64, 8)] {
            assert_eq!(Mesh2D::new(n, cfg()).dims(), (side, side));
        }
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = Mesh2D::new(16, cfg());
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(m.hops(NodeId(0), NodeId(5)), 2); // (0,0) -> (1,1)
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6); // corner to corner
        assert_eq!(m.hops(NodeId(15), NodeId(0)), 6);
    }

    #[test]
    fn uncontended_send_matches_analytical_latency() {
        let mut m = Mesh2D::new(16, cfg());
        let size = 16; // 2 serialization cycles at 8 B/cycle
        let hops = m.hops(NodeId(0), NodeId(15));
        let t = m.send(Cycle(100), NodeId(0), NodeId(15), size);
        assert_eq!(t - Cycle(100), m.uncontended_latency(hops, size));
        assert_eq!(t - Cycle(100), hops * (2 + 3));
    }

    #[test]
    fn local_send_pays_local_latency_only() {
        let mut m = Mesh2D::new(16, cfg());
        assert_eq!(m.send(Cycle(10), NodeId(3), NodeId(3), 999), Cycle(12));
    }

    #[test]
    fn contention_serializes_messages_on_a_shared_link() {
        let mut m = Mesh2D::new(4, cfg());
        // Two messages both crossing the 0 -> 1 link at the same time.
        let a = m.send(Cycle(0), NodeId(0), NodeId(1), 8);
        let b = m.send(Cycle(0), NodeId(0), NodeId(1), 8);
        assert_eq!(a, Cycle(1 + 3));
        assert_eq!(b, Cycle(2 + 3), "second message waits for the link");
        // A message on a disjoint path is unaffected.
        let c = m.send(Cycle(0), NodeId(3), NodeId(2), 8);
        assert_eq!(c, Cycle(1 + 3));
    }

    #[test]
    fn contention_only_on_shared_prefix() {
        let mut m = Mesh2D::new(16, cfg());
        // 0 -> 3 and 0 -> 1 share the first link.
        let short = m.send(Cycle(0), NodeId(0), NodeId(1), 8);
        let long = m.send(Cycle(0), NodeId(0), NodeId(3), 8);
        assert_eq!(short, Cycle(4));
        // long waits 1 cycle at link 0, then 3 more uncontended hops.
        assert_eq!(long, Cycle(2 + 3 + 2 * (1 + 3)));
    }

    #[test]
    fn min_one_serialization_cycle() {
        let m = Mesh2D::new(4, cfg());
        assert_eq!(m.ser_cycles(0), 1);
        assert_eq!(m.ser_cycles(1), 1);
        assert_eq!(m.ser_cycles(9), 2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Mesh2D::new(0, cfg());
    }

    /// Delivery time is never before injection plus the uncontended
    /// path latency, and link state never regresses.
    #[test]
    fn prop_latency_lower_bound() {
        let mut rng = SmallRng::seed_from_u64(0x3e57_0001);
        for _ in 0..256 {
            let n = rng.gen_range(1usize..64);
            let mut m = Mesh2D::new(n, cfg());
            let pairs = rng.gen_range(1usize..50);
            for i in 0..pairs {
                let now = Cycle(i as u64);
                let s = NodeId((rng.gen_range(0usize..64) % n) as u16);
                let d = NodeId((rng.gen_range(0usize..64) % n) as u16);
                let size = rng.gen_range(1u32..256);
                let t = m.send(now, s, d, size);
                let lower = if s == d {
                    cfg().local_latency
                } else {
                    m.uncontended_latency(m.hops(s, d), size)
                };
                assert!(t.since(now) >= lower);
            }
        }
    }

    /// Hop metric is symmetric and satisfies the triangle inequality.
    #[test]
    fn prop_hops_metric() {
        let mut rng = SmallRng::seed_from_u64(0x3e57_0002);
        for _ in 0..512 {
            let n = rng.gen_range(1usize..64);
            let m = Mesh2D::new(n, cfg());
            let a = NodeId((rng.gen_range(0usize..64) % n) as u16);
            let b = NodeId((rng.gen_range(0usize..64) % n) as u16);
            let c = NodeId((rng.gen_range(0usize..64) % n) as u16);
            assert_eq!(m.hops(a, b), m.hops(b, a));
            assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
            assert_eq!(m.hops(a, a), 0);
        }
    }
}
