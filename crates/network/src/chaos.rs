//! Adversarial fault injection for the interconnect.
//!
//! The Scalable TCC protocol is designed for *unordered* networks: its
//! §3.3 race-elimination rules (invalidation-ack windows, TID-tagged
//! write-backs, request-id supersede on load/invalidate races) only
//! earn their keep when messages are delayed and reordered badly. The
//! mesh model itself is benign — latencies vary only with hop count and
//! contention — so this module wraps it with a [`FaultInjector`] that
//! stretches message latencies adversarially:
//!
//! * **Per-message jitter** — each message independently gains up to
//!   `jitter` extra cycles with probability `jitter_prob`.
//! * **Kind-targeted, phase-windowed delays** ([`KindDelay`]) — e.g.
//!   stall every `Mark` injected during cycles 0..5000 by 200 cycles
//!   while racing `Commit`s run ahead, or hold `InvAck`s to stretch the
//!   NSTID ack window.
//! * **Hot spots** ([`HotSpot`]) — all traffic *into* one node slows
//!   down for a cycle window, modeling a congested link or a transient
//!   directory slowdown.
//!
//! Everything is driven by one [`SmallRng`] stream seeded from a single
//! `u64`, and the simulator consumes messages in a deterministic order,
//! so a (program seed × chaos seed × config) triple replays the exact
//! failing schedule.
//!
//! # The one ordering rule chaos must respect
//!
//! Injection only ever *adds* latency, and by default it keeps each
//! directed `(src, dst)` channel FIFO (strictly monotone delivery
//! times). Cross-channel reordering is unbounded — that is where the
//! protocol's races live — but the simulator's node model assumes
//! point-to-point order on two paths: a superseded owner's
//! `Flush`/`WriteBack` must reach the home directory *before* the same
//! processor's subsequent `InvAck` (the directory merges the flush data
//! under the ack window), and an eviction `WriteBack` must not be
//! overtaken by the same node's next `LoadRequest` for that line.
//! Violating per-channel FIFO therefore produces spurious
//! lost-update reports that no real unordered fabric with per-channel
//! ordering would exhibit. `preserve_channel_fifo: false` is available
//! for experiments but is excluded from the correctness oracle.
//!
//! # Wire faults (loss, duplication, cross-channel reorder)
//!
//! When the simulator runs with the reliable transport enabled
//! (`crates/network/src/transport.rs`), every remote message travels as
//! a sequenced [`Frame`](tcc_types::Frame) and the FIFO clamp above no
//! longer applies — the transport restores per-channel order itself.
//! On that path the injector is consulted through [`FaultInjector::wire_fate`],
//! which may *drop* a frame ([`DropRule`]), *duplicate* it
//! ([`DupRule`]), or scatter its delivery time without any clamp
//! (`reorder`/`reorder_prob`), on top of the latency rules. Rules are
//! kind- and phase-windowed exactly like [`KindDelay`]; `"*"` matches
//! every frame kind (standalone acks are kind `"Ack"`). The simulator
//! refuses wire faults unless the transport is on — losing a message
//! with no retransmission layer is not a schedule, it is a different
//! machine.

use tcc_types::hash::FxHashMap;

use tcc_trace::Json;
use tcc_types::rng::SmallRng;
use tcc_types::snap::{Snap, SnapError, SnapReader, SnapWriter};
use tcc_types::{Cycle, Message, NodeId};

/// Hook the [`Network`](crate::Network) calls for every message send.
///
/// Implementations return the (possibly later) delivery time; returning
/// a time earlier than `arrival` is a contract violation (the engine
/// cannot schedule into the past).
pub trait FaultInjector: std::fmt::Debug {
    /// Perturb one message injected at `now` whose natural delivery
    /// time is `arrival`.
    fn perturb(&mut self, now: Cycle, msg: &Message, arrival: Cycle) -> Cycle;

    /// Decide the fate of one *transport frame* injected at `now` with
    /// natural delivery time `arrival`: the returned vector holds the
    /// delivery time of every copy put on the wire — empty means the
    /// frame was dropped, two entries mean it was duplicated. Unlike
    /// [`perturb`](FaultInjector::perturb) there is **no** per-channel
    /// FIFO clamp (the reliable transport restores ordering), so
    /// implementations may reorder freely; they still must not deliver
    /// before `arrival`. The default is a faithful wire.
    fn wire_fate(
        &mut self,
        _now: Cycle,
        _kind: &str,
        _src: NodeId,
        _dst: NodeId,
        arrival: Cycle,
    ) -> Vec<Cycle> {
        vec![arrival]
    }

    /// Serializes the injector's mutable state (RNG position, FIFO
    /// clamp watermarks, counters) for a checkpoint. Stateless
    /// injectors need not override the default no-op.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restores state saved by
    /// [`save_state`](FaultInjector::save_state). The injector must
    /// already be configured identically to the one that saved (the
    /// snapshot's config digest guarantees this for [`SeededInjector`]).
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Extra latency for one message kind inside a cycle window.
#[derive(Debug, Clone, PartialEq)]
pub struct KindDelay {
    /// Message kind name as reported by `Payload::kind_name()`
    /// (e.g. `"Mark"`, `"InvAck"`, `"Commit"`).
    pub kind: String,
    /// Extra cycles added when the rule fires.
    pub extra: u64,
    /// Probability the rule fires for a matching message.
    pub prob: f64,
    /// Window start (message injection cycle), inclusive.
    pub from: u64,
    /// Window end, exclusive. `u64::MAX` leaves the window open.
    pub until: u64,
}

/// Drop matching transport frames with some probability inside a cycle
/// window. Only consulted on the reliable-transport wire path
/// ([`FaultInjector::wire_fate`]); `kind == "*"` matches every frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DropRule {
    /// Frame kind name (`Frame::kind_name()`), or `"*"` for all.
    pub kind: String,
    /// Probability a matching frame is dropped.
    pub prob: f64,
    /// Window start (frame injection cycle), inclusive.
    pub from: u64,
    /// Window end, exclusive. `u64::MAX` leaves the window open.
    pub until: u64,
}

/// Duplicate matching transport frames with some probability inside a
/// cycle window; the copy arrives `delay` cycles after the original.
/// Only consulted on the reliable-transport wire path.
#[derive(Debug, Clone, PartialEq)]
pub struct DupRule {
    /// Frame kind name (`Frame::kind_name()`), or `"*"` for all.
    pub kind: String,
    /// Probability a matching frame is duplicated.
    pub prob: f64,
    /// Extra cycles the duplicate copy lags the original (min 1).
    pub delay: u64,
    /// Window start (frame injection cycle), inclusive.
    pub from: u64,
    /// Window end, exclusive. `u64::MAX` leaves the window open.
    pub until: u64,
}

/// `true` when `rule` (possibly the `"*"` wildcard) matches `kind`.
fn kind_matches(rule: &str, kind: &str) -> bool {
    rule == "*" || rule == kind
}

/// Slow down all traffic *into* one node for a cycle window.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpot {
    /// Destination node whose incoming links congest.
    pub node: NodeId,
    /// Extra cycles per message while the window is open.
    pub extra: u64,
    /// Window start (inclusive) and end (exclusive) in cycles.
    pub from: u64,
    pub until: u64,
}

/// Full description of one adversarial schedule, deterministic from
/// `seed`. JSON round-trips via [`ChaosConfig::to_json`] /
/// [`ChaosConfig::from_json`] so failing schedules are replayable
/// artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Max per-message jitter in cycles (0 disables).
    pub jitter: u64,
    /// Probability a message receives jitter.
    pub jitter_prob: f64,
    /// Kind-targeted delay rules.
    pub kind_delays: Vec<KindDelay>,
    /// Destination hot spots.
    pub hotspots: Vec<HotSpot>,
    /// Keep each directed `(src, dst)` channel FIFO (see module docs).
    /// Leave `true` for correctness-oracle runs.
    pub preserve_channel_fifo: bool,
    /// Frame-drop rules (transport wire path only).
    pub drops: Vec<DropRule>,
    /// Frame-duplication rules (transport wire path only).
    pub dups: Vec<DupRule>,
    /// Max extra cross-channel reorder jitter on the transport wire
    /// path, applied with **no** FIFO clamp (0 disables).
    pub reorder: u64,
    /// Probability a frame receives reorder jitter.
    pub reorder_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            jitter: 0,
            jitter_prob: 1.0,
            kind_delays: Vec::new(),
            hotspots: Vec::new(),
            preserve_channel_fifo: true,
            drops: Vec::new(),
            dups: Vec::new(),
            reorder: 0,
            reorder_prob: 1.0,
        }
    }
}

impl ChaosConfig {
    /// `true` when no rule can ever add latency (the FIFO clamp may
    /// still serialize same-cycle same-channel deliveries).
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.jitter == 0
            && self.kind_delays.is_empty()
            && self.hotspots.is_empty()
            && !self.has_wire_faults()
    }

    /// `true` when any rule needs the unreliable wire path: dropping,
    /// duplicating, or unclamped reordering. The simulator requires the
    /// reliable transport to be enabled before honoring these.
    #[must_use]
    pub fn has_wire_faults(&self) -> bool {
        !self.drops.is_empty() || !self.dups.is_empty() || self.reorder > 0
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_string().into()),
            ("jitter", self.jitter.into()),
            ("jitter_prob", self.jitter_prob.into()),
            (
                "kind_delays",
                Json::Arr(
                    self.kind_delays
                        .iter()
                        .map(|kd| {
                            Json::obj(vec![
                                ("kind", kd.kind.as_str().into()),
                                ("extra", kd.extra.into()),
                                ("prob", kd.prob.into()),
                                ("from", kd.from.into()),
                                ("until", window_end_json(kd.until)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "hotspots",
                Json::Arr(
                    self.hotspots
                        .iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("node", u64::from(h.node.0).into()),
                                ("extra", h.extra.into()),
                                ("from", h.from.into()),
                                ("until", window_end_json(h.until)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("preserve_channel_fifo", self.preserve_channel_fifo.into()),
            (
                "drops",
                Json::Arr(
                    self.drops
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("kind", d.kind.as_str().into()),
                                ("prob", d.prob.into()),
                                ("from", d.from.into()),
                                ("until", window_end_json(d.until)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dups",
                Json::Arr(
                    self.dups
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("kind", d.kind.as_str().into()),
                                ("prob", d.prob.into()),
                                ("delay", d.delay.into()),
                                ("from", d.from.into()),
                                ("until", window_end_json(d.until)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("reorder", self.reorder.into()),
            ("reorder_prob", self.reorder_prob.into()),
        ])
    }

    pub fn from_json(json: &Json) -> Result<ChaosConfig, String> {
        let seed = json
            .get("seed")
            .and_then(Json::as_str)
            .ok_or("chaos: missing seed")?
            .parse::<u64>()
            .map_err(|e| format!("chaos: bad seed: {e}"))?;
        let jitter = field_u64(json, "jitter")?;
        let jitter_prob = json
            .get("jitter_prob")
            .and_then(Json::as_f64)
            .ok_or("chaos: missing jitter_prob")?;
        let mut kind_delays = Vec::new();
        for kd in json
            .get("kind_delays")
            .and_then(Json::as_arr)
            .ok_or("chaos: missing kind_delays")?
        {
            kind_delays.push(KindDelay {
                kind: kd
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("chaos: kind_delay missing kind")?
                    .to_string(),
                extra: field_u64(kd, "extra")?,
                prob: kd
                    .get("prob")
                    .and_then(Json::as_f64)
                    .ok_or("chaos: kind_delay missing prob")?,
                from: field_u64(kd, "from")?,
                until: window_end_from_json(kd.get("until")),
            });
        }
        let mut hotspots = Vec::new();
        for h in json
            .get("hotspots")
            .and_then(Json::as_arr)
            .ok_or("chaos: missing hotspots")?
        {
            hotspots.push(HotSpot {
                node: NodeId(field_u64(h, "node")? as u16),
                extra: field_u64(h, "extra")?,
                from: field_u64(h, "from")?,
                until: window_end_from_json(h.get("until")),
            });
        }
        let preserve_channel_fifo = match json.get("preserve_channel_fifo") {
            Some(Json::Bool(b)) => *b,
            _ => true,
        };
        // Wire-fault fields are additive: artifacts written before the
        // reliable transport existed simply lack them.
        let mut drops = Vec::new();
        if let Some(arr) = json.get("drops").and_then(Json::as_arr) {
            for d in arr {
                drops.push(DropRule {
                    kind: d
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("chaos: drop rule missing kind")?
                        .to_string(),
                    prob: d
                        .get("prob")
                        .and_then(Json::as_f64)
                        .ok_or("chaos: drop rule missing prob")?,
                    from: field_u64(d, "from")?,
                    until: window_end_from_json(d.get("until")),
                });
            }
        }
        let mut dups = Vec::new();
        if let Some(arr) = json.get("dups").and_then(Json::as_arr) {
            for d in arr {
                dups.push(DupRule {
                    kind: d
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("chaos: dup rule missing kind")?
                        .to_string(),
                    prob: d
                        .get("prob")
                        .and_then(Json::as_f64)
                        .ok_or("chaos: dup rule missing prob")?,
                    delay: field_u64(d, "delay")?,
                    from: field_u64(d, "from")?,
                    until: window_end_from_json(d.get("until")),
                });
            }
        }
        let reorder = json.get("reorder").and_then(Json::as_u64).unwrap_or(0);
        let reorder_prob = json
            .get("reorder_prob")
            .and_then(Json::as_f64)
            .unwrap_or(1.0);
        Ok(ChaosConfig {
            seed,
            jitter,
            jitter_prob,
            kind_delays,
            hotspots,
            preserve_channel_fifo,
            drops,
            dups,
            reorder,
            reorder_prob,
        })
    }
}

/// Open-ended windows serialize as `null` (f64 cannot hold `u64::MAX`).
fn window_end_json(until: u64) -> Json {
    if until == u64::MAX {
        Json::Null
    } else {
        until.into()
    }
}

fn window_end_from_json(v: Option<&Json>) -> u64 {
    v.and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn field_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("chaos: missing {key}"))
}

/// Counters the injector keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages that passed through the injector.
    pub messages: u64,
    /// Messages whose delivery moved later than natural arrival.
    pub perturbed: u64,
    /// Total extra cycles injected.
    pub extra_cycles: u64,
    /// Transport frames dropped on the wire.
    pub dropped: u64,
    /// Extra transport-frame copies created by duplication rules.
    pub duplicated: u64,
}

/// The deterministic [`FaultInjector`] driven by a [`ChaosConfig`].
#[derive(Debug)]
pub struct SeededInjector {
    cfg: ChaosConfig,
    rng: SmallRng,
    /// Last delivery time per directed channel, for the FIFO clamp.
    last_arrival: FxHashMap<(NodeId, NodeId), u64>,
    stats: ChaosStats,
}

impl SeededInjector {
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        SeededInjector {
            cfg,
            rng,
            last_arrival: FxHashMap::default(),
            stats: ChaosStats::default(),
        }
    }

    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    fn extra_for(&mut self, now: Cycle, kind: &str, dst: NodeId) -> u64 {
        let mut extra = 0;
        if self.cfg.jitter > 0 && self.rng.gen_bool(self.cfg.jitter_prob) {
            extra += self.rng.gen_range(0..=self.cfg.jitter);
        }
        for kd in &self.cfg.kind_delays {
            if kd.kind == kind && now.0 >= kd.from && now.0 < kd.until {
                // Draw even when extra == 0 so adding/removing a rule's
                // delay does not shift later draws (shrinking stays
                // more local); the probability gate itself consumes
                // from the stream deterministically per message.
                if self.rng.gen_bool(kd.prob) {
                    extra += kd.extra;
                }
            }
        }
        for h in &self.cfg.hotspots {
            if dst == h.node && now.0 >= h.from && now.0 < h.until {
                extra += h.extra;
            }
        }
        extra
    }
}

impl FaultInjector for SeededInjector {
    fn perturb(&mut self, now: Cycle, msg: &Message, arrival: Cycle) -> Cycle {
        self.stats.messages += 1;
        let extra = self.extra_for(now, msg.payload.kind_name(), msg.dst);
        let mut t = arrival.0 + extra;
        if self.cfg.preserve_channel_fifo {
            let key = (msg.src, msg.dst);
            if let Some(&last) = self.last_arrival.get(&key) {
                if t <= last {
                    t = last + 1;
                }
            }
            self.last_arrival.insert(key, t);
        }
        if t > arrival.0 {
            self.stats.perturbed += 1;
            self.stats.extra_cycles += t - arrival.0;
        }
        Cycle(t)
    }

    fn wire_fate(
        &mut self,
        now: Cycle,
        kind: &str,
        _src: NodeId,
        dst: NodeId,
        arrival: Cycle,
    ) -> Vec<Cycle> {
        self.stats.messages += 1;
        let mut extra = self.extra_for(now, kind, dst);
        if self.cfg.reorder > 0 && self.rng.gen_bool(self.cfg.reorder_prob) {
            extra += self.rng.gen_range(0..=self.cfg.reorder);
        }
        let t = arrival.0 + extra;
        // Draw every in-window rule even once the outcome is decided so
        // removing one rule (shrinking) keeps later draws stable.
        let mut dropped = false;
        for d in &self.cfg.drops {
            if kind_matches(&d.kind, kind) && now.0 >= d.from && now.0 < d.until {
                dropped |= self.rng.gen_bool(d.prob);
            }
        }
        let mut copies = Vec::new();
        for d in &self.cfg.dups {
            if kind_matches(&d.kind, kind)
                && now.0 >= d.from
                && now.0 < d.until
                && self.rng.gen_bool(d.prob)
            {
                copies.push(Cycle(t + d.delay.max(1)));
            }
        }
        if dropped {
            self.stats.dropped += 1;
            return Vec::new();
        }
        if t > arrival.0 {
            self.stats.perturbed += 1;
            self.stats.extra_cycles += t - arrival.0;
        }
        self.stats.duplicated += copies.len() as u64;
        let mut fates = vec![Cycle(t)];
        fates.extend(copies);
        fates
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.rng.save(w);
        let mut clamp: Vec<((NodeId, NodeId), u64)> =
            self.last_arrival.iter().map(|(&k, &v)| (k, v)).collect();
        clamp.sort_unstable();
        clamp.save(w);
        self.stats.messages.save(w);
        self.stats.perturbed.save(w);
        self.stats.extra_cycles.save(w);
        self.stats.dropped.save(w);
        self.stats.duplicated.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = r.get()?;
        let clamp: Vec<((NodeId, NodeId), u64)> = r.get()?;
        self.last_arrival = clamp.into_iter().collect();
        self.stats = ChaosStats {
            messages: r.get()?,
            perturbed: r.get()?,
            extra_cycles: r.get()?,
            dropped: r.get()?,
            duplicated: r.get()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::{Payload, Tid};

    fn msg(src: u16, dst: u16) -> Message {
        Message::new(NodeId(src), NodeId(dst), Payload::Skip { tid: Tid(1) })
    }

    fn probe(src: u16, dst: u16) -> Message {
        Message::new(
            NodeId(src),
            NodeId(dst),
            Payload::Probe {
                tid: Tid(1),
                requester: NodeId(src),
                for_write: true,
            },
        )
    }

    #[test]
    fn same_seed_same_perturbation() {
        let cfg = ChaosConfig {
            seed: 99,
            jitter: 50,
            jitter_prob: 0.7,
            ..ChaosConfig::default()
        };
        let mut a = SeededInjector::new(cfg.clone());
        let mut b = SeededInjector::new(cfg);
        for i in 0..500 {
            let m = msg((i % 4) as u16, ((i + 1) % 4) as u16);
            let at = Cycle(i * 3);
            let natural = Cycle(i * 3 + 10);
            assert_eq!(a.perturb(at, &m, natural), b.perturb(at, &m, natural));
        }
    }

    #[test]
    fn never_delivers_early_and_keeps_channel_fifo() {
        let cfg = ChaosConfig {
            seed: 7,
            jitter: 200,
            jitter_prob: 0.9,
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg);
        let mut last = 0;
        for i in 0..200 {
            let natural = Cycle(i + 10);
            let t = inj.perturb(Cycle(i), &msg(0, 1), natural);
            assert!(t >= natural, "chaos must only add latency");
            assert!(t.0 > last, "same-channel deliveries must stay FIFO");
            last = t.0;
        }
    }

    #[test]
    fn kind_delay_hits_only_its_kind_and_window() {
        let cfg = ChaosConfig {
            seed: 1,
            kind_delays: vec![KindDelay {
                kind: "Probe".to_string(),
                extra: 100,
                prob: 1.0,
                from: 0,
                until: 50,
            }],
            preserve_channel_fifo: false,
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg);
        assert_eq!(inj.perturb(Cycle(10), &probe(0, 1), Cycle(20)), Cycle(120));
        // Other kinds untouched.
        assert_eq!(inj.perturb(Cycle(10), &msg(0, 1), Cycle(20)), Cycle(20));
        // Outside the window untouched.
        assert_eq!(inj.perturb(Cycle(60), &probe(0, 1), Cycle(70)), Cycle(70));
    }

    #[test]
    fn hotspot_slows_traffic_into_one_node() {
        let cfg = ChaosConfig {
            seed: 2,
            hotspots: vec![HotSpot {
                node: NodeId(3),
                extra: 40,
                from: 100,
                until: 200,
            }],
            preserve_channel_fifo: false,
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg);
        assert_eq!(inj.perturb(Cycle(150), &msg(0, 3), Cycle(160)), Cycle(200));
        assert_eq!(inj.perturb(Cycle(150), &msg(0, 2), Cycle(160)), Cycle(160));
        assert_eq!(inj.perturb(Cycle(250), &msg(0, 3), Cycle(260)), Cycle(260));
        assert_eq!(inj.stats().perturbed, 1);
        assert_eq!(inj.stats().extra_cycles, 40);
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = ChaosConfig {
            seed: u64::MAX - 12345,
            jitter: 32,
            jitter_prob: 0.25,
            kind_delays: vec![KindDelay {
                kind: "InvAck".to_string(),
                extra: 64,
                prob: 0.5,
                from: 0,
                until: u64::MAX,
            }],
            hotspots: vec![HotSpot {
                node: NodeId(5),
                extra: 16,
                from: 10,
                until: 90,
            }],
            preserve_channel_fifo: true,
            drops: vec![DropRule {
                kind: "*".to_string(),
                prob: 0.05,
                from: 0,
                until: u64::MAX,
            }],
            dups: vec![DupRule {
                kind: "Mark".to_string(),
                prob: 0.2,
                delay: 40,
                from: 100,
                until: 5000,
            }],
            reorder: 120,
            reorder_prob: 0.5,
        };
        let json = cfg.to_json();
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(ChaosConfig::from_json(&parsed).unwrap(), cfg);
    }

    #[test]
    fn artifacts_without_wire_fault_fields_still_parse() {
        // A pre-transport chaos artifact: no drops/dups/reorder keys.
        let old = ChaosConfig {
            seed: 3,
            jitter: 8,
            ..ChaosConfig::default()
        };
        let mut json = old.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| {
                !matches!(k.as_str(), "drops" | "dups" | "reorder" | "reorder_prob")
            });
        }
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        let cfg = ChaosConfig::from_json(&parsed).unwrap();
        assert_eq!(cfg, old);
        assert!(!cfg.has_wire_faults());
    }

    #[test]
    fn drop_rule_drops_matching_frames_in_window_only() {
        let cfg = ChaosConfig {
            seed: 11,
            drops: vec![DropRule {
                kind: "Probe".to_string(),
                prob: 1.0,
                from: 0,
                until: 100,
            }],
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg);
        assert!(inj
            .wire_fate(Cycle(10), "Probe", NodeId(0), NodeId(1), Cycle(20))
            .is_empty());
        // Other kinds and out-of-window frames pass through on time.
        assert_eq!(
            inj.wire_fate(Cycle(10), "Skip", NodeId(0), NodeId(1), Cycle(20)),
            vec![Cycle(20)]
        );
        assert_eq!(
            inj.wire_fate(Cycle(150), "Probe", NodeId(0), NodeId(1), Cycle(160)),
            vec![Cycle(160)]
        );
        assert_eq!(inj.stats().dropped, 1);
    }

    #[test]
    fn dup_rule_emits_a_delayed_copy() {
        let cfg = ChaosConfig {
            seed: 12,
            dups: vec![DupRule {
                kind: "*".to_string(),
                prob: 1.0,
                delay: 30,
                from: 0,
                until: u64::MAX,
            }],
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg);
        assert_eq!(
            inj.wire_fate(Cycle(0), "Ack", NodeId(0), NodeId(1), Cycle(15)),
            vec![Cycle(15), Cycle(45)]
        );
        assert_eq!(inj.stats().duplicated, 1);
    }

    /// A restored injector must continue the RNG stream and FIFO clamp
    /// exactly where the saved one left off: the perturbation tails
    /// match draw for draw.
    #[test]
    fn save_restore_continues_rng_and_clamp_tails_exactly() {
        let cfg = ChaosConfig {
            seed: 0xc4a0_5001,
            jitter: 80,
            jitter_prob: 0.6,
            drops: vec![DropRule {
                kind: "*".to_string(),
                prob: 0.1,
                from: 0,
                until: u64::MAX,
            }],
            reorder: 50,
            reorder_prob: 0.5,
            ..ChaosConfig::default()
        };
        let mut inj = SeededInjector::new(cfg.clone());
        for i in 0..300u64 {
            inj.perturb(Cycle(i), &msg((i % 3) as u16, 1), Cycle(i + 10));
            inj.wire_fate(Cycle(i), "Mark", NodeId(0), NodeId(2), Cycle(i + 10));
        }

        let mut w = SnapWriter::new();
        inj.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SeededInjector::new(cfg);
        let mut r = SnapReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(restored.stats(), inj.stats());

        for i in 300..600u64 {
            let m = msg((i % 3) as u16, 1);
            assert_eq!(
                inj.perturb(Cycle(i), &m, Cycle(i + 10)),
                restored.perturb(Cycle(i), &m, Cycle(i + 10)),
                "perturbation tail diverged at step {i}"
            );
            assert_eq!(
                inj.wire_fate(Cycle(i), "Mark", NodeId(0), NodeId(2), Cycle(i + 10)),
                restored.wire_fate(Cycle(i), "Mark", NodeId(0), NodeId(2), Cycle(i + 10)),
                "wire-fate tail diverged at step {i}"
            );
        }
    }

    #[test]
    fn reorder_jitter_has_no_fifo_clamp_and_same_seed_replays() {
        let cfg = ChaosConfig {
            seed: 13,
            reorder: 100,
            reorder_prob: 1.0,
            ..ChaosConfig::default()
        };
        let mut a = SeededInjector::new(cfg.clone());
        let mut b = SeededInjector::new(cfg);
        let mut saw_out_of_order = false;
        let mut last = 0;
        for i in 0..200 {
            let fa = a.wire_fate(Cycle(i), "Mark", NodeId(0), NodeId(1), Cycle(i + 10));
            let fb = b.wire_fate(Cycle(i), "Mark", NodeId(0), NodeId(1), Cycle(i + 10));
            assert_eq!(fa, fb, "wire fate must be seed-deterministic");
            assert!(fa[0] >= Cycle(i + 10), "wire faults must not deliver early");
            if fa[0].0 < last {
                saw_out_of_order = true;
            }
            last = fa[0].0;
        }
        assert!(
            saw_out_of_order,
            "unclamped reorder jitter should invert same-channel delivery order"
        );
    }
}
