//! Statistical property tests: at fixed seeds, the synthesized
//! traffic's empirical distributions must match the configured models
//! within tolerance. These are the guardrails that keep the generator
//! honest — a refactor that silently skews a sampler fails here even
//! if determinism suites still pass.

use tcc_traffic::{
    scenarios, synthesize, ArrivalConfig, PopularityConfig, ShapeConfig, TrafficConfig,
};

fn base(arrival: ArrivalConfig, popularity: PopularityConfig, shape: ShapeConfig) -> TrafficConfig {
    TrafficConfig {
        scenario: "stats-test".to_string(),
        seed: 0x0005_7a75,
        arrival,
        popularity,
        shape,
    }
}

#[test]
fn poisson_interarrival_mean_converges() {
    let mean = 80.0;
    let cfg = base(
        ArrivalConfig::Poisson {
            mean_interarrival_ticks: mean,
        },
        PopularityConfig::Uniform { n_keys: 64 },
        ShapeConfig::Kv {
            reads_per_tx: 1,
            writes_per_tx: 0,
        },
    );
    let n = 100_000usize;
    let trace = synthesize(&cfg, n).expect("valid");
    let last_at = trace.iter().last().unwrap().at as f64;
    let empirical = last_at / n as f64;
    // 100k exponential samples: the sample mean sits within ~1% of the
    // configured mean with overwhelming probability at a fixed seed.
    assert!(
        (empirical - mean).abs() / mean < 0.02,
        "empirical mean gap {empirical} vs configured {mean}"
    );
}

#[test]
fn zipfian_rank_frequency_tracks_theta() {
    let n_keys = 1024usize;
    let theta = 0.99;
    let cfg = base(
        ArrivalConfig::Poisson {
            mean_interarrival_ticks: 10.0,
        },
        PopularityConfig::Zipfian { n_keys, theta },
        ShapeConfig::Kv {
            reads_per_tx: 1,
            writes_per_tx: 0,
        },
    );
    let n = 200_000usize;
    let trace = synthesize(&cfg, n).expect("valid");
    let mut counts = vec![0u64; n_keys];
    for tx in trace.iter() {
        counts[tx.ops[0].key() as usize] += 1;
    }
    // Zipf's law: frequency(rank) ∝ rank^-θ. Check the head ratios
    // against theory with generous tolerance (ranks 0/1 and 0/9).
    let f0 = counts[0] as f64;
    let r01 = f0 / counts[1] as f64;
    let r09 = f0 / counts[9] as f64;
    let want01 = 2f64.powf(theta);
    let want09 = 10f64.powf(theta);
    assert!(
        (r01 - want01).abs() / want01 < 0.10,
        "rank0/rank1 ratio {r01} vs Zipf prediction {want01}"
    );
    assert!(
        (r09 - want09).abs() / want09 < 0.15,
        "rank0/rank9 ratio {r09} vs Zipf prediction {want09}"
    );
    // Skew sanity: the top 1% of keys draw vastly more than their
    // uniform share (theory for θ=0.99, n=1024: ≈35% of all draws).
    let mut sorted = counts.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head: u64 = sorted[..n_keys / 100].iter().sum();
    assert!(
        head * 4 > n as u64,
        "top 1% of keys drew {head}/{n} draws — not Zipfian"
    );
}

#[test]
fn kv_read_write_mix_is_within_tolerance() {
    let cfg = base(
        ArrivalConfig::Poisson {
            mean_interarrival_ticks: 25.0,
        },
        PopularityConfig::Zipfian {
            n_keys: 512,
            theta: 0.9,
        },
        ShapeConfig::Kv {
            reads_per_tx: 6,
            writes_per_tx: 2,
        },
    );
    let trace = synthesize(&cfg, 20_000).expect("valid");
    let mut reads = 0u64;
    let mut writes = 0u64;
    for tx in trace.iter() {
        for op in &tx.ops {
            if op.is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
        }
    }
    // KV shapes have an *exact* per-tx mix; the aggregate must be too.
    assert_eq!(reads, 6 * 20_000);
    assert_eq!(writes, 2 * 20_000);
}

#[test]
fn bursty_arrivals_have_heavier_rate_variance_than_poisson() {
    let window = 10_000u64;
    let rate_variance = |cfg: &TrafficConfig| {
        let trace = synthesize(cfg, 50_000).expect("valid");
        let mut counts: Vec<f64> = Vec::new();
        let mut cur = 0u64;
        let mut n = 0.0f64;
        for tx in trace.iter() {
            while tx.at >= cur + window {
                counts.push(n);
                n = 0.0;
                cur += window;
            }
            n += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64 / mean
    };
    // Matched long-run rates: Poisson at the bursty harmonic mean.
    let poisson = base(
        ArrivalConfig::Poisson {
            mean_interarrival_ticks: 2.0 / (1.0 / 80.0 + 1.0 / 12.0),
        },
        PopularityConfig::Uniform { n_keys: 16 },
        ShapeConfig::Kv {
            reads_per_tx: 1,
            writes_per_tx: 0,
        },
    );
    let bursty = base(
        ArrivalConfig::Bursty {
            calm_interarrival_ticks: 80.0,
            burst_interarrival_ticks: 12.0,
            mean_dwell_ticks: 25_000.0,
        },
        PopularityConfig::Uniform { n_keys: 16 },
        ShapeConfig::Kv {
            reads_per_tx: 1,
            writes_per_tx: 0,
        },
    );
    let vp = rate_variance(&poisson);
    let vb = rate_variance(&bursty);
    // Poisson windowed counts have index of dispersion ≈ 1; MMPP-2
    // with a 6.7× rate swing is far overdispersed.
    assert!(vp < 2.0, "poisson dispersion {vp} should be near 1");
    assert!(
        vb > 3.0 * vp,
        "bursty dispersion {vb} should dwarf poisson {vp}"
    );
}

#[test]
fn oltp_new_order_fraction_converges() {
    let cfg = scenarios::oltp_order_payment();
    let trace = synthesize(&cfg, 20_000).expect("valid");
    // Payments are exactly 3 ops; new-orders are ≥ 7.
    let new_orders = trace.iter().filter(|tx| tx.ops.len() > 3).count();
    let frac = new_orders as f64 / 20_000.0;
    assert!(
        (frac - 0.55).abs() < 0.02,
        "new-order fraction {frac} vs configured 0.55"
    );
}
