//! Adversarial decode tests for `tcc-traffic-trace/v1`.
//!
//! The loader's contract: *no* byte stream panics, and every kind of
//! damage — truncation anywhere, bit flips anywhere, forged headers
//! with recomputed checksums — yields the matching typed
//! [`TraceError`].

use tcc_traffic::trace::{fnv1a, TraceError, TraceWriter};
use tcc_traffic::{Trace, TrafficOp};

fn sample() -> Trace {
    let mut w = TraceWriter::new();
    for i in 0..40u64 {
        let ops = vec![
            TrafficOp::Read(i % 7),
            TrafficOp::Write((i * 13) % 64),
            TrafficOp::Read(i << 20),
        ];
        w.push(i * 3, &ops);
    }
    w.finish("mangled-suite", 9, 1 << 30)
}

/// Rebuilds a trace byte stream from parts, recomputing both checksums
/// so damage *past* the checksum layer is reachable.
fn forge(scenario: &str, seed: u64, n_keys: u64, n_records: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"TCCTRAF1");
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&(scenario.len() as u16).to_le_bytes());
    out.extend_from_slice(scenario.as_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&n_keys.to_le_bytes());
    out.extend_from_slice(&n_records.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let hc = fnv1a(&out);
    out.extend_from_slice(&hc.to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Extracts the payload bytes of a well-formed trace stream.
fn payload_of(bytes: &[u8], scenario_len: usize) -> &[u8] {
    &bytes[8 + 2 + 2 + scenario_len + 8 * 6..]
}

#[test]
fn truncation_at_every_byte_is_a_typed_error_never_a_panic() {
    let good = sample().to_bytes();
    for cut in 0..good.len() {
        match Trace::from_bytes(&good[..cut]) {
            Ok(_) => panic!("truncation to {cut}/{} bytes decoded", good.len()),
            Err(
                TraceError::Truncated { .. }
                | TraceError::BadMagic
                | TraceError::HeaderChecksum { .. }
                | TraceError::PayloadLength { .. },
            ) => {}
            Err(other) => panic!("cut {cut}: unexpected error class: {other}"),
        }
    }
    assert!(Trace::from_bytes(&good).is_ok());
}

#[test]
fn single_bit_flips_are_always_detected() {
    let t = sample();
    let good = t.to_bytes();
    // Flip one bit in every byte; the checksums (or earlier structural
    // checks) must catch every single one.
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 1 << (i % 8);
        assert!(
            Trace::from_bytes(&bad).is_err(),
            "bit flip at byte {i} went undetected"
        );
    }
}

#[test]
fn version_skew_is_reported_as_such() {
    let mut bad = sample().to_bytes();
    bad[8] = 2; // version u16 LE lives right after the magic
    bad[9] = 0;
    assert!(matches!(
        Trace::from_bytes(&bad).unwrap_err(),
        TraceError::UnsupportedVersion { found: 2 }
    ));
}

#[test]
fn non_utf8_scenario_name_is_rejected() {
    let good = sample().to_bytes();
    let payload = payload_of(&good, "mangled-suite".len());
    // A forged header whose name bytes are invalid UTF-8, checksums
    // intact so the parser reaches the name decode.
    let mut out = Vec::new();
    out.extend_from_slice(b"TCCTRAF1");
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes());
    out.extend_from_slice(&[0xff, 0xfe]);
    out.extend_from_slice(&9u64.to_le_bytes());
    out.extend_from_slice(&(1u64 << 30).to_le_bytes());
    out.extend_from_slice(&40u64.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let hc = fnv1a(&out);
    out.extend_from_slice(&hc.to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    assert!(matches!(
        Trace::from_bytes(&out).unwrap_err(),
        TraceError::ScenarioName(_)
    ));
}

#[test]
fn forged_record_count_is_caught_after_checksums_pass() {
    let good = sample().to_bytes();
    let payload = payload_of(&good, "mangled-suite".len()).to_vec();
    // 41 records claimed, 40 present — checksums all valid.
    let bad = forge("mangled-suite", 9, 1 << 30, 41, &payload);
    assert!(matches!(
        Trace::from_bytes(&bad).unwrap_err(),
        TraceError::RecordCount {
            header: 41,
            found: 40
        }
    ));
}

#[test]
fn forged_record_length_cannot_overflow_or_panic() {
    // A payload whose sole record claims a u64::MAX-byte body: the
    // length arithmetic must neither overflow nor allocate.
    let mut payload = vec![0xffu8; 9]; // LEB128 continuation bytes
    payload.push(0x01); // 10-byte varint = u64::MAX
    let bad = forge("len-forge", 0, 1, 1, &payload);
    assert!(matches!(
        Trace::from_bytes(&bad).unwrap_err(),
        TraceError::Truncated {
            what: "record body"
        }
    ));

    // An 11-byte varint overflows u64 outright.
    let mut payload = vec![0xff; 10];
    payload.push(0x01);
    let bad = forge("varint-forge", 0, 1, 1, &payload);
    assert!(matches!(
        Trace::from_bytes(&bad).unwrap_err(),
        TraceError::VarintOverflow
    ));
}

#[test]
fn io_errors_surface_as_typed_errors() {
    let err = Trace::read_file(std::path::Path::new(
        "/nonexistent/definitely/not/a/trace.bin",
    ))
    .unwrap_err();
    assert!(matches!(err, TraceError::Io(_)));
    // And a real file with garbage contents is BadMagic, not a panic.
    let dir = std::env::temp_dir().join("tcc-traffic-mangled-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.trace");
    std::fs::write(&path, b"not a trace at all").unwrap();
    assert!(matches!(
        Trace::read_file(&path).unwrap_err(),
        TraceError::BadMagic
    ));
    std::fs::remove_file(&path).ok();
}
