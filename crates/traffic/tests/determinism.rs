//! The determinism suite: the contract that `(config, seed)` fully
//! determines the trace bytes, and that replay fingerprints are
//! invariant to sharding — across `--jobs`-style worker counts and
//! across the simulator's parallel-engine worker counts.

use tcc_core::{ParallelConfig, Simulator, SystemConfig};
use tcc_trace::TraceConfig;
use tcc_traffic::{replay, scenarios, synthesize, Trace};

#[test]
fn synthesis_is_byte_identical_across_runs() {
    for cfg in scenarios::all() {
        let a = synthesize(&cfg, 2_000).expect("valid");
        let b = synthesize(&cfg, 2_000).expect("valid");
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "scenario {} is not deterministic",
            cfg.scenario
        );
    }
}

#[test]
fn serialization_roundtrips_for_every_preset() {
    for cfg in scenarios::all() {
        let t = synthesize(&cfg, 1_000).expect("valid");
        let back = Trace::from_bytes(&t.to_bytes()).expect("roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.fingerprint(), t.fingerprint());
    }
}

#[test]
fn replay_fingerprint_is_worker_count_invariant() {
    let cfg = scenarios::bursty_hot_migration();
    let trace = synthesize(&cfg, 5_000).expect("valid");
    let want = trace.fingerprint();
    for workers in [1usize, 2, 3, 8] {
        assert_eq!(
            replay::replay_fingerprint(&trace, workers),
            want,
            "fingerprint diverged at {workers} workers"
        );
    }
}

#[test]
fn seed_changes_the_trace() {
    let a = scenarios::zipfian_steady();
    let mut b = a.clone();
    b.seed ^= 1;
    let ta = synthesize(&a, 1_000).expect("valid");
    let tb = synthesize(&b, 1_000).expect("valid");
    assert_ne!(ta.fingerprint(), tb.fingerprint());
}

/// Lowered simulator replays commit the same transaction count and
/// produce the same cycle count whether the engine runs classic
/// (single-threaded) or parallel with any worker count — the existing
/// engine-differential guarantee, now exercised through traffic
/// lowering.
#[test]
fn sim_replay_is_engine_worker_invariant() {
    let cfg = scenarios::zipfian_steady();
    let trace = synthesize(&cfg, 400).expect("valid");
    let run = |workers: Option<usize>| {
        let programs = replay::sim_programs(&trace, 4, 2, 400);
        let mut sys = SystemConfig::with_procs(4);
        sys.trace = TraceConfig::metrics_only();
        if let Some(w) = workers {
            sys.parallel = Some(ParallelConfig::with_workers(w));
        }
        Simulator::builder(sys)
            .programs(programs)
            .build()
            .expect("valid config")
            .run()
    };
    let classic = run(None);
    assert_eq!(classic.commits, 400);
    for w in [1usize, 2, 4] {
        let par = run(Some(w));
        assert_eq!(
            (par.total_cycles, par.commits),
            (classic.total_cycles, classic.commits),
            "parallel engine at {w} workers diverged from classic"
        );
    }
}
