//! Golden-trace gate: a small checked-in trace whose bytes, checksum,
//! and replay fingerprint are pinned. CI replays it on every push; any
//! drift in the format, the samplers, or the stream-derivation rule
//! trips this suite. Run the `#[ignore]`d regeneration test after an
//! *intentional* format change and commit the refreshed files.

use std::path::PathBuf;

use tcc_traffic::{replay, scenarios, synthesize, Trace};

/// Records in the golden trace — small enough to keep the repo light,
/// large enough to exercise every record-level code path.
const GOLDEN_RECORDS: usize = 2_000;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn golden_trace() -> tcc_traffic::TrafficConfig {
    scenarios::bursty_hot_migration()
}

/// Parses the committed expectation file (`key = value` lines).
fn expectations() -> std::collections::HashMap<String, String> {
    let text = std::fs::read_to_string(golden_dir().join("bursty-hot-migration.expect"))
        .expect("golden expectation file is committed");
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (k, v) = l.split_once('=').expect("key = value line");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect()
}

#[test]
fn golden_trace_bytes_are_pinned() {
    let bytes = std::fs::read(golden_dir().join("bursty-hot-migration.trace"))
        .expect("golden trace file is committed");
    let want = synthesize(&golden_trace(), GOLDEN_RECORDS).expect("valid preset");
    assert_eq!(
        bytes,
        want.to_bytes(),
        "synthesis no longer reproduces the committed golden trace — \
         if the format change is intentional, rerun the regenerate test"
    );
}

#[test]
fn golden_trace_verifies_and_matches_expectations() {
    let bytes = std::fs::read(golden_dir().join("bursty-hot-migration.trace"))
        .expect("golden trace file is committed");
    let trace = Trace::from_bytes(&bytes).expect("checksum + structural verification");
    let expect = expectations();
    assert_eq!(trace.scenario(), expect["scenario"]);
    assert_eq!(trace.n_records().to_string(), expect["n_records"]);
    assert_eq!(format!("{:016x}", trace.checksum()), expect["checksum"]);
    assert_eq!(trace.fingerprint(), expect["fingerprint"]);
    // The sharded replay agrees with the sequential fingerprint at
    // several worker counts — the exact gate CI's traffic-smoke holds.
    for workers in [1usize, 2, 4] {
        assert_eq!(
            replay::replay_fingerprint(&trace, workers),
            expect["fingerprint"]
        );
    }
}

/// Regenerates the golden files. Ignored in normal runs; invoke with
/// `cargo test -p tcc-traffic --test golden -- --ignored` after an
/// intentional format change, then commit the diff.
#[test]
#[ignore = "regenerates committed golden files"]
fn regenerate_golden_files() {
    let trace = synthesize(&golden_trace(), GOLDEN_RECORDS).expect("valid preset");
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("golden dir");
    std::fs::write(dir.join("bursty-hot-migration.trace"), trace.to_bytes()).expect("write trace");
    let expect = format!(
        "# Pinned expectations for the golden traffic trace.\n\
         # Regenerate with: cargo test -p tcc-traffic --test golden -- --ignored\n\
         scenario = {}\n\
         n_records = {}\n\
         checksum = {:016x}\n\
         fingerprint = {}\n",
        trace.scenario(),
        trace.n_records(),
        trace.checksum(),
        trace.fingerprint(),
    );
    std::fs::write(dir.join("bursty-hot-migration.expect"), expect).expect("write expectations");
}
