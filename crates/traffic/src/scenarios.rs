//! The named scenario presets the traffic bench and CI sweep.
//!
//! Four scenarios cover the contention regimes the north star cares
//! about; all are open-loop and deterministic from `(scenario, seed)`.

use crate::config::{ArrivalConfig, PopularityConfig, ShapeConfig, TrafficConfig};

/// Default scenario seed (distinct from the figure-harness seed so
/// traffic artifacts are recognizably their own stream).
pub const TRAFFIC_SEED: u64 = 0x7ca_ff1c_5eed;

/// Steady Poisson arrivals over a static Zipfian hot set — the
/// baseline skewed-KV regime (YCSB-style, θ = 0.9).
#[must_use]
pub fn zipfian_steady() -> TrafficConfig {
    TrafficConfig {
        scenario: "zipfian-steady".to_string(),
        seed: TRAFFIC_SEED,
        arrival: ArrivalConfig::Poisson {
            mean_interarrival_ticks: 50.0,
        },
        popularity: PopularityConfig::Zipfian {
            n_keys: 4096,
            theta: 0.9,
        },
        shape: ShapeConfig::Kv {
            reads_per_tx: 4,
            writes_per_tx: 2,
        },
    }
}

/// Bursty (MMPP-2) arrivals with a *migrating* hot set: load spikes
/// land while the hot keys walk, the adversarial combination for any
/// placement or caching decision.
#[must_use]
pub fn bursty_hot_migration() -> TrafficConfig {
    TrafficConfig {
        scenario: "bursty-hot-migration".to_string(),
        seed: TRAFFIC_SEED,
        arrival: ArrivalConfig::Bursty {
            calm_interarrival_ticks: 80.0,
            burst_interarrival_ticks: 12.0,
            mean_dwell_ticks: 25_000.0,
        },
        popularity: PopularityConfig::HotMigration {
            n_keys: 8192,
            theta: 1.1,
            period_ticks: 50_000,
            stride: 64,
        },
        shape: ShapeConfig::Kv {
            reads_per_tx: 6,
            writes_per_tx: 2,
        },
    }
}

/// Graph-traversal transactions: neighbor expansion from Zipfian
/// start nodes with hot supernodes (the sombra graph-DB regime) —
/// long read sets, write contention on visit counters.
#[must_use]
pub fn graph_traversal() -> TrafficConfig {
    TrafficConfig {
        scenario: "graph-traversal".to_string(),
        seed: TRAFFIC_SEED,
        arrival: ArrivalConfig::Poisson {
            mean_interarrival_ticks: 60.0,
        },
        popularity: PopularityConfig::Zipfian {
            n_keys: 16_384,
            theta: 0.99,
        },
        shape: ShapeConfig::Graph {
            fanout: 4,
            depth: 2,
            supernodes: 16,
            supernode_bias: 0.25,
        },
    }
}

/// TPC-C-lite order/payment mix under a diurnal envelope: short
/// write-heavy transactions with district counters as hot spots and
/// Zipfian item demand.
#[must_use]
pub fn oltp_order_payment() -> TrafficConfig {
    TrafficConfig {
        scenario: "oltp-order-payment".to_string(),
        seed: TRAFFIC_SEED,
        arrival: ArrivalConfig::Diurnal {
            mean_interarrival_ticks: 45.0,
            period_ticks: 250_000,
            amplitude: 0.6,
        },
        popularity: PopularityConfig::Zipfian {
            n_keys: 8192,
            theta: 0.8,
        },
        shape: ShapeConfig::Oltp {
            warehouses: 4,
            items: 8192,
            new_order_frac: 0.55,
        },
    }
}

/// All preset scenarios, in sweep order.
#[must_use]
pub fn all() -> Vec<TrafficConfig> {
    vec![
        zipfian_steady(),
        bursty_hot_migration(),
        graph_traversal(),
        oltp_order_payment(),
    ]
}

/// Looks a preset up by its scenario name.
#[must_use]
pub fn by_name(name: &str) -> Option<TrafficConfig> {
    all().into_iter().find(|c| c.scenario == name)
}
