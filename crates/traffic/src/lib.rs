//! `tcc-traffic`: production-traffic generation, compact binary
//! traces, and deterministic replay for the TCC stack.
//!
//! The paper's workloads are closed-loop microbenchmarks: each
//! processor issues its next transaction the instant the previous one
//! commits, so offered load self-throttles to whatever the system
//! sustains. Production traffic is the opposite — **open-loop**: users
//! arrive on their own schedule (bursts, diurnal swings), fight over a
//! skewed and *moving* hot set, and when the system saturates, the
//! overload shows up as latency, not as a politely reduced request
//! rate. This crate synthesizes that kind of traffic deterministically
//! and replays it on both execution backends:
//!
//! * [`config`] — scenario descriptions ([`TrafficConfig`]) with
//!   field+hint validation;
//! * [`arrival`] — seeded open-loop arrival processes (Poisson,
//!   bursty/MMPP-2, diurnal envelope);
//! * [`popularity`] — key-popularity models (uniform, Zipfian(θ),
//!   hot-key migration);
//! * [`shapes`] — application shapes: KV mixes, graph traversal with
//!   hot supernodes, and TPC-C-lite order/payment;
//! * [`trace`] — the `tcc-traffic-trace/v1` compact binary format:
//!   length-prefixed LEB128 records, delta-encoded timestamps,
//!   checksummed header, shard-invariant replay fingerprint;
//! * [`replay`] — lowering to `tcc-core` simulator programs and
//!   `tcc-stm` real-thread transactions, plus the sharded
//!   fingerprint replay;
//! * [`scenarios`] — the four named presets the bench harness and CI
//!   sweep.
//!
//! The contract throughout: the same `(config, seed)` synthesizes the
//! byte-identical trace, and replaying a trace yields the identical
//! fingerprint at any worker count.
//!
//! ```
//! use tcc_traffic::{scenarios, synthesize, replay};
//!
//! let cfg = scenarios::zipfian_steady();
//! let trace = synthesize(&cfg, 1_000).unwrap();
//! assert_eq!(trace.n_records(), 1_000);
//! // Sharded replay folds to the trace's own fingerprint.
//! assert_eq!(replay::replay_fingerprint(&trace, 4), trace.fingerprint());
//! ```

pub mod arrival;
pub mod config;
pub mod popularity;
pub mod replay;
pub mod scenarios;
pub mod shapes;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use config::{ArrivalConfig, PopularityConfig, ShapeConfig, TrafficConfig};
pub use popularity::Popularity;
pub use replay::{replay_fingerprint, run_sim_replay, run_stm_replay, SimReplay, StmReplay};
pub use shapes::{Shape, TrafficOp, TrafficTx};
pub use trace::{Trace, TraceError, TraceWriter, TRACE_SCHEMA};

use tcc_core::ConfigError;
use tcc_workloads::sampling::stream_rng;

/// Stream index of the arrival-timing RNG.
const STREAM_ARRIVAL: u64 = 0;
/// Stream index of the op-generation RNG (popularity draws + shape
/// choices).
const STREAM_OPS: u64 = 1;

/// Synthesizes `n_txs` transactions of the scenario into a sealed,
/// checksummed [`Trace`].
///
/// Arrival timing and op generation draw from two independent RNG
/// streams derived from the scenario seed, so changing a shape
/// parameter never perturbs the arrival schedule (and vice versa).
/// Synthesis is single-pass and allocation-light: ~10⁶ transactions
/// synthesize in well under a second.
///
/// # Errors
///
/// Returns the [`ConfigError`] from [`TrafficConfig::validate`] if the
/// scenario is degenerate.
pub fn synthesize(cfg: &TrafficConfig, n_txs: usize) -> Result<Trace, ConfigError> {
    cfg.validate()?;
    let mut arrival_rng = stream_rng(cfg.seed, STREAM_ARRIVAL);
    let mut ops_rng = stream_rng(cfg.seed, STREAM_OPS);
    let mut arrivals = ArrivalProcess::new(cfg.arrival.clone());
    let pop = Popularity::new(&cfg.popularity);
    let shape = Shape::new(&cfg.shape, cfg.popularity.n_keys());
    let mut writer = TraceWriter::new();
    let mut ops = Vec::new();
    for _ in 0..n_txs {
        let at = arrivals.next_at(&mut arrival_rng);
        shape.generate(at, &pop, &mut ops_rng, &mut ops);
        writer.push(at, &ops);
    }
    Ok(writer.finish(&cfg.scenario, cfg.seed, cfg.key_space() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_rejects_invalid_configs() {
        let mut cfg = scenarios::zipfian_steady();
        cfg.popularity = PopularityConfig::Zipfian {
            n_keys: 0,
            theta: 0.9,
        };
        let e = synthesize(&cfg, 10).unwrap_err();
        assert_eq!(e.field(), "popularity.n_keys");
    }

    #[test]
    fn every_preset_synthesizes() {
        for cfg in scenarios::all() {
            let trace = synthesize(&cfg, 500).expect("preset is valid");
            assert_eq!(trace.n_records(), 500);
            assert_eq!(trace.scenario(), cfg.scenario);
            assert_eq!(trace.n_keys(), cfg.key_space() as u64);
            // Every op addresses the declared key space.
            for tx in trace.iter() {
                for op in &tx.ops {
                    assert!(op.key() < trace.n_keys());
                }
            }
        }
    }

    #[test]
    fn shape_changes_do_not_perturb_arrival_schedule() {
        let a = scenarios::zipfian_steady();
        let mut b = a.clone();
        b.shape = ShapeConfig::Kv {
            reads_per_tx: 1,
            writes_per_tx: 7,
        };
        let ta = synthesize(&a, 300).unwrap();
        let tb = synthesize(&b, 300).unwrap();
        let at_a: Vec<u64> = ta.iter().map(|t| t.at).collect();
        let at_b: Vec<u64> = tb.iter().map(|t| t.at).collect();
        assert_eq!(at_a, at_b, "independent streams: timing is shape-invariant");
    }
}
