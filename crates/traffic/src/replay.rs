//! Deterministic trace replay: sharding, and lowering to both
//! execution backends.
//!
//! Three consumers read the same sealed [`Trace`]:
//!
//! * [`replay_fingerprint`] — the pure replay: every record's
//!   position-dependent digest, folded commutatively, sharded
//!   round-robin across any number of workers. Byte-identical output
//!   at 1 and N workers is the gate CI holds (`traffic-smoke`).
//! * [`sim_programs`] / [`run_sim_replay`] — lowering to
//!   [`tcc_core`] `ThreadProgram`s: record *i* dispatches to processor
//!   `i % n_procs` (a front-end load balancer), inter-arrival gaps
//!   become leading `Compute` pacing so the open-loop schedule
//!   survives the translation, keys map to words of the shared region,
//!   and writes become read-modify-writes.
//! * [`run_stm_replay`] — replay on the real-thread STM
//!   ([`tcc_stm`]): each thread takes its round-robin shard, *waits*
//!   for each transaction's scheduled arrival (open loop: latency
//!   absorbs overload, arrivals never throttle), and measures
//!   scheduled-arrival→commit latency, which includes queueing delay.

use std::time::{Duration, Instant};

use tcc_core::{
    ConfigError, SimResult, Simulator, SystemConfig, ThreadProgram, Transaction, TxOp, WorkItem,
};
use tcc_trace::{Histogram, TraceConfig};
use tcc_types::Addr;

use crate::shapes::TrafficOp;
use crate::trace::Trace;

/// First line of the shared region keys map into (below the private
/// region at `1 << 20`; matches the `tcc-workloads` address layout).
const SHARED_BASE_LINE: u64 = 1 << 10;
/// Line geometry of the default Table 2 cache (32-byte lines, 4-byte
/// words).
const WORDS_PER_LINE: u64 = 8;
const LINE_BYTES: u64 = 32;

/// Folds one shard's records (`index % workers == shard`) into the
/// commutative `(sum, xor)` digest pair.
fn shard_digest(trace: &Trace, shard: u64, workers: u64) -> (u64, u64) {
    trace
        .raw_iter()
        .filter_map(|r| {
            let (i, body) = r.expect("verified trace decodes");
            (i % workers == shard).then(|| Trace::record_digest(i, body))
        })
        .fold((0u64, 0u64), |(s, x), d| (s.wrapping_add(d), x ^ d))
}

/// Replays the trace across `workers` OS threads (round-robin shards)
/// and returns the fold of every record digest. The fold is
/// commutative, so the result is byte-identical for every worker
/// count — the determinism contract `--jobs` sweeps and the parallel
/// engine's shard counts rely on.
#[must_use]
pub fn replay_fingerprint(trace: &Trace, workers: usize) -> String {
    let workers = workers.max(1) as u64;
    let (sum, xor) = if workers == 1 {
        shard_digest(trace, 0, 1)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || shard_digest(trace, w, workers)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .fold((0u64, 0u64), |(s, x), (ps, px)| {
                    (s.wrapping_add(ps), x ^ px)
                })
        })
    };
    format!("{sum:016x}{xor:016x}")
}

/// Maps a logical key to a word address in the shared region. Eight
/// keys share a cache line; the protocol's word-granularity conflict
/// detection keeps them conflict-free, and line homes (`line %
/// n_procs`) spread the directory load.
#[must_use]
pub fn key_addr(key: u64) -> Addr {
    let line = SHARED_BASE_LINE + key / WORDS_PER_LINE;
    Addr(line * LINE_BYTES + (key % WORDS_PER_LINE) * 4)
}

/// Lowers the first `limit` records to one `ThreadProgram` per
/// processor. Record `i` goes to processor `i % n_procs`; the gap to
/// the processor's previous arrival becomes a leading `Compute`
/// (clamped to `u32::MAX` cycles), so relative pacing — bursts, lulls,
/// the diurnal envelope — survives lowering. Writes lower to
/// `Load`+`Store` (read-modify-write).
#[must_use]
pub fn sim_programs(
    trace: &Trace,
    n_procs: usize,
    cycles_per_tick: u64,
    limit: usize,
) -> Vec<ThreadProgram> {
    assert!(n_procs > 0, "need at least one processor");
    let mut items: Vec<Vec<WorkItem>> = vec![Vec::new(); n_procs];
    let mut last_at = vec![0u64; n_procs];
    for (i, tx) in trace.iter().take(limit).enumerate() {
        let p = i % n_procs;
        let gap_cycles = (tx.at - last_at[p]).saturating_mul(cycles_per_tick);
        last_at[p] = tx.at;
        let mut ops = Vec::with_capacity(tx.ops.len() * 2 + 1);
        if gap_cycles > 0 {
            ops.push(TxOp::Compute(u32::try_from(gap_cycles).unwrap_or(u32::MAX)));
        }
        for op in &tx.ops {
            let addr = key_addr(op.key());
            match op {
                TrafficOp::Read(_) => ops.push(TxOp::Load(addr)),
                TrafficOp::Write(_) => {
                    ops.push(TxOp::Load(addr));
                    ops.push(TxOp::Store(addr));
                }
            }
        }
        items[p].push(WorkItem::Tx(Transaction::new(ops)));
    }
    items.into_iter().map(ThreadProgram::new).collect()
}

/// One simulator-backend replay measurement.
#[derive(Debug)]
pub struct SimReplay {
    /// Offered load: arrivals per million cycles (the trace's arrival
    /// span scaled by `cycles_per_tick`).
    pub offered_tx_per_mcycle: f64,
    /// Sustained completion rate: commits per million cycles of
    /// makespan.
    pub sustained_tx_per_mcycle: f64,
    /// Commit-phase latency histogram (cycles, TID acquire → commit
    /// multicast), from the `commit.latency` tcc-trace metric.
    pub commit_latency: Histogram,
    pub result: SimResult,
}

/// Replays the first `limit` records on the cycle-accurate simulator
/// with `n_procs` processors.
///
/// # Errors
///
/// Propagates [`ConfigError`] from the simulator builder.
pub fn run_sim_replay(
    trace: &Trace,
    n_procs: usize,
    cycles_per_tick: u64,
    limit: usize,
) -> Result<SimReplay, ConfigError> {
    let programs = sim_programs(trace, n_procs, cycles_per_tick, limit);
    let n = programs
        .iter()
        .map(ThreadProgram::transactions)
        .sum::<usize>() as u64;
    let span_ticks = trace.iter().take(limit).last().map_or(0, |tx| tx.at).max(1);
    let mut cfg = SystemConfig::with_procs(n_procs);
    cfg.trace = TraceConfig::metrics_only();
    let result = Simulator::builder(cfg).programs(programs).build()?.run();
    let commit_latency = result
        .trace
        .as_ref()
        .and_then(|t| t.metrics.histogram("commit.latency"))
        .cloned()
        .unwrap_or_default();
    let span_cycles = span_ticks.saturating_mul(cycles_per_tick).max(1);
    Ok(SimReplay {
        offered_tx_per_mcycle: n as f64 * 1e6 / span_cycles as f64,
        sustained_tx_per_mcycle: result.commits as f64 * 1e6 / result.total_cycles.max(1) as f64,
        commit_latency,
        result,
    })
}

/// One real-thread STM replay measurement.
#[derive(Debug)]
pub struct StmReplay {
    /// Offered load implied by the trace's arrival span at the chosen
    /// time scale, in transactions per second.
    pub offered_tx_per_s: f64,
    /// Completed transactions per wall-clock second.
    pub sustained_tx_per_s: f64,
    /// Transactions executed.
    pub completed: u64,
    /// Wall-clock of the whole replay.
    pub wall_s: f64,
    /// Scheduled-arrival→commit latency in nanoseconds (open-loop:
    /// includes time spent queued behind a saturated system).
    pub latency_ns: Histogram,
}

/// Replays the first `limit` records on the real-thread STM with
/// `threads` OS threads, `ns_per_tick` nanoseconds per trace tick.
///
/// Each thread takes the round-robin shard `i % threads`, spins until
/// each transaction's scheduled arrival, then runs it via
/// [`tcc_stm::Stm::atomically`]: reads accumulate into a running sum,
/// writes store it (the same arithmetic as the STM bench, so conflicts
/// are real read-modify-write conflicts).
#[must_use]
pub fn run_stm_replay(trace: &Trace, threads: usize, ns_per_tick: u64, limit: usize) -> StmReplay {
    let threads = threads.max(1);
    let txs: Vec<crate::shapes::TrafficTx> = trace.iter().take(limit).collect();
    let n_keys = trace.n_keys() as usize;
    let stm = tcc_stm::Stm::new();
    let cells: Vec<tcc_stm::TVar<u64>> = (0..n_keys).map(|_| stm.new_tvar(0u64)).collect();
    let span_ticks = txs.last().map_or(0, |tx| tx.at).max(1);
    let start = Instant::now();
    let shards: Vec<(Histogram, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let stm = stm.clone();
                let txs = &txs;
                let cells = &cells;
                scope.spawn(move || {
                    let mut h = Histogram::default();
                    let mut done = 0u64;
                    for tx in txs.iter().skip(w).step_by(threads) {
                        let due = Duration::from_nanos(tx.at.saturating_mul(ns_per_tick));
                        // Open loop: wait for the scheduled arrival
                        // (sleep coarse, spin fine); if we are behind,
                        // start immediately — the lateness shows up as
                        // latency, never as reduced offered load.
                        loop {
                            let elapsed = start.elapsed();
                            if elapsed >= due {
                                break;
                            }
                            let wait = due - elapsed;
                            if wait > Duration::from_micros(200) {
                                std::thread::sleep(wait - Duration::from_micros(100));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        stm.atomically(|t| {
                            let mut sum = 0u64;
                            for op in &tx.ops {
                                match *op {
                                    TrafficOp::Read(k) => {
                                        sum = sum.wrapping_add(t.read(&cells[k as usize])?);
                                    }
                                    TrafficOp::Write(k) => {
                                        sum = sum.wrapping_add(t.read(&cells[k as usize])?);
                                        t.write(&cells[k as usize], sum)?;
                                    }
                                }
                            }
                            Ok(())
                        });
                        let latency = start.elapsed().saturating_sub(due);
                        h.record(latency.as_nanos() as u64);
                        done += 1;
                    }
                    (h, done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stm replay thread panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut latency = Histogram::default();
    let mut completed = 0u64;
    for (h, n) in &shards {
        latency.merge(h);
        completed += n;
    }
    StmReplay {
        offered_tx_per_s: txs.len() as f64 * 1e9 / (span_ticks * ns_per_tick).max(1) as f64,
        sustained_tx_per_s: completed as f64 / wall_s.max(1e-9),
        completed,
        wall_s,
        latency_ns: latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::synthesize;

    #[test]
    fn key_addr_spreads_homes_and_separates_words() {
        let a = key_addr(0);
        let b = key_addr(1);
        let c = key_addr(8);
        assert_ne!(a, b, "adjacent keys get distinct words");
        assert_eq!(a.0 / LINE_BYTES, b.0 / LINE_BYTES, "…of the same line");
        assert_ne!(
            a.0 / LINE_BYTES,
            c.0 / LINE_BYTES,
            "key 8 starts a new line"
        );
        assert!(a.0 / LINE_BYTES >= SHARED_BASE_LINE);
    }

    #[test]
    fn sim_programs_preserve_work_and_pace() {
        let trace = synthesize(&scenarios::zipfian_steady(), 200).expect("synth");
        let programs = sim_programs(&trace, 4, 2, 200);
        assert_eq!(programs.len(), 4);
        let total: usize = programs.iter().map(ThreadProgram::transactions).sum();
        assert_eq!(total, 200, "every record lowers to exactly one tx");
        // Pacing gaps exist: some transaction must lead with Compute.
        let has_pacing = programs.iter().any(|p| {
            p.items.iter().any(
                |i| matches!(i, WorkItem::Tx(t) if matches!(t.ops.first(), Some(TxOp::Compute(_)))),
            )
        });
        assert!(has_pacing, "open-loop pacing vanished in lowering");
    }

    #[test]
    fn sim_replay_commits_every_arrival() {
        let trace = synthesize(&scenarios::zipfian_steady(), 300).expect("synth");
        let r = run_sim_replay(&trace, 4, 2, 300).expect("valid config");
        assert_eq!(r.result.commits, 300);
        assert!(r.commit_latency.count() > 0, "commit latency was traced");
        assert!(r.offered_tx_per_mcycle > 0.0);
        assert!(r.sustained_tx_per_mcycle > 0.0);
    }

    #[test]
    fn stm_replay_completes_the_shard_union() {
        let trace = synthesize(&scenarios::zipfian_steady(), 400).expect("synth");
        // Fast time scale: the replay finishes quickly regardless of
        // host speed.
        let r = run_stm_replay(&trace, 4, 1, 400);
        assert_eq!(r.completed, 400);
        assert_eq!(r.latency_ns.count(), 400);
        assert!(r.offered_tx_per_s > 0.0);
    }
}
