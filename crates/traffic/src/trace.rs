//! The compact versioned binary trace format, `tcc-traffic-trace/v1`.
//!
//! A million-user day is synthesized once, checked by checksum, and
//! replayed deterministically ever after — so the format optimizes for
//! small files, cheap sequential decode, and tamper evidence, and is
//! hand-rolled like the rest of the hermetic workspace:
//!
//! ```text
//! header  magic "TCCTRAF1" · version u16 · scenario (len u16 + utf8)
//!         seed u64 · n_keys u64 · n_records u64 · payload_len u64
//!         header_checksum u64 (FNV-1a over all preceding bytes)
//!         payload_checksum u64 (FNV-1a over the payload)
//! payload n_records × record
//! record  len varint · body
//! body    dt varint (ticks since previous record) · n_ops varint ·
//!         n_ops × op varint (key << 1 | is_write)
//! ```
//!
//! All integers little-endian; varints are LEB128. Timestamps are
//! delta-encoded against the *global* arrival order, which both
//! compresses well (arrivals are dense) and makes any reordering of
//! the stream detectable through the checksum.
//!
//! [`Trace::fingerprint`] digests every record *position-dependently*
//! but combines the per-record digests *commutatively*, so shards
//! processed by any number of workers in any order fold to the same
//! value — the property the `--jobs` and parallel-engine sharding
//! guarantees lean on (see `crate::replay`).

use crate::shapes::{TrafficOp, TrafficTx};

/// Schema identifier recorded in run reports and golden files.
pub const TRACE_SCHEMA: &str = "tcc-traffic-trace/v1";

const MAGIC: &[u8; 8] = b"TCCTRAF1";
const VERSION: u16 = 1;

/// Why a byte stream is not a valid `tcc-traffic-trace/v1`.
///
/// Every way a trace file can be damaged — truncation, bit flips,
/// version skew, forged lengths — maps to a typed variant, so loaders
/// can distinguish "wrong file" from "corrupted file" and report the
/// exact corruption instead of panicking.
#[derive(Debug)]
pub enum TraceError {
    /// Reading the file itself failed.
    Io(std::io::Error),
    /// The magic bytes are not `TCCTRAF1`: not a trace at all.
    BadMagic,
    /// A trace, but from an unknown format revision.
    UnsupportedVersion { found: u16 },
    /// The stream ends mid-field; `what` names the field.
    Truncated { what: &'static str },
    /// The scenario-name field is not UTF-8.
    ScenarioName(std::str::Utf8Error),
    /// Stored vs computed header checksum disagree (header bit flip).
    HeaderChecksum { computed: u64, stored: u64 },
    /// Stored vs computed payload checksum disagree (payload bit flip).
    PayloadChecksum { computed: u64, stored: u64 },
    /// The header's payload length does not match the bytes present.
    PayloadLength { header: u64, actual: u64 },
    /// The header's record count does not match the decodable records.
    RecordCount { header: u64, found: u64 },
    /// A LEB128 varint ran past 64 bits.
    VarintOverflow,
    /// A record body decoded cleanly but left bytes over.
    TrailingBytes,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io: {e}"),
            TraceError::BadMagic => write!(f, "bad magic: not a tcc-traffic-trace"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found} (want {VERSION})")
            }
            TraceError::Truncated { what } => write!(f, "truncated {what}"),
            TraceError::ScenarioName(e) => write!(f, "scenario name is not utf-8: {e}"),
            TraceError::HeaderChecksum { computed, stored } => write!(
                f,
                "header checksum mismatch: computed {computed:016x}, stored {stored:016x}"
            ),
            TraceError::PayloadChecksum { computed, stored } => write!(
                f,
                "payload checksum mismatch: computed {computed:016x}, stored {stored:016x}"
            ),
            TraceError::PayloadLength { header, actual } => write!(
                f,
                "payload length mismatch: header says {header}, file has {actual}"
            ),
            TraceError::RecordCount { header, found } => write!(
                f,
                "record count mismatch: header says {header}, payload holds {found}"
            ),
            TraceError::VarintOverflow => write!(f, "varint overflows u64"),
            TraceError::TrailingBytes => write!(f, "trailing bytes in record body"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::ScenarioName(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// FNV-1a over a byte slice, the workspace's standard digest.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer, used to de-correlate per-record digests
/// before the commutative fold.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or(TraceError::Truncated { what: "varint" })?;
        *pos += 1;
        if shift >= 64 {
            return Err(TraceError::VarintOverflow);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Accumulates records into a payload; [`TraceWriter::finish`] seals
/// the header.
#[derive(Debug, Default)]
pub struct TraceWriter {
    payload: Vec<u8>,
    n_records: u64,
    last_at: u64,
    body: Vec<u8>,
}

impl TraceWriter {
    #[must_use]
    pub fn new() -> TraceWriter {
        TraceWriter::default()
    }

    /// Appends one transaction. Arrival ticks must be non-decreasing
    /// in call order (the synthesis stream is).
    ///
    /// # Panics
    ///
    /// Panics if `at` moves backwards.
    pub fn push(&mut self, at: u64, ops: &[TrafficOp]) {
        assert!(at >= self.last_at, "arrivals must be time-ordered");
        self.body.clear();
        push_varint(&mut self.body, at - self.last_at);
        push_varint(&mut self.body, ops.len() as u64);
        for op in ops {
            push_varint(&mut self.body, op.key() << 1 | u64::from(op.is_write()));
        }
        push_varint(&mut self.payload, self.body.len() as u64);
        self.payload.extend_from_slice(&self.body);
        self.last_at = at;
        self.n_records += 1;
    }

    /// Seals the trace: computes checksums and assembles the header.
    #[must_use]
    pub fn finish(self, scenario: &str, seed: u64, n_keys: u64) -> Trace {
        Trace {
            scenario: scenario.to_string(),
            seed,
            n_keys,
            n_records: self.n_records,
            payload_checksum: fnv1a(&self.payload),
            payload: self.payload,
        }
    }
}

/// A sealed, checksummed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    scenario: String,
    seed: u64,
    n_keys: u64,
    n_records: u64,
    payload_checksum: u64,
    payload: Vec<u8>,
}

impl Trace {
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Logical key-space size the records address.
    #[must_use]
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }

    #[must_use]
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// FNV-1a checksum of the payload, as stored in the header.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.payload_checksum
    }

    /// Encoded size in bytes (header + payload).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        // magic + version + name len/bytes + 4×u64 + 2 checksums.
        8 + 2 + 2 + self.scenario.len() + 8 * 6 + self.payload.len()
    }

    /// Serializes header + payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.scenario.len() + self.payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let name = self.scenario.as_bytes();
        out.extend_from_slice(
            &(u16::try_from(name.len()).expect("scenario name fits u16")).to_le_bytes(),
        );
        out.extend_from_slice(name);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.n_keys.to_le_bytes());
        out.extend_from_slice(&self.n_records.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        let header_checksum = fnv1a(&out);
        out.extend_from_slice(&header_checksum.to_le_bytes());
        out.extend_from_slice(&self.payload_checksum.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and *verifies* a trace: magic, version, both checksums,
    /// and the record count must all hold before any record is
    /// decodable.
    ///
    /// # Errors
    ///
    /// Returns the first corruption found as a typed [`TraceError`];
    /// no input, however mangled, panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceError> {
            let s = bytes
                .get(
                    *pos..pos
                        .checked_add(n)
                        .ok_or(TraceError::Truncated { what: "header" })?,
                )
                .ok_or(TraceError::Truncated { what: "header" })?;
            *pos += n;
            Ok(s)
        };
        let read_u64 = |pos: &mut usize| -> Result<u64, TraceError> {
            Ok(u64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            ))
        };
        let mut pos = 0usize;
        if take(&mut pos, 8)? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
        let scenario = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(TraceError::ScenarioName)?
            .to_string();
        let seed = read_u64(&mut pos)?;
        let n_keys = read_u64(&mut pos)?;
        let n_records = read_u64(&mut pos)?;
        let payload_len = read_u64(&mut pos)?;
        let header_checksum = fnv1a(&bytes[..pos]);
        let stored_header_checksum = read_u64(&mut pos)?;
        if header_checksum != stored_header_checksum {
            return Err(TraceError::HeaderChecksum {
                computed: header_checksum,
                stored: stored_header_checksum,
            });
        }
        let payload_checksum = read_u64(&mut pos)?;
        let payload = bytes
            .get(pos..)
            .filter(|p| p.len() as u64 == payload_len)
            .ok_or(TraceError::PayloadLength {
                header: payload_len,
                actual: bytes.len().saturating_sub(pos) as u64,
            })?
            .to_vec();
        let computed = fnv1a(&payload);
        if computed != payload_checksum {
            return Err(TraceError::PayloadChecksum {
                computed,
                stored: payload_checksum,
            });
        }
        let trace = Trace {
            scenario,
            seed,
            n_keys,
            n_records,
            payload_checksum,
            payload,
        };
        // Structural pass: every record must decode and the count must
        // match the header.
        let mut count = 0u64;
        for r in trace.raw_iter() {
            r?;
            count += 1;
        }
        if count != n_records {
            return Err(TraceError::RecordCount {
                header: n_records,
                found: count,
            });
        }
        Ok(trace)
    }

    /// Reads and verifies a trace file. I/O failures and every form of
    /// corruption come back as typed [`TraceError`] values.
    pub fn read_file(path: &std::path::Path) -> Result<Trace, TraceError> {
        Trace::from_bytes(&std::fs::read(path)?)
    }

    /// Iterates raw record bodies as `(index, body_bytes)`.
    pub fn raw_iter(&self) -> impl Iterator<Item = Result<(u64, &[u8]), TraceError>> + '_ {
        RawIter {
            payload: &self.payload,
            pos: 0,
            index: 0,
        }
    }

    /// Iterates decoded transactions in arrival order.
    ///
    /// Only call on a verified trace ([`Trace::from_bytes`] or a
    /// freshly written one); decode errors panic here because the
    /// structural pass already proved them impossible.
    pub fn iter(&self) -> impl Iterator<Item = TrafficTx> + '_ {
        let mut at = 0u64;
        self.raw_iter().map(move |r| {
            let (_, body) = r.expect("verified trace decodes");
            let (dt, ops) = decode_body(body).expect("verified trace decodes");
            at += dt;
            TrafficTx { at, ops }
        })
    }

    /// Position-dependent digest of record `index` with body `body`.
    #[must_use]
    pub fn record_digest(index: u64, body: &[u8]) -> u64 {
        mix64(fnv1a(body) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Replay fingerprint: the commutative fold of every record's
    /// [`Trace::record_digest`] (wrapping sum ‖ xor, rendered as 32
    /// hex digits). Position-dependent per record, order-independent
    /// across records — identical no matter how the records are
    /// sharded across workers.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let (sum, xor) = self
            .raw_iter()
            .map(|r| {
                let (i, body) = r.expect("verified trace decodes");
                Self::record_digest(i, body)
            })
            .fold((0u64, 0u64), |(s, x), d| (s.wrapping_add(d), x ^ d));
        format!("{sum:016x}{xor:016x}")
    }
}

struct RawIter<'a> {
    payload: &'a [u8],
    pos: usize,
    index: u64,
}

impl<'a> Iterator for RawIter<'a> {
    type Item = Result<(u64, &'a [u8]), TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.payload.len() {
            return None;
        }
        let len = match read_varint(self.payload, &mut self.pos) {
            Ok(l) => l as usize,
            Err(e) => return Some(Err(e)),
        };
        let Some(body) = self
            .pos
            .checked_add(len)
            .and_then(|end| self.payload.get(self.pos..end))
        else {
            return Some(Err(TraceError::Truncated {
                what: "record body",
            }));
        };
        self.pos += len;
        let i = self.index;
        self.index += 1;
        Some(Ok((i, body)))
    }
}

/// Decodes one record body to `(dt, ops)`.
pub(crate) fn decode_body(body: &[u8]) -> Result<(u64, Vec<TrafficOp>), TraceError> {
    let mut pos = 0usize;
    let dt = read_varint(body, &mut pos)?;
    let n_ops = read_varint(body, &mut pos)? as usize;
    // Cap the preallocation by what the remaining bytes could possibly
    // encode (≥1 byte per op), so a forged count cannot balloon memory.
    let mut ops = Vec::with_capacity(n_ops.min(body.len().saturating_sub(pos)));
    for _ in 0..n_ops {
        let raw = read_varint(body, &mut pos)?;
        let key = raw >> 1;
        ops.push(if raw & 1 == 1 {
            TrafficOp::Write(key)
        } else {
            TrafficOp::Read(key)
        });
    }
    if pos != body.len() {
        return Err(TraceError::TrailingBytes);
    }
    Ok((dt, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut w = TraceWriter::new();
        w.push(0, &[TrafficOp::Read(3), TrafficOp::Write(5)]);
        w.push(17, &[TrafficOp::Write(1 << 40)]);
        w.push(17, &[]);
        w.push(900, &[TrafficOp::Read(0)]);
        w.finish("unit", 42, 1 << 41)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, t);
        assert_eq!(back.scenario(), "unit");
        assert_eq!(back.seed(), 42);
        assert_eq!(back.n_records(), 4);
        let txs: Vec<TrafficTx> = back.iter().collect();
        assert_eq!(txs.len(), 4);
        assert_eq!(txs[0].at, 0);
        assert_eq!(txs[1].at, 17);
        assert_eq!(txs[1].ops, vec![TrafficOp::Write(1 << 40)]);
        assert_eq!(txs[2].at, 17);
        assert!(txs[2].ops.is_empty());
        assert_eq!(txs[3].at, 900);
    }

    #[test]
    fn corruption_is_detected() {
        let t = sample_trace();
        let good = t.to_bytes();

        // Flip one payload byte: payload checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            Trace::from_bytes(&bad).unwrap_err(),
            TraceError::PayloadChecksum { .. }
        ));

        // Flip a header byte (the seed): header checksum catches it.
        let mut bad = good.clone();
        bad[8 + 2 + 2 + 4] ^= 1; // inside the seed field of "unit"
        assert!(matches!(
            Trace::from_bytes(&bad).unwrap_err(),
            TraceError::HeaderChecksum { .. }
        ));

        // Truncate the payload: length check catches it.
        let mut bad = good.clone();
        bad.truncate(bad.len() - 2);
        assert!(matches!(
            Trace::from_bytes(&bad).unwrap_err(),
            TraceError::PayloadLength { .. }
        ));

        // Wrong magic.
        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(
            Trace::from_bytes(&bad).unwrap_err(),
            TraceError::BadMagic
        ));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let t = sample_trace();
        assert_eq!(t.fingerprint(), t.fingerprint());
        let mut w = TraceWriter::new();
        w.push(0, &[TrafficOp::Read(3), TrafficOp::Write(5)]);
        w.push(17, &[TrafficOp::Write(1 << 40)]);
        w.push(17, &[]);
        w.push(900, &[TrafficOp::Read(1)]); // one key differs
        let other = w.finish("unit", 42, 1 << 41);
        assert_ne!(t.fingerprint(), other.fingerprint());
    }

    #[test]
    fn varints_roundtrip_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn time_ordering_is_enforced() {
        let mut w = TraceWriter::new();
        w.push(10, &[]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.push(9, &[])));
        assert!(r.is_err(), "backwards arrival must panic");
    }
}
