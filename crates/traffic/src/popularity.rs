//! Key-popularity models: the contention skew of the traffic.
//!
//! Contention skew is exactly the regime where non-blocking TM designs
//! differentiate from locking baselines, so it is a first-class axis
//! here: uniform (no skew), Zipfian(θ) (static hot set), and hot-key
//! *migration*, where the rank→key mapping rotates over time so the
//! hot set walks through the key space and yesterday's placement
//! decisions go stale.

use tcc_types::rng::SmallRng;
use tcc_workloads::sampling::Zipf;

use crate::config::PopularityConfig;

/// A sampling-ready popularity model (the Zipf CDF table is built
/// once, not per draw).
#[derive(Debug, Clone)]
pub enum Popularity {
    Uniform {
        n_keys: usize,
    },
    Zipfian {
        zipf: Zipf,
    },
    HotMigration {
        zipf: Zipf,
        n_keys: usize,
        period_ticks: u64,
        stride: usize,
    },
}

impl Popularity {
    /// Builds the model from a *validated* config.
    #[must_use]
    pub fn new(cfg: &PopularityConfig) -> Popularity {
        match *cfg {
            PopularityConfig::Uniform { n_keys } => Popularity::Uniform { n_keys },
            PopularityConfig::Zipfian { n_keys, theta } => Popularity::Zipfian {
                zipf: Zipf::new(n_keys, theta),
            },
            PopularityConfig::HotMigration {
                n_keys,
                theta,
                period_ticks,
                stride,
            } => Popularity::HotMigration {
                zipf: Zipf::new(n_keys, theta),
                n_keys,
                period_ticks,
                stride,
            },
        }
    }

    /// Domain size.
    #[must_use]
    pub fn n_keys(&self) -> usize {
        match self {
            Popularity::Uniform { n_keys } | Popularity::HotMigration { n_keys, .. } => *n_keys,
            Popularity::Zipfian { zipf } => zipf.len(),
        }
    }

    /// Samples a key for an arrival at tick `at`. Time only matters to
    /// the migrating model: rank `r` maps to key `(r + offset(at)) %
    /// n`, where the offset advances by `stride` every `period_ticks`.
    #[must_use]
    pub fn pick(&self, at: u64, rng: &mut SmallRng) -> u64 {
        match self {
            Popularity::Uniform { n_keys } => rng.gen_range(0..*n_keys as u64),
            Popularity::Zipfian { zipf } => zipf.sample(rng) as u64,
            Popularity::HotMigration {
                zipf,
                n_keys,
                period_ticks,
                stride,
            } => {
                let rank = zipf.sample(rng) as u64;
                let offset = (at / period_ticks).wrapping_mul(*stride as u64);
                rank.wrapping_add(offset) % *n_keys as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_workloads::sampling::stream_rng;

    fn hottest_key(p: &Popularity, at: u64, seed: u64) -> u64 {
        let mut rng = stream_rng(seed, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5_000 {
            *counts.entry(p.pick(at, &mut rng)).or_insert(0u64) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
    }

    #[test]
    fn migrating_hot_set_walks_with_time() {
        let p = Popularity::new(&PopularityConfig::HotMigration {
            n_keys: 1024,
            theta: 1.2,
            period_ticks: 1000,
            stride: 64,
        });
        let k0 = hottest_key(&p, 0, 5);
        let k1 = hottest_key(&p, 1000, 5);
        let k5 = hottest_key(&p, 5000, 5);
        assert_eq!(k0, 0, "rank 0 maps to key 0 in the first period");
        assert_eq!(k1, 64, "one period later the hot set moved one stride");
        assert_eq!(k5, 320, "five periods: five strides");
    }

    #[test]
    fn migration_wraps_the_key_space() {
        let p = Popularity::new(&PopularityConfig::HotMigration {
            n_keys: 128,
            theta: 1.2,
            period_ticks: 10,
            stride: 100,
        });
        let mut rng = stream_rng(6, 0);
        for at in [0u64, 10, 50, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(p.pick(at, &mut rng) < 128);
            }
        }
    }

    #[test]
    fn uniform_is_time_invariant_and_covers_the_space() {
        let p = Popularity::new(&PopularityConfig::Uniform { n_keys: 8 });
        let mut rng = stream_rng(8, 0);
        let mut seen = [false; 8];
        for i in 0..1000 {
            seen[p.pick(i * 1_000_000, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
