//! Traffic scenario configuration and validation.
//!
//! A [`TrafficConfig`] is the complete, seedable description of one
//! production-traffic scenario: *when* transactions arrive (the
//! open-loop [`ArrivalConfig`]), *which* keys they fight over (the
//! [`PopularityConfig`] contention model), and *what* each transaction
//! does (the [`ShapeConfig`] application shape). The same config and
//! seed always synthesize the identical trace, byte for byte.
//!
//! Validation follows the [`tcc_core::SystemConfig::validate`] style:
//! degenerate parameters are rejected up front with a
//! [`ConfigError`] naming the offending field and how to fix it,
//! instead of surfacing later as a hung generator or a divide-by-zero
//! deep inside synthesis.

use tcc_core::ConfigError;

/// Ticks per simulated second. Arrival timestamps are abstract
/// microsecond-granularity ticks; backends scale them (cycles per tick
/// in the simulator, nanoseconds per tick on real threads).
pub const TICKS_PER_SEC: f64 = 1_000_000.0;

/// Open-loop arrival process: *when* requests arrive, independent of
/// how fast the system retires them (the opposite of the closed-loop
/// "next transaction when the last commits" the paper's apps use).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalConfig {
    /// Memoryless arrivals: exponential inter-arrival times with the
    /// given mean, in ticks.
    Poisson { mean_interarrival_ticks: f64 },
    /// Two-state Markov-modulated Poisson process: `calm` and `burst`
    /// states with different mean inter-arrivals, dwelling in each
    /// state for an exponentially distributed number of ticks.
    Bursty {
        calm_interarrival_ticks: f64,
        burst_interarrival_ticks: f64,
        mean_dwell_ticks: f64,
    },
    /// Poisson arrivals under a diurnal envelope: the instantaneous
    /// rate swings by `±amplitude` around the base rate with the given
    /// period (a compressed "day").
    Diurnal {
        mean_interarrival_ticks: f64,
        period_ticks: u64,
        amplitude: f64,
    },
}

/// Key-popularity model: *which* keys transactions touch, i.e. the
/// contention skew the commit protocol has to arbitrate.
#[derive(Debug, Clone, PartialEq)]
pub enum PopularityConfig {
    /// Every key equally likely.
    Uniform { n_keys: usize },
    /// Zipfian(θ) skew: rank 0 is the hottest key.
    Zipfian { n_keys: usize, theta: f64 },
    /// Zipfian skew whose hot set *walks*: the rank→key mapping
    /// rotates by `stride` keys every `period_ticks`, so cached
    /// hot-key placement goes stale over time.
    HotMigration {
        n_keys: usize,
        theta: f64,
        period_ticks: u64,
        stride: usize,
    },
}

impl PopularityConfig {
    /// Size of the popularity domain (keys for KV, nodes for graph,
    /// items for OLTP).
    #[must_use]
    pub fn n_keys(&self) -> usize {
        match *self {
            PopularityConfig::Uniform { n_keys }
            | PopularityConfig::Zipfian { n_keys, .. }
            | PopularityConfig::HotMigration { n_keys, .. } => n_keys,
        }
    }
}

/// Number of districts per OLTP warehouse (TPC-C's fixed 10).
pub const OLTP_DISTRICTS: usize = 10;
/// Customers per district in the lite OLTP shape.
pub const OLTP_CUSTOMERS: usize = 30;
/// Order-ring slots per district (new-order writes rotate through
/// them, modelling an append-mostly order table).
pub const OLTP_ORDER_SLOTS: usize = 64;

/// Transaction shape: *what* one arrival does to the key space.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeConfig {
    /// Key-value read/write mix over the popularity domain. Writes are
    /// read-modify-writes, the conflict shape the protocol arbitrates.
    Kv {
        reads_per_tx: usize,
        writes_per_tx: usize,
    },
    /// Graph traversal: neighbor expansion from a popularity-sampled
    /// start node over an implicit hashed adjacency, with a bias
    /// toward a small set of hot supernodes (grounded in the sombra
    /// graph-DB related repo's supernode skew).
    Graph {
        /// Neighbors read per expansion level.
        fanout: usize,
        /// Expansion levels walked.
        depth: usize,
        /// Size of the hot supernode set (node ids `0..supernodes`).
        supernodes: usize,
        /// Probability an edge lands on a supernode instead of a
        /// hash-uniform neighbor.
        supernode_bias: f64,
    },
    /// TPC-C-lite OLTP: a mix of new-order (district counter bump +
    /// Zipfian stock updates + order-ring append) and payment
    /// (warehouse/district/customer balance updates) transactions.
    Oltp {
        warehouses: usize,
        /// Stock items (the popularity domain: skewed item demand).
        items: usize,
        /// Fraction of arrivals that are new-order (the rest are
        /// payment).
        new_order_frac: f64,
    },
}

/// One complete scenario: name, seed, and the three model axes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Scenario name, recorded in the trace header and run reports.
    pub scenario: String,
    /// Master seed; every synthesis stream derives from it.
    pub seed: u64,
    pub arrival: ArrivalConfig,
    pub popularity: PopularityConfig,
    pub shape: ShapeConfig,
}

fn err(field: &'static str, problem: impl Into<String>, hint: &'static str) -> ConfigError {
    ConfigError::invalid(field, problem, hint)
}

fn check_interarrival(field: &'static str, v: f64) -> Result<(), ConfigError> {
    if !(v.is_finite() && v > 0.0) {
        return Err(err(
            field,
            format!("mean inter-arrival {v} ticks means a zero (or undefined) arrival rate"),
            "use a positive, finite mean inter-arrival time in ticks",
        ));
    }
    Ok(())
}

impl TrafficConfig {
    /// Total logical key space the scenario's transactions address —
    /// the popularity domain for KV and graph shapes, the derived
    /// record layout for OLTP (warehouses + districts + customers +
    /// stock + order ring).
    #[must_use]
    pub fn key_space(&self) -> usize {
        match self.shape {
            ShapeConfig::Kv { .. } | ShapeConfig::Graph { .. } => self.popularity.n_keys(),
            ShapeConfig::Oltp {
                warehouses, items, ..
            } => OltpLayout::new(warehouses, items).total,
        }
    }

    /// Rejects degenerate parameters with a field+hint error, in the
    /// [`tcc_core::SystemConfig::validate`] style. Called by
    /// [`crate::synthesize`]; call it directly to vet
    /// externally-sourced scenario configs before spending synthesis
    /// time on them.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for: a zero or non-finite arrival
    /// rate, a degenerate burst dwell, a diurnal amplitude outside
    /// `[0, 1)` or a zero period, an empty key space, a Zipfian
    /// exponent θ ≤ 0 (use `Uniform` for no skew), a hot-set
    /// migration period or stride of 0, an empty transaction shape,
    /// and OLTP item/warehouse counts of zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match &self.arrival {
            ArrivalConfig::Poisson {
                mean_interarrival_ticks,
            } => check_interarrival("arrival.mean_interarrival_ticks", *mean_interarrival_ticks)?,
            ArrivalConfig::Bursty {
                calm_interarrival_ticks,
                burst_interarrival_ticks,
                mean_dwell_ticks,
            } => {
                check_interarrival("arrival.calm_interarrival_ticks", *calm_interarrival_ticks)?;
                check_interarrival(
                    "arrival.burst_interarrival_ticks",
                    *burst_interarrival_ticks,
                )?;
                if !(mean_dwell_ticks.is_finite() && *mean_dwell_ticks > 0.0) {
                    return Err(err(
                        "arrival.mean_dwell_ticks",
                        "a zero dwell time flips burst state every arrival",
                        "use a positive mean dwell, large relative to the inter-arrival",
                    ));
                }
            }
            ArrivalConfig::Diurnal {
                mean_interarrival_ticks,
                period_ticks,
                amplitude,
            } => {
                check_interarrival("arrival.mean_interarrival_ticks", *mean_interarrival_ticks)?;
                if *period_ticks == 0 {
                    return Err(err(
                        "arrival.period_ticks",
                        "a zero-period envelope is undefined",
                        "use a period much longer than the mean inter-arrival",
                    ));
                }
                if !(0.0..1.0).contains(amplitude) {
                    return Err(err(
                        "arrival.amplitude",
                        format!("amplitude {amplitude} leaves the [0, 1) envelope"),
                        "use 0.0 <= amplitude < 1.0 so the rate never reaches zero",
                    ));
                }
            }
        }
        if self.popularity.n_keys() == 0 {
            return Err(err(
                "popularity.n_keys",
                "an empty key space gives transactions nothing to touch",
                "use n_keys >= 1",
            ));
        }
        match &self.popularity {
            PopularityConfig::Uniform { .. } => {}
            PopularityConfig::Zipfian { theta, .. } => {
                if !(theta.is_finite() && *theta > 0.0) {
                    return Err(err(
                        "popularity.theta",
                        format!("θ = {theta} is not a skew"),
                        "use θ > 0 for Zipfian skew, or the Uniform model for none",
                    ));
                }
            }
            PopularityConfig::HotMigration {
                theta,
                period_ticks,
                stride,
                ..
            } => {
                if !(theta.is_finite() && *theta > 0.0) {
                    return Err(err(
                        "popularity.theta",
                        format!("θ = {theta} is not a skew"),
                        "use θ > 0 for Zipfian skew, or the Uniform model for none",
                    ));
                }
                if *period_ticks == 0 {
                    return Err(err(
                        "popularity.period_ticks",
                        "a migration period of 0 makes the hot-set position undefined",
                        "use a period of at least one tick (typically thousands)",
                    ));
                }
                if *stride == 0 {
                    return Err(err(
                        "popularity.stride",
                        "a zero stride never moves the hot set — that is plain Zipfian",
                        "use stride >= 1, or the Zipfian model if migration is unwanted",
                    ));
                }
            }
        }
        match &self.shape {
            ShapeConfig::Kv {
                reads_per_tx,
                writes_per_tx,
            } => {
                if reads_per_tx + writes_per_tx == 0 {
                    return Err(err(
                        "shape.reads_per_tx",
                        "empty transactions measure nothing",
                        "use reads_per_tx + writes_per_tx >= 1",
                    ));
                }
            }
            ShapeConfig::Graph {
                fanout,
                depth,
                supernodes,
                supernode_bias,
            } => {
                if *fanout == 0 || *depth == 0 {
                    return Err(err(
                        "shape.fanout",
                        "a zero fanout or depth expands no neighbors",
                        "use fanout >= 1 and depth >= 1",
                    ));
                }
                if *supernodes == 0 || *supernodes > self.popularity.n_keys() {
                    return Err(err(
                        "shape.supernodes",
                        format!(
                            "{} supernodes in a {}-node graph",
                            supernodes,
                            self.popularity.n_keys()
                        ),
                        "use 1 <= supernodes <= n_keys",
                    ));
                }
                if !(0.0..=1.0).contains(supernode_bias) {
                    return Err(err(
                        "shape.supernode_bias",
                        format!("bias {supernode_bias} is not a probability"),
                        "use 0.0 <= supernode_bias <= 1.0",
                    ));
                }
            }
            ShapeConfig::Oltp {
                warehouses,
                items,
                new_order_frac,
            } => {
                if *warehouses == 0 {
                    return Err(err(
                        "shape.warehouses",
                        "an OLTP system with no warehouses has no records",
                        "use warehouses >= 1",
                    ));
                }
                if *items == 0 {
                    return Err(err(
                        "shape.items",
                        "new-order transactions need stock items to order",
                        "use items >= 1",
                    ));
                }
                if !(0.0..=1.0).contains(new_order_frac) {
                    return Err(err(
                        "shape.new_order_frac",
                        format!("fraction {new_order_frac} is not a probability"),
                        "use 0.0 <= new_order_frac <= 1.0",
                    ));
                }
                if *items != self.popularity.n_keys() {
                    return Err(err(
                        "popularity.n_keys",
                        format!(
                            "popularity domain ({}) must equal the OLTP item count ({})",
                            self.popularity.n_keys(),
                            items
                        ),
                        "point the popularity model at the stock items: n_keys == items",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Key-space layout of the OLTP shape: contiguous regions for each
/// record class, addressed as logical keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OltpLayout {
    pub warehouses: usize,
    pub items: usize,
    /// `[0, warehouses)`: warehouse YTD records.
    pub warehouse_base: usize,
    /// `[warehouse_base + W, …)`: district records (next-order id +
    /// YTD), `OLTP_DISTRICTS` per warehouse.
    pub district_base: usize,
    /// Customer balance records, `OLTP_CUSTOMERS` per district.
    pub customer_base: usize,
    /// Stock records, one per item.
    pub stock_base: usize,
    /// Order-ring slots, `OLTP_ORDER_SLOTS` per district.
    pub order_base: usize,
    /// Total key-space size.
    pub total: usize,
}

impl OltpLayout {
    #[must_use]
    pub fn new(warehouses: usize, items: usize) -> OltpLayout {
        let districts = warehouses * OLTP_DISTRICTS;
        let warehouse_base = 0;
        let district_base = warehouse_base + warehouses;
        let customer_base = district_base + districts;
        let stock_base = customer_base + districts * OLTP_CUSTOMERS;
        let order_base = stock_base + items;
        let total = order_base + districts * OLTP_ORDER_SLOTS;
        OltpLayout {
            warehouses,
            items,
            warehouse_base,
            district_base,
            customer_base,
            stock_base,
            order_base,
            total,
        }
    }

    #[must_use]
    pub fn warehouse(&self, w: usize) -> u64 {
        (self.warehouse_base + w) as u64
    }

    #[must_use]
    pub fn district(&self, w: usize, d: usize) -> u64 {
        (self.district_base + w * OLTP_DISTRICTS + d) as u64
    }

    #[must_use]
    pub fn customer(&self, w: usize, d: usize, c: usize) -> u64 {
        (self.customer_base + (w * OLTP_DISTRICTS + d) * OLTP_CUSTOMERS + c) as u64
    }

    #[must_use]
    pub fn stock(&self, item: usize) -> u64 {
        (self.stock_base + item) as u64
    }

    #[must_use]
    pub fn order_slot(&self, w: usize, d: usize, slot: usize) -> u64 {
        (self.order_base + (w * OLTP_DISTRICTS + d) * OLTP_ORDER_SLOTS + slot % OLTP_ORDER_SLOTS)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn all_preset_scenarios_validate() {
        for cfg in scenarios::all() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.scenario));
            assert!(cfg.key_space() > 0);
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected_with_field_and_hint() {
        let base = scenarios::zipfian_steady();

        let mut c = base.clone();
        c.arrival = ArrivalConfig::Poisson {
            mean_interarrival_ticks: 0.0,
        };
        let e = c.validate().unwrap_err();
        assert_eq!(e.field(), "arrival.mean_interarrival_ticks");
        assert!(!e.hint().is_empty());

        let mut c = base.clone();
        c.popularity = PopularityConfig::Zipfian {
            n_keys: 1024,
            theta: 0.0,
        };
        assert_eq!(c.validate().unwrap_err().field(), "popularity.theta");
        c.popularity = PopularityConfig::Zipfian {
            n_keys: 1024,
            theta: -0.5,
        };
        assert_eq!(c.validate().unwrap_err().field(), "popularity.theta");

        let mut c = base.clone();
        c.popularity = PopularityConfig::Uniform { n_keys: 0 };
        assert_eq!(c.validate().unwrap_err().field(), "popularity.n_keys");

        let mut c = base.clone();
        c.popularity = PopularityConfig::HotMigration {
            n_keys: 1024,
            theta: 1.0,
            period_ticks: 0,
            stride: 8,
        };
        assert_eq!(c.validate().unwrap_err().field(), "popularity.period_ticks");
        c.popularity = PopularityConfig::HotMigration {
            n_keys: 1024,
            theta: 1.0,
            period_ticks: 1000,
            stride: 0,
        };
        assert_eq!(c.validate().unwrap_err().field(), "popularity.stride");

        let mut c = base.clone();
        c.shape = ShapeConfig::Kv {
            reads_per_tx: 0,
            writes_per_tx: 0,
        };
        assert_eq!(c.validate().unwrap_err().field(), "shape.reads_per_tx");

        let mut c = base;
        c.arrival = ArrivalConfig::Diurnal {
            mean_interarrival_ticks: 50.0,
            period_ticks: 0,
            amplitude: 0.5,
        };
        assert_eq!(c.validate().unwrap_err().field(), "arrival.period_ticks");
        c.arrival = ArrivalConfig::Diurnal {
            mean_interarrival_ticks: 50.0,
            period_ticks: 1000,
            amplitude: 1.0,
        };
        assert_eq!(c.validate().unwrap_err().field(), "arrival.amplitude");
    }

    #[test]
    fn config_errors_render_in_the_system_config_style() {
        let mut c = scenarios::zipfian_steady();
        c.popularity = PopularityConfig::Zipfian {
            n_keys: 64,
            theta: -1.0,
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("popularity.theta"), "{msg}");
        assert!(msg.contains("fix:"), "{msg}");
    }

    #[test]
    fn oltp_layout_regions_are_disjoint_and_cover_total() {
        let l = OltpLayout::new(4, 1000);
        assert!(l.warehouse(3) < l.district(0, 0));
        assert!(l.district(3, 9) < l.customer(0, 0, 0));
        assert!(l.customer(3, 9, 29) < l.stock(0));
        assert!(l.stock(999) < l.order_slot(0, 0, 0));
        assert_eq!(
            l.order_slot(3, 9, OLTP_ORDER_SLOTS - 1) as usize + 1,
            l.total
        );
        // The ring wraps instead of escaping its region.
        assert_eq!(l.order_slot(0, 0, OLTP_ORDER_SLOTS), l.order_slot(0, 0, 0));
    }

    #[test]
    fn oltp_popularity_must_cover_items() {
        let mut c = scenarios::oltp_order_payment();
        if let PopularityConfig::Zipfian { n_keys, .. } = &mut c.popularity {
            *n_keys += 1;
        }
        assert_eq!(c.validate().unwrap_err().field(), "popularity.n_keys");
    }
}
