//! Open-loop arrival processes.
//!
//! The paper's applications are *closed-loop*: a processor starts its
//! next transaction the moment the previous one commits, so offered
//! load automatically throttles to whatever the system sustains.
//! Production traffic is *open-loop*: users issue requests on their own
//! schedule, and when the system falls behind, latency — not offered
//! load — absorbs the difference. An [`ArrivalProcess`] turns a seeded
//! RNG into the timestamp stream that models this: each call to
//! [`ArrivalProcess::next_at`] returns the next arrival's tick,
//! monotonically non-decreasing.

use tcc_types::rng::SmallRng;

use crate::config::ArrivalConfig;

/// Stateful generator of arrival timestamps (ticks).
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    cfg: ArrivalConfig,
    /// Exact accumulated time, kept in f64 so rounding to integer
    /// ticks never drifts the long-run rate.
    now: f64,
    /// Bursty-state machine: `true` while in the burst state.
    bursting: bool,
    /// Tick at which the current bursty dwell ends.
    dwell_until: f64,
}

/// Exponential sample with the given mean (inverse-CDF transform).
fn exp_sample(rng: &mut SmallRng, mean: f64) -> f64 {
    // 1 - u in (0, 1]: ln never sees zero.
    -(1.0 - rng.gen_range(0.0f64..1.0)).ln() * mean
}

impl ArrivalProcess {
    /// A process over a *validated* arrival config (see
    /// [`crate::TrafficConfig::validate`]).
    #[must_use]
    pub fn new(cfg: ArrivalConfig) -> ArrivalProcess {
        ArrivalProcess {
            cfg,
            now: 0.0,
            bursting: false,
            dwell_until: 0.0,
        }
    }

    /// Mean inter-arrival time in ticks, averaged over states /
    /// envelope phases — the reciprocal of the long-run offered rate.
    #[must_use]
    pub fn mean_interarrival_ticks(&self) -> f64 {
        match self.cfg {
            ArrivalConfig::Poisson {
                mean_interarrival_ticks,
            }
            | ArrivalConfig::Diurnal {
                mean_interarrival_ticks,
                ..
            } => mean_interarrival_ticks,
            ArrivalConfig::Bursty {
                calm_interarrival_ticks,
                burst_interarrival_ticks,
                ..
            } => {
                // Equal expected dwell in each state: the long-run rate
                // is the mean of the two state rates.
                2.0 / (1.0 / calm_interarrival_ticks + 1.0 / burst_interarrival_ticks)
            }
        }
    }

    /// Long-run offered rate, in transactions per tick.
    #[must_use]
    pub fn offered_rate_per_tick(&self) -> f64 {
        1.0 / self.mean_interarrival_ticks()
    }

    /// Advances to the next arrival and returns its tick.
    pub fn next_at(&mut self, rng: &mut SmallRng) -> u64 {
        let dt = match self.cfg {
            ArrivalConfig::Poisson {
                mean_interarrival_ticks,
            } => exp_sample(rng, mean_interarrival_ticks),
            ArrivalConfig::Bursty {
                calm_interarrival_ticks,
                burst_interarrival_ticks,
                mean_dwell_ticks,
            } => {
                if self.now >= self.dwell_until {
                    self.bursting = !self.bursting;
                    self.dwell_until = self.now + exp_sample(rng, mean_dwell_ticks);
                }
                let mean = if self.bursting {
                    burst_interarrival_ticks
                } else {
                    calm_interarrival_ticks
                };
                exp_sample(rng, mean)
            }
            ArrivalConfig::Diurnal {
                mean_interarrival_ticks,
                period_ticks,
                amplitude,
            } => {
                // Instantaneous rate = base * (1 + A sin(2π t / P));
                // stretch the next exponential gap by the reciprocal
                // envelope at the current phase. A < 1, so the envelope
                // never reaches zero and the gap stays finite.
                let phase = (self.now / period_ticks as f64) * std::f64::consts::TAU;
                let envelope = 1.0 + amplitude * phase.sin();
                exp_sample(rng, mean_interarrival_ticks) / envelope
            }
        };
        self.now += dt;
        self.now as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_workloads::sampling::stream_rng;

    fn mean_gap(cfg: ArrivalConfig, n: usize, seed: u64) -> f64 {
        let mut p = ArrivalProcess::new(cfg);
        let mut rng = stream_rng(seed, 0);
        let mut last = 0u64;
        for _ in 0..n {
            last = p.next_at(&mut rng);
        }
        last as f64 / n as f64
    }

    #[test]
    fn poisson_long_run_rate_matches_configuration() {
        let m = mean_gap(
            ArrivalConfig::Poisson {
                mean_interarrival_ticks: 50.0,
            },
            200_000,
            42,
        );
        assert!((m - 50.0).abs() < 1.0, "empirical mean gap {m} vs 50");
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut p = ArrivalProcess::new(ArrivalConfig::Bursty {
            calm_interarrival_ticks: 80.0,
            burst_interarrival_ticks: 5.0,
            mean_dwell_ticks: 1000.0,
        });
        let mut rng = stream_rng(7, 0);
        let mut last = 0;
        for _ in 0..10_000 {
            let t = p.next_at(&mut rng);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn bursty_actually_alternates_rates() {
        // Windowed arrival counts should show both calm and burst
        // regimes: max window ≫ min window.
        let mut p = ArrivalProcess::new(ArrivalConfig::Bursty {
            calm_interarrival_ticks: 100.0,
            burst_interarrival_ticks: 5.0,
            mean_dwell_ticks: 20_000.0,
        });
        let mut rng = stream_rng(3, 0);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..50_000 {
            let t = p.next_at(&mut rng);
            *counts.entry(t / 10_000).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(
            max > min.saturating_mul(4),
            "no burstiness visible: windows {min}..{max}"
        );
    }

    #[test]
    fn diurnal_rate_swings_with_the_envelope() {
        let period = 100_000u64;
        let mut p = ArrivalProcess::new(ArrivalConfig::Diurnal {
            mean_interarrival_ticks: 20.0,
            period_ticks: period,
            amplitude: 0.8,
        });
        let mut rng = stream_rng(9, 0);
        // Count arrivals in the peak quarter vs the trough quarter of
        // each period.
        let (mut peak, mut trough) = (0u64, 0u64);
        for _ in 0..200_000 {
            let t = p.next_at(&mut rng);
            match (t % period) * 4 / period {
                0 => peak += 1,   // phase [0, π/2): sin rising, high rate
                2 => trough += 1, // phase [π, 3π/2): sin negative
                _ => {}
            }
        }
        assert!(
            peak > trough * 2,
            "no diurnal swing: peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let cfg = ArrivalConfig::Diurnal {
            mean_interarrival_ticks: 30.0,
            period_ticks: 10_000,
            amplitude: 0.5,
        };
        let run = |seed| {
            let mut p = ArrivalProcess::new(cfg.clone());
            let mut rng = stream_rng(seed, 0);
            (0..1000).map(|_| p.next_at(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
