//! Transaction shapes: what one arrival does to the key space.
//!
//! Three application families bracket the space the north star asks
//! for:
//!
//! * **KV** — a read/write mix over popularity-sampled keys, the
//!   YCSB-style cache/session-store workload.
//! * **Graph** — neighbor expansion from a popularity-sampled start
//!   node over an implicit hashed adjacency with hot supernodes
//!   (celebrity vertices): read-heavy, long read sets, conflicts
//!   concentrated on the supernodes' visit counters.
//! * **OLTP** — TPC-C-lite new-order and payment transactions over a
//!   warehouse/district/customer/stock layout: short, write-heavy,
//!   with the per-district next-order counter as the natural hot spot.
//!
//! A shape emits [`TrafficOp`]s over *logical keys*; the backends remap
//! keys to simulator addresses or STM cells (see [`crate::replay`]).

use tcc_types::rng::SmallRng;

use crate::config::{OltpLayout, ShapeConfig, OLTP_CUSTOMERS, OLTP_DISTRICTS, OLTP_ORDER_SLOTS};
use crate::popularity::Popularity;

/// One operation of a generated transaction, over a logical key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficOp {
    Read(u64),
    /// Writes are read-modify-writes at replay time: the replayers
    /// read the key before writing it, the conflict shape the commit
    /// protocol actually arbitrates.
    Write(u64),
}

impl TrafficOp {
    /// The key this operation touches.
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            TrafficOp::Read(k) | TrafficOp::Write(k) => k,
        }
    }

    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, TrafficOp::Write(_))
    }
}

/// One generated transaction request: arrival tick plus its ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficTx {
    /// Arrival timestamp, in ticks.
    pub at: u64,
    pub ops: Vec<TrafficOp>,
}

/// A generation-ready shape (layout tables precomputed).
#[derive(Debug, Clone)]
pub enum Shape {
    Kv {
        reads_per_tx: usize,
        writes_per_tx: usize,
    },
    Graph {
        fanout: usize,
        depth: usize,
        supernodes: usize,
        supernode_bias: f64,
        n_nodes: usize,
    },
    Oltp {
        layout: OltpLayout,
        new_order_frac: f64,
    },
}

/// SplitMix64-style finalizer: the implicit adjacency hash.
#[inline]
fn hash2(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Shape {
    /// Builds the shape from a *validated* config; `n_keys` is the
    /// popularity-domain size (nodes for graph shapes).
    #[must_use]
    pub fn new(cfg: &ShapeConfig, n_keys: usize) -> Shape {
        match *cfg {
            ShapeConfig::Kv {
                reads_per_tx,
                writes_per_tx,
            } => Shape::Kv {
                reads_per_tx,
                writes_per_tx,
            },
            ShapeConfig::Graph {
                fanout,
                depth,
                supernodes,
                supernode_bias,
            } => Shape::Graph {
                fanout,
                depth,
                supernodes,
                supernode_bias,
                n_nodes: n_keys,
            },
            ShapeConfig::Oltp {
                warehouses,
                items,
                new_order_frac,
            } => Shape::Oltp {
                layout: OltpLayout::new(warehouses, items),
                new_order_frac,
            },
        }
    }

    /// Neighbor `j` of node `v` in the implicit graph, with supernode
    /// bias applied by the caller.
    fn neighbor(v: u64, j: u64, n_nodes: usize) -> u64 {
        hash2(v, j) % n_nodes as u64
    }

    /// Generates the ops of one transaction arriving at tick `at`.
    /// `pop` picks the contended keys; `rng` drives everything else
    /// (shape-internal choices), so popularity and shape decisions
    /// come from the same per-scenario stream and stay reproducible.
    pub fn generate(
        &self,
        at: u64,
        pop: &Popularity,
        rng: &mut SmallRng,
        ops: &mut Vec<TrafficOp>,
    ) {
        ops.clear();
        match *self {
            Shape::Kv {
                reads_per_tx,
                writes_per_tx,
            } => {
                for _ in 0..reads_per_tx {
                    ops.push(TrafficOp::Read(pop.pick(at, rng)));
                }
                for _ in 0..writes_per_tx {
                    ops.push(TrafficOp::Write(pop.pick(at, rng)));
                }
            }
            Shape::Graph {
                fanout,
                depth,
                supernodes,
                supernode_bias,
                n_nodes,
            } => {
                // Start at a popularity-sampled node (hot supernodes
                // are the low ids, matching Zipfian rank order), then
                // expand: read `fanout` neighbors per level, descend
                // through the first one. Edges rewire to a supernode
                // with probability `supernode_bias` — the celebrity
                // hubs every walk funnels through.
                let start = pop.pick(at, rng);
                ops.push(TrafficOp::Read(start));
                let mut cur = start;
                for level in 0..depth {
                    let mut next = cur;
                    for j in 0..fanout {
                        let neighbor = if rng.gen_bool(supernode_bias) {
                            rng.gen_range(0..supernodes as u64)
                        } else {
                            Self::neighbor(cur, (level * fanout + j) as u64, n_nodes)
                        };
                        ops.push(TrafficOp::Read(neighbor));
                        if j == 0 {
                            next = neighbor;
                        }
                    }
                    cur = next;
                }
                // Traversal bookkeeping: bump visit counters on the
                // endpoints — the write-contention point of the shape.
                ops.push(TrafficOp::Write(start));
                ops.push(TrafficOp::Write(cur));
            }
            Shape::Oltp {
                layout,
                new_order_frac,
            } => {
                let w = rng.gen_range(0..layout.warehouses as u64) as usize;
                let d = rng.gen_range(0..OLTP_DISTRICTS as u64) as usize;
                if rng.gen_bool(new_order_frac) {
                    // New-order: bump the district's next-order id,
                    // update the ordered items' stock, append to the
                    // order ring.
                    ops.push(TrafficOp::Write(layout.district(w, d)));
                    let lines = rng.gen_range(5u64..=15) as usize;
                    for _ in 0..lines {
                        let item = pop.pick(at, rng) as usize;
                        ops.push(TrafficOp::Write(layout.stock(item)));
                    }
                    let slot = rng.gen_range(0..OLTP_ORDER_SLOTS as u64) as usize;
                    ops.push(TrafficOp::Write(layout.order_slot(w, d, slot)));
                } else {
                    // Payment: cascade the amount into warehouse and
                    // district YTD and the customer's balance.
                    ops.push(TrafficOp::Write(layout.warehouse(w)));
                    ops.push(TrafficOp::Write(layout.district(w, d)));
                    let c = rng.gen_range(0..OLTP_CUSTOMERS as u64) as usize;
                    ops.push(TrafficOp::Write(layout.customer(w, d, c)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopularityConfig;
    use tcc_workloads::sampling::stream_rng;

    fn gen_many(shape: &Shape, pop: &Popularity, n: usize) -> Vec<Vec<TrafficOp>> {
        let mut rng = stream_rng(77, 0);
        let mut out = Vec::new();
        let mut ops = Vec::new();
        for i in 0..n {
            shape.generate(i as u64 * 37, pop, &mut rng, &mut ops);
            out.push(ops.clone());
        }
        out
    }

    #[test]
    fn kv_mix_is_exact() {
        let shape = Shape::new(
            &ShapeConfig::Kv {
                reads_per_tx: 5,
                writes_per_tx: 3,
            },
            64,
        );
        let pop = Popularity::new(&PopularityConfig::Uniform { n_keys: 64 });
        for ops in gen_many(&shape, &pop, 200) {
            assert_eq!(ops.iter().filter(|o| !o.is_write()).count(), 5);
            assert_eq!(ops.iter().filter(|o| o.is_write()).count(), 3);
            assert!(ops.iter().all(|o| o.key() < 64));
        }
    }

    #[test]
    fn graph_walks_funnel_through_supernodes() {
        let n_nodes = 4096;
        let shape = Shape::new(
            &ShapeConfig::Graph {
                fanout: 4,
                depth: 2,
                supernodes: 8,
                supernode_bias: 0.3,
            },
            n_nodes,
        );
        let pop = Popularity::new(&PopularityConfig::Zipfian {
            n_keys: n_nodes,
            theta: 0.99,
        });
        let txs = gen_many(&shape, &pop, 500);
        let mut super_reads = 0usize;
        let mut total_reads = 0usize;
        for ops in &txs {
            // 1 start read + fanout*depth neighbor reads + 2 writes.
            assert_eq!(ops.len(), 1 + 4 * 2 + 2);
            assert_eq!(ops.iter().filter(|o| o.is_write()).count(), 2);
            for o in ops {
                assert!(o.key() < n_nodes as u64);
                if !o.is_write() {
                    total_reads += 1;
                    if o.key() < 8 {
                        super_reads += 1;
                    }
                }
            }
        }
        // 8/4096 of the space drawing ≫ its uniform share proves the
        // supernode funnel (bias 0.3 + Zipfian starts).
        assert!(
            super_reads * 2 > total_reads / 2,
            "supernodes drew {super_reads}/{total_reads} reads"
        );
    }

    #[test]
    fn oltp_transactions_stay_in_their_regions_and_mix_converges() {
        let layout = OltpLayout::new(4, 2048);
        let shape = Shape::new(
            &ShapeConfig::Oltp {
                warehouses: 4,
                items: 2048,
                new_order_frac: 0.6,
            },
            2048,
        );
        let pop = Popularity::new(&PopularityConfig::Zipfian {
            n_keys: 2048,
            theta: 0.8,
        });
        let txs = gen_many(&shape, &pop, 2000);
        let mut new_orders = 0usize;
        for ops in &txs {
            assert!(ops.iter().all(|o| o.key() < layout.total as u64));
            // Payment = exactly 3 writes (warehouse, district,
            // customer); new-order = district + 5..=15 stock + 1 slot.
            if ops.len() == 3 {
                assert!(ops[0].key() < layout.district_base as u64);
            } else {
                new_orders += 1;
                assert!((7..=17).contains(&ops.len()));
            }
        }
        let frac = new_orders as f64 / txs.len() as f64;
        assert!(
            (frac - 0.6).abs() < 0.05,
            "new-order fraction {frac} vs configured 0.6"
        );
    }
}
