//! End-to-end benchmark of Ablation A: the scalable parallel commit
//! protocol vs. the serialized-commit baseline on the same
//! commit-intensive workload (smoke scale so the suite stays fast).
//!
//! Self-contained `std::time` harness (no external bench framework, so
//! the suite builds offline). Run with `cargo bench -p tcc-bench`.

use std::time::Instant;

use tcc_core::{Simulator, SystemConfig};
use tcc_workloads::{apps, Scale};

fn time_runs(name: &str, samples: usize, mut run: impl FnMut()) {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name:<40} median {:>9.2} ms  min {:>9.2} ms  ({samples} samples)",
        times[times.len() / 2],
        times[0]
    );
}

fn main() {
    println!("commit_parallelism — volrend, smoke scale\n");
    for n in [4usize, 16] {
        let app = apps::volrend();
        time_runs(&format!("scalable/{n}"), 10, || {
            let programs = app.generate_scaled(n, 7, Scale::Smoke);
            std::hint::black_box(
                Simulator::builder(SystemConfig::with_procs(n))
                    .programs(programs)
                    .build()
                    .expect("valid config")
                    .run(),
            );
        });
        time_runs(&format!("baseline_serialized/{n}"), 10, || {
            let programs = app.generate_scaled(n, 7, Scale::Smoke);
            std::hint::black_box(
                Simulator::builder(SystemConfig::with_procs(n))
                    .programs(programs)
                    .build_baseline()
                    .expect("valid config")
                    .run(),
            );
        });
    }
}
