//! End-to-end Criterion benchmark of Ablation A: the scalable parallel
//! commit protocol vs. the serialized-commit baseline on the same
//! commit-intensive workload (smoke scale so the suite stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcc_core::baseline::BaselineSimulator;
use tcc_core::{Simulator, SystemConfig};
use tcc_workloads::{apps, Scale};

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_parallelism");
    g.sample_size(10);
    for n in [4usize, 16] {
        let app = apps::volrend();
        g.bench_with_input(BenchmarkId::new("scalable", n), &n, |b, &n| {
            b.iter(|| {
                let programs = app.generate_scaled(n, 7, Scale::Smoke);
                Simulator::new(SystemConfig::with_procs(n), programs).run()
            });
        });
        g.bench_with_input(BenchmarkId::new("baseline_serialized", n), &n, |b, &n| {
            b.iter(|| {
                let programs = app.generate_scaled(n, 7, Scale::Smoke);
                BaselineSimulator::new(SystemConfig::with_procs(n), programs).run()
            });
        });
    }
    g.finish();
}

criterion_group!(protocols, bench_protocols);
criterion_main!(protocols);
