//! Micro-benchmarks of the protocol hot paths: the skip vector, the
//! directory commit flow, the speculative cache, and mesh routing.
//!
//! Self-contained `std::time` harness (no external bench framework, so
//! the suite builds offline). Run with `cargo bench -p tcc-bench`.

use std::time::Instant;

use tcc_cache::{CacheConfig, HierCache};
use tcc_directory::{DirConfig, Directory, SkipVector};
use tcc_network::{Mesh2D, NetworkConfig};
use tcc_types::{Cycle, DirId, LineAddr, LineValues, NodeId, Tid, WordMask};

/// Time `iters` runs of `setup`+`routine` per sample and report the
/// median across `samples` batches. Setup cost is kept out of the
/// timed region by pre-building all inputs for a batch.
fn bench<S, R, T>(name: &str, samples: usize, iters: usize, mut setup: S, mut routine: R)
where
    S: FnMut() -> T,
    R: FnMut(T),
{
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            routine(input);
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<45} {median:>12.0} ns/iter  ({samples} samples x {iters} iters)");
}

fn bench_skip_vector() {
    bench(
        "skip_vector/1024_out_of_order_skips",
        20,
        50,
        SkipVector::new,
        |mut sv| {
            // Buffer skips high-to-low, then release the run.
            for t in (1..1024u64).rev() {
                sv.buffer_skip(Tid(t));
            }
            sv.buffer_skip(Tid(0));
            assert_eq!(sv.now_serving(), Tid(1024));
        },
    );
}

fn bench_directory_commit() {
    bench(
        "directory/mark_commit_ack_cycle",
        20,
        50,
        || {
            let mut d = Directory::new(DirConfig {
                id: DirId(0),
                words_per_line: 8,
                bugs: Default::default(),
            });
            for i in 0..64u64 {
                d.handle_load(Cycle(0), LineAddr(i), NodeId(1), 0);
                d.handle_load(Cycle(0), LineAddr(i), NodeId(2), 0);
            }
            d
        },
        |mut d| {
            for tid in 0..32u64 {
                let line = LineAddr(tid % 64);
                d.handle_probe(Cycle(tid), Tid(tid), NodeId(1), true);
                d.handle_mark(Cycle(tid), Tid(tid), line, WordMask::single(0), NodeId(1));
                d.handle_commit(Cycle(tid), Tid(tid), NodeId(1), 1);
                // N2 shares every line: acknowledge its invalidation
                // (keeping it listed) so the NSTID advances.
                d.handle_inv_ack(Cycle(tid), Tid(tid), line, NodeId(2), true);
            }
        },
    );
}

fn bench_cache_ops() {
    bench(
        "cache/load_store_commit_1k_lines",
        20,
        20,
        || HierCache::new(CacheConfig::default()),
        |mut cache| {
            for l in 0..1024u64 {
                cache.fill(LineAddr(l), LineValues::fresh(8), false);
                cache.load(LineAddr(l), 0);
                cache.store(LineAddr(l), 1);
            }
            cache.commit_tx(Tid(1));
        },
    );
    let mut cache = HierCache::new(CacheConfig::default());
    cache.fill(LineAddr(7), LineValues::fresh(8), false);
    let start = Instant::now();
    let iters = 1_000_000u64;
    for _ in 0..iters {
        std::hint::black_box(cache.load(LineAddr(7), 3));
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "{:<45} {per:>12.1} ns/iter  ({iters} iters)",
        "cache/hit_path"
    );
}

fn bench_mesh() {
    bench(
        "mesh/64_node_crossing_sends",
        20,
        200,
        || Mesh2D::new(64, NetworkConfig::default()),
        |mut m| {
            let mut t = Cycle(0);
            for i in 0..64u16 {
                t = m.send(t, NodeId(i), NodeId(63 - i), 32);
            }
            std::hint::black_box(t);
        },
    );
}

fn main() {
    println!("protocol_micro — medians, release profile recommended\n");
    bench_skip_vector();
    bench_directory_commit();
    bench_cache_ops();
    bench_mesh();
}
