//! Criterion micro-benchmarks of the protocol hot paths: the skip
//! vector, the directory commit flow, the speculative cache, and mesh
//! routing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tcc_cache::{CacheConfig, HierCache};
use tcc_directory::{DirConfig, Directory, SkipVector};
use tcc_network::{Mesh2D, NetworkConfig};
use tcc_types::{Cycle, DirId, LineAddr, LineValues, NodeId, Tid, WordMask};

fn bench_skip_vector(c: &mut Criterion) {
    c.bench_function("skip_vector/1024_out_of_order_skips", |b| {
        b.iter_batched(
            SkipVector::new,
            |mut sv| {
                // Buffer skips high-to-low, then release the run.
                for t in (1..1024u64).rev() {
                    sv.buffer_skip(Tid(t));
                }
                sv.buffer_skip(Tid(0));
                assert_eq!(sv.now_serving(), Tid(1024));
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_directory_commit(c: &mut Criterion) {
    c.bench_function("directory/mark_commit_ack_cycle", |b| {
        b.iter_batched(
            || {
                let mut d = Directory::new(DirConfig { id: DirId(0), words_per_line: 8 });
                for i in 0..64u64 {
                    d.handle_load(LineAddr(i), NodeId(1), 0);
                    d.handle_load(LineAddr(i), NodeId(2), 0);
                }
                d
            },
            |mut d| {
                for tid in 0..32u64 {
                    let line = LineAddr(tid % 64);
                    d.handle_probe(Tid(tid), NodeId(1), true);
                    d.handle_mark(Cycle(tid), Tid(tid), line, WordMask::single(0), NodeId(1));
                    d.handle_commit(Cycle(tid), Tid(tid), NodeId(1), 1);
                    // N2 shares every line: acknowledge its invalidation
                    // (keeping it listed) so the NSTID advances.
                    d.handle_inv_ack(Cycle(tid), Tid(tid), line, NodeId(2), true);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_cache_ops(c: &mut Criterion) {
    c.bench_function("cache/load_store_commit_1k_lines", |b| {
        b.iter_batched(
            || HierCache::new(CacheConfig::default()),
            |mut cache| {
                for l in 0..1024u64 {
                    cache.fill(LineAddr(l), LineValues::fresh(8), false);
                    cache.load(LineAddr(l), 0);
                    cache.store(LineAddr(l), 1);
                }
                cache.commit_tx(Tid(1));
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("cache/hit_path", |b| {
        let mut cache = HierCache::new(CacheConfig::default());
        cache.fill(LineAddr(7), LineValues::fresh(8), false);
        b.iter(|| {
            std::hint::black_box(cache.load(LineAddr(7), 3));
        });
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh/64_node_crossing_sends", |b| {
        b.iter_batched(
            || Mesh2D::new(64, NetworkConfig::default()),
            |mut m| {
                let mut t = Cycle(0);
                for i in 0..64u16 {
                    t = m.send(t, NodeId(i), NodeId(63 - i), 32);
                }
                std::hint::black_box(t);
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_skip_vector, bench_directory_commit, bench_cache_ops, bench_mesh
}
criterion_main!(micro);
