//! Run-report plumbing shared by the harness binaries.
//!
//! Every binary writes a `BENCH_<name>.json` run report (schema
//! `tcc-run-report/v1`, see [`tcc_trace::report`]) into the current
//! directory alongside its text output, so figure regeneration always
//! leaves a machine-readable artifact behind. Setting
//! `TCC_CHROME_TRACE=<dir>` additionally captures full event rings and
//! writes one Chrome `trace_event` file per simulated run into `<dir>`
//! (openable in chrome://tracing or Perfetto).

use std::path::Path;

use tcc_core::SimResult;
use tcc_trace::{Json, RunReport, TraceConfig};

use crate::HarnessArgs;

/// The trace configuration harness binaries run with: metrics always
/// (counters and histograms are cheap and feed the run report), full
/// event rings only when a Chrome trace was requested via
/// `TCC_CHROME_TRACE`.
#[must_use]
pub fn trace_config() -> TraceConfig {
    if chrome_dir().is_some() {
        TraceConfig::full()
    } else {
        TraceConfig::metrics_only()
    }
}

fn chrome_dir() -> Option<String> {
    std::env::var("TCC_CHROME_TRACE")
        .ok()
        .filter(|v| !v.is_empty())
}

/// Writes the run's event trace as `<TCC_CHROME_TRACE>/trace_<tag>.json`
/// when Chrome tracing is active; otherwise does nothing.
///
/// # Panics
///
/// Panics if the trace directory or file cannot be written.
pub fn maybe_write_chrome(r: &SimResult, tag: &str) {
    let Some(dir) = chrome_dir() else { return };
    let Some(trace) = &r.trace else { return };
    std::fs::create_dir_all(&dir).expect("create chrome-trace dir");
    let path = Path::new(&dir).join(format!("trace_{tag}.json"));
    std::fs::write(&path, trace.to_chrome_trace()).expect("write chrome trace");
    eprintln!("  wrote {}", path.display());
}

/// The `harness` header block every run report carries.
#[must_use]
pub fn harness_json(args: &HarnessArgs, seed: u64) -> Json {
    let mut fields = vec![
        ("seed", Json::from(seed)),
        ("scale", if args.smoke { "smoke" } else { "full" }.into()),
        (
            "filter",
            args.filter
                .as_ref()
                .map_or(Json::Null, |f| f.clone().into()),
        ),
    ];
    // Recorded only when the parallel engine is on, so default
    // (classic-engine) artifacts stay byte-identical across versions.
    if args.workers() > 1 {
        fields.push(("workers", (args.workers() as u64).into()));
    }
    Json::obj(fields)
}

/// Machine-wide cycle breakdown (sum over processors) of one run.
#[must_use]
pub fn breakdown_json(r: &SimResult) -> Json {
    let b = r.aggregate();
    Json::obj(vec![
        ("useful", b.useful.into()),
        ("cache_miss", b.cache_miss.into()),
        ("commit", b.commit.into()),
        ("violation", b.violation.into()),
        ("idle", b.idle.into()),
    ])
}

/// Core scalar results of one run, including the full metrics snapshot
/// when the run was traced.
#[must_use]
pub fn result_json(r: &SimResult) -> Json {
    let mut fields = vec![
        ("total_cycles", Json::from(r.total_cycles)),
        ("commits", r.commits.into()),
        ("violations", r.violations.into()),
        ("instructions", r.instructions.into()),
        ("breakdown", breakdown_json(r)),
    ];
    if let Some(t) = &r.trace {
        fields.push(("metrics", t.metrics_json()));
    }
    Json::obj(fields)
}

/// One named histogram from a traced run, as a JSON fragment
/// (`Json::Null` when the run was untraced or never sampled it).
#[must_use]
pub fn histogram_of(r: &SimResult, name: &str) -> Json {
    r.trace
        .as_ref()
        .and_then(|t| t.metrics.histogram(name))
        .map_or(Json::Null, tcc_trace::report::histogram_json)
}

/// Accumulates reliable-transport recovery counters across benchmark
/// runs for the additive `transport` run-report section. Benchmarks
/// run with the transport off by default, so the section reports
/// `enabled: false` with zero counters — the fields exist so lossy-wire
/// sweeps diff cleanly against clean-wire baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportTotals {
    enabled: bool,
    retransmits: u64,
    dup_drops: u64,
    timeout_fires: u64,
    acks: u64,
    stalls: u64,
}

impl TransportTotals {
    /// Folds one run's transport stats in (no-op when the run had the
    /// transport off).
    pub fn add(&mut self, r: &SimResult) {
        if let Some(t) = &r.transport {
            self.enabled = true;
            self.retransmits += t.retransmits;
            self.dup_drops += t.dup_drops;
            self.timeout_fires += t.timeout_fires;
            self.acks += t.acks;
        }
    }

    /// Records a run that ended in a typed stall
    /// ([`tcc_core::RunError::Stalled`]).
    pub fn add_stall(&mut self) {
        self.stalls += 1;
    }

    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("enabled", self.enabled.into()),
            ("retransmits", self.retransmits.into()),
            ("dup_drops", self.dup_drops.into()),
            ("timeout_fires", self.timeout_fires.into()),
            ("acks", self.acks.into()),
            ("stalls", self.stalls.into()),
        ])
    }
}

/// Writes `BENCH_<bench>.json` into the current directory.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_report(report: &RunReport) {
    let path = report.write_to(Path::new(".")).expect("write run report");
    eprintln!("  wrote {}", path.display());
}
