//! Production-traffic replay bench (`BENCH_traffic.json`).
//!
//! Sweeps the four [`tcc_traffic::scenarios`] presets across thread
//! counts on *both* backends — the cycle-accurate simulator and the
//! real-thread STM — replaying the identical synthesized trace
//! open-loop, and reports offered vs sustained throughput plus
//! p50/p99/p999 commit latency for every cell. A separate `trace`
//! section synthesizes a million-transaction trace, checksums it, and
//! proves the sharded replay fingerprint is identical at 1 and N
//! workers (the determinism gate CI's `traffic-smoke` holds on the
//! small golden trace).
//!
//! Honest-measurement note: STM cells on a host with fewer CPUs than
//! replay threads measure open-loop queueing under time-slicing, not
//! parallel drain; the `host` block records `host_cpus` so readers can
//! weigh the latency tails accordingly.

use std::time::Instant;

use tcc_bench::report::write_report;
use tcc_bench::HarnessArgs;
use tcc_trace::report::{histogram_json, host_cpus};
use tcc_trace::{Histogram, Json, RunReport};
use tcc_traffic::{replay, scenarios, synthesize, Trace};

/// Simulator processor counts swept per scenario.
const SIM_PROCS: [usize; 3] = [2, 4, 8];
/// STM thread counts swept per scenario.
const STM_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Simulator cycles per trace tick: the knob that sets offered load
/// relative to machine speed (smaller = hotter).
const CYCLES_PER_TICK: u64 = 2;
/// STM nanoseconds per trace tick at full scale.
const NS_PER_TICK: u64 = 40;

fn latency_summary(h: &Histogram) -> Json {
    histogram_json(h)
}

fn sim_cell(trace: &Trace, procs: usize, limit: usize) -> Json {
    let r = replay::run_sim_replay(trace, procs, CYCLES_PER_TICK, limit).expect("valid sim config");
    println!(
        "    sim  procs={procs}: offered {:>8.1} tx/Mcycle, sustained {:>8.1} tx/Mcycle, commit p50/p99/p999 {}/{}/{} cyc",
        r.offered_tx_per_mcycle,
        r.sustained_tx_per_mcycle,
        r.commit_latency.percentile(50.0),
        r.commit_latency.percentile(99.0),
        r.commit_latency.percentile(99.9),
    );
    Json::obj(vec![
        ("procs", (procs as u64).into()),
        ("txs", r.result.commits.into()),
        ("total_cycles", r.result.total_cycles.into()),
        ("offered_tx_per_mcycle", r.offered_tx_per_mcycle.into()),
        ("sustained_tx_per_mcycle", r.sustained_tx_per_mcycle.into()),
        ("commit_latency_cycles", latency_summary(&r.commit_latency)),
    ])
}

fn stm_cell(trace: &Trace, threads: usize, ns_per_tick: u64, limit: usize) -> Json {
    let r = replay::run_stm_replay(trace, threads, ns_per_tick, limit);
    println!(
        "    stm  threads={threads}: offered {:>9.0} tx/s, sustained {:>9.0} tx/s, latency p50/p99/p999 {}/{}/{} ns",
        r.offered_tx_per_s,
        r.sustained_tx_per_s,
        r.latency_ns.percentile(50.0),
        r.latency_ns.percentile(99.0),
        r.latency_ns.percentile(99.9),
    );
    Json::obj(vec![
        ("threads", (threads as u64).into()),
        ("txs", r.completed.into()),
        ("wall_ms", (r.wall_s * 1e3).into()),
        ("offered_tx_per_s", r.offered_tx_per_s.into()),
        ("sustained_tx_per_s", r.sustained_tx_per_s.into()),
        ("latency_ns", latency_summary(&r.latency_ns)),
    ])
}

/// The million-transaction determinism proof: synthesize once, verify
/// the checksum through a serialization roundtrip, fingerprint the
/// replay at 1 and 4 workers, and record that they are identical.
fn million_trace_section(smoke: bool) -> Json {
    let n: usize = if smoke { 50_000 } else { 1_000_000 };
    let cfg = scenarios::bursty_hot_migration();
    let t0 = Instant::now();
    let trace = synthesize(&cfg, n).expect("valid preset");
    let synth_s = t0.elapsed().as_secs_f64();
    let bytes = trace.to_bytes();
    let t1 = Instant::now();
    let verified = Trace::from_bytes(&bytes).expect("checksum verification");
    let verify_s = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let fp1 = replay::replay_fingerprint(&verified, 1);
    let replay1_s = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let fp4 = replay::replay_fingerprint(&verified, 4);
    let replay4_s = t3.elapsed().as_secs_f64();
    assert_eq!(fp1, fp4, "sharded replay fingerprint diverged");
    assert_eq!(fp1, verified.fingerprint());
    println!(
        "\ntrace determinism: {n} txs, {} bytes ({:.1} B/tx), synth {synth_s:.2}s, verify {verify_s:.2}s, \
         replay fp 1w {replay1_s:.2}s == 4w {replay4_s:.2}s: {}",
        bytes.len(),
        bytes.len() as f64 / n as f64,
        fp1 == fp4,
    );
    Json::obj(vec![
        ("schema", tcc_traffic::TRACE_SCHEMA.into()),
        ("scenario", verified.scenario().into()),
        ("records", verified.n_records().into()),
        ("encoded_bytes", (bytes.len() as u64).into()),
        ("bytes_per_tx", (bytes.len() as f64 / n as f64).into()),
        ("checksum", format!("{:016x}", verified.checksum()).into()),
        ("fingerprint_workers_1", fp1.into()),
        ("fingerprint_workers_4", fp4.clone().into()),
        ("fingerprints_identical", true.into()),
        ("synth_s", synth_s.into()),
        ("verify_s", verify_s.into()),
        ("replay_1w_s", replay1_s.into()),
        ("replay_4w_s", replay4_s.into()),
    ])
}

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.smoke;
    // Per-cell record budgets: the simulator is ~10^4 cycles/tx so it
    // gets fewer records than the real-thread STM replay.
    let sim_limit: usize = if smoke { 300 } else { 3_000 };
    let stm_limit: usize = if smoke { 2_000 } else { 40_000 };
    // Smoke replays shrink the time scale so CI stays fast.
    let ns_per_tick: u64 = if smoke { 5 } else { NS_PER_TICK };
    let cpus = host_cpus();

    let mut report = RunReport::new("traffic");
    report.set_workers(*STM_THREADS.iter().max().expect("non-empty") as u64);
    report.set(
        "harness",
        Json::obj(vec![
            ("seed", scenarios::TRAFFIC_SEED.into()),
            ("scale", if smoke { "smoke" } else { "full" }.into()),
            ("sim_txs_per_cell", (sim_limit as u64).into()),
            ("stm_txs_per_cell", (stm_limit as u64).into()),
            ("cycles_per_tick", CYCLES_PER_TICK.into()),
            ("ns_per_tick", ns_per_tick.into()),
            (
                "sim_procs",
                Json::Arr(SIM_PROCS.iter().map(|&p| (p as u64).into()).collect()),
            ),
            (
                "stm_threads",
                Json::Arr(STM_THREADS.iter().map(|&t| (t as u64).into()).collect()),
            ),
        ]),
    );

    println!("production-traffic replay — {cpus} host CPU(s)");
    let mut scenarios_json: Vec<Json> = Vec::new();
    for cfg in scenarios::all() {
        if !args.selects(&cfg.scenario) {
            continue;
        }
        println!("\n{}", cfg.scenario);
        let trace = synthesize(&cfg, sim_limit.max(stm_limit)).expect("valid preset");
        let sim_points: Vec<Json> = SIM_PROCS
            .iter()
            .map(|&procs| sim_cell(&trace, procs, sim_limit))
            .collect();
        let stm_points: Vec<Json> = STM_THREADS
            .iter()
            .map(|&threads| stm_cell(&trace, threads, ns_per_tick, stm_limit))
            .collect();
        scenarios_json.push(Json::obj(vec![
            ("scenario", cfg.scenario.as_str().into()),
            ("trace_fingerprint", trace.fingerprint().into()),
            ("simulator", Json::Arr(sim_points)),
            ("stm", Json::Arr(stm_points)),
        ]));
    }
    report.set("scenarios", Json::Arr(scenarios_json));
    report.set("trace", million_trace_section(smoke));
    write_report(&report);
}
