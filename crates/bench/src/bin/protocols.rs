//! Cross-protocol comparison harness (`BENCH_protocols.json`).
//!
//! Runs the same synthetic workloads through every coherence backend
//! behind the `Protocol` trait — scalable TCC, the serialized-commit
//! baseline, and timestamp-ordered Tardis — with the serializability
//! checker as oracle, and reports per cell: makespan, commits,
//! violations, traffic volume, and the message-census counters that
//! separate the protocols (invalidation multicasts, write-set
//! broadcasts, lease renewals).
//!
//! The headline number this artifact exists to pin down: on the
//! sharer-heavy workload, TCC pays per-sharer invalidations, the
//! baseline broadcasts whole write-sets to every node, and Tardis
//! moves **zero** of either — stale sharers just commit earlier in
//! logical time.
//!
//! Modes:
//!
//! * `protocols` — run the sweep, write `BENCH_protocols.json`.
//! * `protocols --check <golden.json>` — additionally assert exact
//!   result-fingerprint identity against a checked-in golden; exits
//!   non-zero on any mismatch.
//! * `protocols --write-golden <golden.json>` — regenerate the golden
//!   after an intentional behaviour change.

use tcc_bench::report::write_report;
use tcc_core::{Simulator, SystemConfig, ThreadProgram, Transaction, TxOp, WorkItem};
use tcc_trace::{Json, RunReport};
use tcc_types::{Addr, ProtocolKind};

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(Transaction::new(ops))
}

/// One writer repeatedly updating a small set of hot lines that every
/// other processor keeps re-reading: the invalidation-traffic worst
/// case for TCC, the broadcast worst case for the baseline, and the
/// showcase for Tardis's zero-invalidation logical-time reads.
fn sharer_heavy(n: usize, rounds: u64) -> Vec<ThreadProgram> {
    let hot: Vec<Addr> = (0..4u64).map(|i| Addr(0x40 * (i + 1))).collect();
    (0..n as u64)
        .map(|p| {
            let items: Vec<WorkItem> = (0..rounds)
                .map(|_| {
                    if p == 0 {
                        tx(hot.iter().map(|&a| TxOp::Store(a)).collect())
                    } else {
                        let mut ops: Vec<TxOp> = hot.iter().map(|&a| TxOp::Load(a)).collect();
                        ops.push(TxOp::Compute(20 + 7 * p as u32));
                        tx(ops)
                    }
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

/// Every processor read-modify-writes one shared counter line: maximal
/// commit-order contention, minimal data.
fn hot_line(n: usize, rounds: u64) -> Vec<ThreadProgram> {
    (0..n as u64)
        .map(|p| {
            let items: Vec<WorkItem> = (0..rounds)
                .map(|_| {
                    tx(vec![
                        TxOp::Load(Addr(0x40)),
                        TxOp::Compute(15 + 9 * p as u32),
                        TxOp::Store(Addr(0x40)),
                    ])
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

/// Every processor works a private line set: the embarrassingly
/// parallel case where the protocols should only differ in fixed
/// per-commit overhead.
fn disjoint(n: usize, rounds: u64) -> Vec<ThreadProgram> {
    (0..n as u64)
        .map(|p| {
            let base = 0x1000 * (p + 1);
            let items: Vec<WorkItem> = (0..rounds)
                .map(|r| {
                    tx(vec![
                        TxOp::Load(Addr(base + 0x40 * (r % 3))),
                        TxOp::Compute(30),
                        TxOp::Store(Addr(base + 0x40 * (r % 3))),
                    ])
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect()
}

struct Workload {
    name: &'static str,
    cpus: usize,
    programs: fn(usize, u64) -> Vec<ThreadProgram>,
    rounds: u64,
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "sharer-heavy",
        cpus: 8,
        programs: sharer_heavy,
        rounds: 6,
    },
    Workload {
        name: "hot-line",
        cpus: 4,
        programs: hot_line,
        rounds: 8,
    },
    Workload {
        name: "disjoint",
        cpus: 8,
        programs: disjoint,
        rounds: 6,
    },
];

struct Measurement {
    cell: String,
    protocol: ProtocolKind,
    total_cycles: u64,
    commits: u64,
    violations: u64,
    traffic_bytes: u64,
    messages: u64,
    invalidations: u64,
    broadcasts: u64,
    renews: u64,
    fingerprint: String,
}

fn census_count(census: &[(&'static str, u64)], kind: &str) -> u64 {
    census
        .iter()
        .find(|&&(k, _)| k == kind)
        .map_or(0, |&(_, v)| v)
}

fn run_cell(w: &Workload, protocol: ProtocolKind) -> Measurement {
    let mut cfg = SystemConfig::with_procs(w.cpus);
    cfg.check_serializability = true;
    let r = Simulator::builder(cfg)
        .protocol(protocol)
        .programs((w.programs)(w.cpus, w.rounds))
        .build()
        .expect("valid config")
        .run();
    r.assert_serializable();
    let census = r.traffic.message_census();
    Measurement {
        cell: format!("{}/{protocol}", w.name),
        protocol,
        total_cycles: r.total_cycles,
        commits: r.commits,
        violations: r.violations,
        traffic_bytes: r.traffic.total_bytes(),
        messages: census.iter().map(|&(_, c)| c).sum(),
        invalidations: census_count(&census, "Invalidate"),
        broadcasts: census_count(&census, "BaselineCommit"),
        renews: census_count(&census, "TsRenew"),
        fingerprint: r.fingerprint(),
    }
}

fn measurement_json(m: &Measurement) -> Json {
    Json::obj(vec![
        ("cell", Json::from(m.cell.clone())),
        ("protocol", m.protocol.as_str().into()),
        ("total_cycles", m.total_cycles.into()),
        ("commits", m.commits.into()),
        ("violations", m.violations.into()),
        ("traffic_bytes", m.traffic_bytes.into()),
        ("messages", m.messages.into()),
        ("invalidations", m.invalidations.into()),
        ("broadcasts", m.broadcasts.into()),
        ("renews", m.renews.into()),
        ("fingerprint", m.fingerprint.clone().into()),
    ])
}

fn golden_json(cells: &[Measurement]) -> Json {
    Json::obj(vec![
        ("schema", "tcc-protocols-golden/v1".into()),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("cell", Json::from(m.cell.clone())),
                            ("fingerprint", m.fingerprint.clone().into()),
                            ("total_cycles", m.total_cycles.into()),
                            ("commits", m.commits.into()),
                            ("invalidations", m.invalidations.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn check_golden(path: &str, cells: &[Measurement]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let golden = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(Json::Arr(want)) = golden.get("cells") else {
        return Err(format!("{path}: no cells array"));
    };
    if want.len() != cells.len() {
        return Err(format!(
            "{path}: golden has {} cells, run produced {}",
            want.len(),
            cells.len()
        ));
    }
    for (w, got) in want.iter().zip(cells) {
        let cell = w.get("cell").and_then(Json::as_str).unwrap_or("?");
        if cell != got.cell {
            return Err(format!(
                "cell order mismatch: golden {cell}, run {}",
                got.cell
            ));
        }
        let want_fp = w.get("fingerprint").and_then(Json::as_str).unwrap_or("?");
        if want_fp != got.fingerprint {
            return Err(format!(
                "{cell}: result fingerprint changed: golden {want_fp}, run {} \
                 (simulation results must be byte-identical)",
                got.fingerprint
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut check: Option<String> = None;
    let mut write_golden: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--check" => check = iter.next(),
            "--write-golden" => write_golden = iter.next(),
            _ => {}
        }
    }

    let mut measured = Vec::new();
    println!(
        "{:<26} {:>9} {:>8} {:>6} {:>10} {:>6} {:>7} {:>6}  fingerprint",
        "cell", "cycles", "commits", "viols", "bytes", "inval", "bcast", "renew"
    );
    for w in &WORKLOADS {
        for protocol in ProtocolKind::ALL {
            let m = run_cell(w, protocol);
            println!(
                "{:<26} {:>9} {:>8} {:>6} {:>10} {:>6} {:>7} {:>6}  {}",
                m.cell,
                m.total_cycles,
                m.commits,
                m.violations,
                m.traffic_bytes,
                m.invalidations,
                m.broadcasts,
                m.renews,
                m.fingerprint
            );
            measured.push(m);
        }
    }

    // The property this harness exists to witness: Tardis moves zero
    // invalidations and zero write-set broadcasts on every workload.
    for m in measured
        .iter()
        .filter(|m| m.protocol == ProtocolKind::Tardis)
    {
        assert_eq!(m.invalidations, 0, "{}: tardis sent invalidations", m.cell);
        assert_eq!(m.broadcasts, 0, "{}: tardis broadcast write-sets", m.cell);
    }

    let mut report = RunReport::new("protocols");
    report.set(
        "cells",
        Json::Arr(measured.iter().map(measurement_json).collect()),
    );
    write_report(&report);

    if let Some(path) = write_golden {
        std::fs::write(&path, golden_json(&measured).to_pretty()).expect("write golden");
        eprintln!("  wrote {path}");
    }
    if let Some(path) = check {
        match check_golden(&path, &measured) {
            Ok(()) => println!(
                "protocols-smoke: OK ({} cells match {path})",
                measured.len()
            ),
            Err(e) => {
                eprintln!("protocols-smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
