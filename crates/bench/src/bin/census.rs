//! Message census: how often each Table 1 message type crosses the
//! network, per application, per committed transaction — the traffic
//! vocabulary of the protocol made visible.

use tcc_bench::report::{harness_json, write_report};
use tcc_bench::{run_app, HarnessArgs, HARNESS_SEED};
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("census");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let kinds = [
        "LoadRequest",
        "LoadReply",
        "TidRequest",
        "TidReply",
        "Skip",
        "Probe",
        "ProbeReply",
        "Mark",
        "Commit",
        "Abort",
        "WriteBack",
        "Flush",
        "DataRequest",
        "Invalidate",
        "InvAck",
    ];
    let mut headers = vec!["Application"];
    headers.extend(kinds);
    let mut t = TextTable::new(headers);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 16, args.scale(), |_| {});
        let census: std::collections::HashMap<&str, u64> =
            r.traffic.message_census().into_iter().collect();
        let per_commit = |k: &str| -> String {
            let n = census.get(k).copied().unwrap_or(0);
            format!("{:.2}", n as f64 / r.commits.max(1) as f64)
        };
        let mut row = vec![app.name.to_string()];
        row.extend(kinds.iter().map(|k| per_commit(k)));
        t.row(row);
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("commits", r.commits.into()),
            (
                "messages",
                Json::Obj(
                    kinds
                        .iter()
                        .map(|&k| (k.to_string(), census.get(k).copied().unwrap_or(0).into()))
                        .collect(),
                ),
            ),
        ]));
        eprintln!("  done: {}", app.name);
    }
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("Remote messages per committed transaction (16 CPUs)\n");
    println!("{}", t.render());
    println!("Reading: every commit skips ~all remote directories (Skip ~15);");
    println!("probes/marks/commits go only to the read/write-set directories;");
    println!("radix's Mark count reflects its all-directory write-sets.");
}
