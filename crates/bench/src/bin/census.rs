//! Message census: how often each Table 1 message type crosses the
//! network, per application, per committed transaction — the traffic
//! vocabulary of the protocol made visible.

use tcc_bench::{run_app, HarnessArgs};
use tcc_stats::render::TextTable;
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let kinds = [
        "LoadRequest",
        "LoadReply",
        "TidRequest",
        "TidReply",
        "Skip",
        "Probe",
        "ProbeReply",
        "Mark",
        "Commit",
        "Abort",
        "WriteBack",
        "Flush",
        "DataRequest",
        "Invalidate",
        "InvAck",
    ];
    let mut headers = vec!["Application"];
    headers.extend(kinds);
    let mut t = TextTable::new(headers);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 16, args.scale(), |_| {});
        let census: std::collections::HashMap<&str, u64> =
            r.traffic.message_census().into_iter().collect();
        let per_commit = |k: &str| -> String {
            let n = census.get(k).copied().unwrap_or(0);
            format!("{:.2}", n as f64 / r.commits.max(1) as f64)
        };
        let mut row = vec![app.name.to_string()];
        row.extend(kinds.iter().map(|k| per_commit(k)));
        t.row(row);
        eprintln!("  done: {}", app.name);
    }
    println!("Remote messages per committed transaction (16 CPUs)\n");
    println!("{}", t.render());
    println!("Reading: every commit skips ~all remote directories (Skip ~15);");
    println!("probes/marks/commits go only to the read/write-set directories;");
    println!("radix's Mark count reflects its all-directory write-sets.");
}
