//! Regenerates Table 3: application transactional characteristics at
//! the paper's reference machine size (32 processors).

use tcc_bench::report::{harness_json, write_report};
use tcc_bench::{run_app, HarnessArgs, HARNESS_SEED};
use tcc_stats::render::TextTable;
use tcc_stats::table3::Table3Row;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("table3");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut t = TextTable::new(vec![
        "Application",
        "Input",
        "TxSize p90 (inst)",
        "WrSet p90 (KB)",
        "RdSet p90 (KB)",
        "Ops/word p90",
        "Dirs/commit p90",
        "WorkSet p90 (entries)",
        "Occupancy p90 (cyc)",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 32, args.scale(), |_| {});
        let row = Table3Row::from_result(app.name, &r);
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("input", app.input.into()),
            ("tx_size_p90", row.tx_size_p90.into()),
            ("write_set_kb_p90", row.write_set_kb_p90.into()),
            ("read_set_kb_p90", row.read_set_kb_p90.into()),
            ("ops_per_word_p90", row.ops_per_word_p90.into()),
            ("dirs_per_commit_p90", row.dirs_per_commit_p90.into()),
            ("working_set_p90", row.working_set_p90.into()),
            ("occupancy_p90", row.occupancy_p90.into()),
        ]));
        t.row(vec![
            row.name.clone(),
            app.input.to_string(),
            format!("{:.0}", row.tx_size_p90),
            format!("{:.2}", row.write_set_kb_p90),
            format!("{:.2}", row.read_set_kb_p90),
            format!("{:.0}", row.ops_per_word_p90),
            format!("{:.0}", row.dirs_per_commit_p90),
            format!("{:.0}", row.working_set_p90),
            format!("{:.0}", row.occupancy_p90),
        ]);
        csv.push(vec![
            row.name.clone(),
            format!("{:.0}", row.tx_size_p90),
            format!("{:.4}", row.write_set_kb_p90),
            format!("{:.4}", row.read_set_kb_p90),
            format!("{:.2}", row.ops_per_word_p90),
            format!("{:.0}", row.dirs_per_commit_p90),
            format!("{:.0}", row.working_set_p90),
            format!("{:.0}", row.occupancy_p90),
        ]);
        eprintln!("  done: {}", app.name);
    }
    args.write_csv(
        "table3",
        &[
            "app",
            "tx_size_p90",
            "wr_set_kb_p90",
            "rd_set_kb_p90",
            "ops_per_word_p90",
            "dirs_per_commit_p90",
            "working_set_p90",
            "occupancy_p90",
        ],
        &csv,
    );
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("Table 3: application characteristics at 32 processors\n");
    println!("{}", t.render());
    println!("Paper anchors: tx sizes 200..45000 inst; read sets < 16 KB;");
    println!("write sets <= 8 KB; ops/word ~6..640; dirs/commit mostly 1-2");
    println!("(radix: all); working set fits a 2-MB directory cache.");
}
