//! Regenerates Table 3: application transactional characteristics at
//! the paper's reference machine size (32 processors).

use tcc_bench::{run_app, HarnessArgs};
use tcc_stats::render::TextTable;
use tcc_stats::table3::Table3Row;
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut t = TextTable::new(vec![
        "Application",
        "Input",
        "TxSize p90 (inst)",
        "WrSet p90 (KB)",
        "RdSet p90 (KB)",
        "Ops/word p90",
        "Dirs/commit p90",
        "WorkSet p90 (entries)",
        "Occupancy p90 (cyc)",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 32, args.scale(), |_| {});
        let row = Table3Row::from_result(app.name, &r);
        t.row(vec![
            row.name.clone(),
            app.input.to_string(),
            format!("{:.0}", row.tx_size_p90),
            format!("{:.2}", row.write_set_kb_p90),
            format!("{:.2}", row.read_set_kb_p90),
            format!("{:.0}", row.ops_per_word_p90),
            format!("{:.0}", row.dirs_per_commit_p90),
            format!("{:.0}", row.working_set_p90),
            format!("{:.0}", row.occupancy_p90),
        ]);
        csv.push(vec![
            row.name.clone(),
            format!("{:.0}", row.tx_size_p90),
            format!("{:.4}", row.write_set_kb_p90),
            format!("{:.4}", row.read_set_kb_p90),
            format!("{:.2}", row.ops_per_word_p90),
            format!("{:.0}", row.dirs_per_commit_p90),
            format!("{:.0}", row.working_set_p90),
            format!("{:.0}", row.occupancy_p90),
        ]);
        eprintln!("  done: {}", app.name);
    }
    args.write_csv(
        "table3",
        &[
            "app", "tx_size_p90", "wr_set_kb_p90", "rd_set_kb_p90", "ops_per_word_p90",
            "dirs_per_commit_p90", "working_set_p90", "occupancy_p90",
        ],
        &csv,
    );
    println!("Table 3: application characteristics at 32 processors\n");
    println!("{}", t.render());
    println!("Paper anchors: tx sizes 200..45000 inst; read sets < 16 KB;");
    println!("write sets <= 8 KB; ops/word ~6..640; dirs/commit mostly 1-2");
    println!("(radix: all); working set fits a 2-MB directory cache.");
}
