//! Regenerates Figure 9: average remote traffic at each directory, in
//! bytes per instruction, broken down by category, at 64 processors.

use tcc_bench::report::{harness_json, write_report};
use tcc_bench::{run_app, HarnessArgs, HARNESS_SEED};
use tcc_stats::render::TextTable;
use tcc_stats::traffic::TrafficReport;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("fig9");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut t = TextTable::new(vec![
        "Application",
        "Overhead",
        "Miss",
        "Write-back",
        "Commit",
        "Shared",
        "Total B/instr",
        "MB/s @2GHz",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 64, args.scale(), |_| {});
        let rep = TrafficReport::from_result(&r);
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            (
                "bytes_per_instr",
                Json::Obj(
                    rep.per_category
                        .iter()
                        .map(|(k, v)| (k.to_string(), (*v).into()))
                        .collect(),
                ),
            ),
            ("total", rep.total.into()),
            ("mbps_at_2ghz", rep.total_mbps_at_2ghz.into()),
        ]));
        let mut row = vec![app.name.to_string()];
        let mut csv_row = vec![app.name.to_string()];
        for (_, v) in &rep.per_category {
            row.push(format!("{v:.4}"));
            csv_row.push(format!("{v:.6}"));
        }
        row.push(format!("{:.3}", rep.total));
        row.push(format!("{:.1}", rep.total_mbps_at_2ghz));
        csv_row.push(format!("{:.6}", rep.total));
        csv_row.push(format!("{:.2}", rep.total_mbps_at_2ghz));
        t.row(row);
        csv.push(csv_row);
        eprintln!("  done: {}", app.name);
    }
    println!("Figure 9: remote traffic per directory at 64 CPUs (bytes/instruction)\n");
    println!("{}", t.render());
    args.write_csv(
        "fig9",
        &[
            "app",
            "overhead",
            "miss",
            "writeback",
            "commit",
            "shared",
            "total",
            "mbps_2ghz",
        ],
        &csv,
    );
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("Paper anchors: totals range ~0.01..0.6 bytes/instruction;");
    println!("within commodity-interconnect bandwidth (tens to hundreds of MB/s).");
}
