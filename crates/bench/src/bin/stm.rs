//! `tcc-stm` vs coarse-mutex bench (`BENCH_stm.json`).
//!
//! Runs the Zipfian and disjoint-access [`tcc_workloads::stm`] profiles
//! through the real STM on real threads at 1/2/4/8 threads, against a
//! coarse-mutex baseline executing the *identical* deterministic
//! scripts, and records throughput plus per-transaction latency
//! histograms (p50/p99) for both sides. Before measuring anything it
//! runs a bounded pass of the interleaving explorer and refuses to
//! bench a protocol with violations — the artifact itself proves the
//! model checker ran clean.
//!
//! Honest-measurement note: on a host with fewer CPUs than benchmark
//! threads, the thread sweep measures time-slicing (scheduler handoff
//! under a convoying lock vs optimistic progress), not parallel
//! speedup. The `host` block records `host_cpus` and the verdict is
//! stamped with an explicit caveat whenever the winning thread count
//! exceeds it.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use tcc_bench::report::write_report;
use tcc_bench::{HarnessArgs, HARNESS_SEED};
use tcc_stm::explore::{explore, ExploreConfig, ModelSpec, ModelTx};
use tcc_stm::proto::CommitTweaks;
use tcc_stm::{Stm, StmConfig, TVar};
use tcc_trace::report::{histogram_json, host_cpus};
use tcc_trace::{Histogram, Json, RunReport};
use tcc_workloads::stm::{StmOp, StmProfile, StmTx};

/// Thread counts swept per workload.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn profiles() -> Vec<StmProfile> {
    vec![StmProfile::zipfian(256, 0.9), StmProfile::disjoint(64)]
}

/// One measured side (STM or mutex) of one sweep cell.
struct Side {
    wall_s: f64,
    txs: u64,
    latency_ns: Histogram,
}

impl Side {
    fn throughput(&self) -> f64 {
        self.txs as f64 / self.wall_s
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("wall_ms", (self.wall_s * 1e3).into()),
            ("txs", self.txs.into()),
            ("tx_per_s", self.throughput().into()),
            ("latency_ns", histogram_json(&self.latency_ns)),
        ])
    }
}

/// Runs the scripts through the real STM, one OS thread per script.
fn run_stm(scripts: &[Vec<StmTx>], n_cells: usize) -> Side {
    let stm = Stm::with_config(StmConfig::default());
    let cells: Vec<TVar<u64>> = (0..n_cells).map(|_| stm.new_tvar(0u64)).collect();
    let start = Instant::now();
    let handles: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|script| {
            let stm = stm.clone();
            let cells = cells.clone();
            std::thread::spawn(move || {
                let mut h = Histogram::default();
                for tx_script in &script {
                    let t0 = Instant::now();
                    stm.atomically(|tx| {
                        let mut sum = 0u64;
                        for op in &tx_script.ops {
                            match *op {
                                StmOp::Read(c) => sum = sum.wrapping_add(tx.read(&cells[c])?),
                                StmOp::Write(c) => tx.write(&cells[c], sum)?,
                            }
                        }
                        Ok(())
                    });
                    h.record(t0.elapsed().as_nanos() as u64);
                }
                h
            })
        })
        .collect();
    let mut latency = Histogram::default();
    for h in handles {
        latency.merge(&h.join().expect("stm bench thread panicked"));
    }
    Side {
        wall_s: start.elapsed().as_secs_f64(),
        txs: latency.count(),
        latency_ns: latency,
    }
}

/// The baseline: identical scripts and arithmetic, one global
/// `std::sync::Mutex` around the whole cell array, each transaction one
/// critical section.
fn run_mutex(scripts: &[Vec<StmTx>], n_cells: usize) -> Side {
    let cells = Arc::new(Mutex::new(vec![0u64; n_cells]));
    let start = Instant::now();
    let handles: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|script| {
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || {
                let mut h = Histogram::default();
                for tx_script in &script {
                    let t0 = Instant::now();
                    {
                        let mut cells = cells.lock().expect("baseline mutex poisoned");
                        let mut sum = 0u64;
                        for op in &tx_script.ops {
                            match *op {
                                StmOp::Read(c) => sum = sum.wrapping_add(cells[c]),
                                StmOp::Write(c) => cells[c] = sum,
                            }
                        }
                    }
                    h.record(t0.elapsed().as_nanos() as u64);
                }
                h
            })
        })
        .collect();
    let mut latency = Histogram::default();
    for h in handles {
        latency.merge(&h.join().expect("mutex bench thread panicked"));
    }
    Side {
        wall_s: start.elapsed().as_secs_f64(),
        txs: latency.count(),
        latency_ns: latency,
    }
}

/// Pre-flight: a bounded explorer pass over a contended 2-thread model.
/// Violations abort the bench — a broken protocol's throughput is
/// meaningless.
fn preflight_explore(smoke: bool) -> Json {
    let tx = |reads: &[usize], writes: &[usize]| ModelTx {
        reads: reads.to_vec(),
        writes: writes.to_vec(),
    };
    let spec = ModelSpec {
        n_cells: 2,
        shards: 2,
        vendor_slots: 2,
        threads: vec![
            vec![tx(&[0], &[0, 1]), tx(&[1], &[0])],
            vec![tx(&[0, 1], &[1]), tx(&[0], &[0])],
        ],
        starvation_threshold: 2,
        tweaks: CommitTweaks::default(),
    };
    let cfg = if smoke {
        ExploreConfig {
            max_runs: 200,
            pair_runs: 64,
            random_runs: 32,
            ..ExploreConfig::default()
        }
    } else {
        ExploreConfig::default()
    };
    let report = explore(&spec, &cfg);
    assert!(
        report.violations.is_empty(),
        "refusing to bench: explorer found serializability violations: {:?}",
        report.violations
    );
    println!(
        "  explorer: {} schedules, 0 violations ({} commits, {} conflicts)",
        report.runs, report.commits, report.conflicts
    );
    Json::obj(vec![
        ("runs", (report.runs as u64).into()),
        ("violations", 0u64.into()),
        ("commits", report.commits.into()),
        ("conflicts", report.conflicts.into()),
    ])
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(HARNESS_SEED);
    let txs_per_thread = if args.smoke { 2_000 } else { 20_000 };
    let max_threads = *THREAD_SWEEP.iter().max().expect("non-empty sweep");
    let cpus = host_cpus();

    let mut report = RunReport::new("stm");
    report.set_workers(max_threads as u64);
    report.set(
        "harness",
        Json::obj(vec![
            ("seed", seed.into()),
            ("scale", if args.smoke { "smoke" } else { "full" }.into()),
            ("txs_per_thread", (txs_per_thread as u64).into()),
            (
                "threads",
                Json::Arr(THREAD_SWEEP.iter().map(|&t| (t as u64).into()).collect()),
            ),
        ]),
    );

    println!("tcc-stm vs coarse mutex — {cpus} host CPU(s)");
    report.set("explorer", preflight_explore(args.smoke));

    // Verdict cell: disjoint-access at the top of the thread sweep.
    let mut verdict: Option<(f64, f64)> = None;
    let mut workloads_json: Vec<Json> = Vec::new();
    for profile in profiles() {
        if !args.selects(profile.name) {
            continue;
        }
        println!("\n{} workload", profile.name);
        let mut points: Vec<Json> = Vec::new();
        for &threads in &THREAD_SWEEP {
            let scripts = profile.generate(threads, txs_per_thread, seed);
            let n_cells = profile.cells_for(threads);
            let stm = run_stm(&scripts, n_cells);
            let mutex = run_mutex(&scripts, n_cells);
            let speedup = stm.throughput() / mutex.throughput();
            println!(
                "  threads={threads}: stm {:>10.0} tx/s (p99 {} ns) | mutex {:>10.0} tx/s (p99 {} ns) | stm/mutex {speedup:.2}×",
                stm.throughput(),
                stm.latency_ns.percentile(99.0),
                mutex.throughput(),
                mutex.latency_ns.percentile(99.0),
            );
            if profile.name == "disjoint" && threads == max_threads {
                verdict = Some((stm.throughput(), mutex.throughput()));
            }
            points.push(Json::obj(vec![
                ("threads", (threads as u64).into()),
                ("stm", stm.json()),
                ("mutex", mutex.json()),
                ("stm_over_mutex", speedup.into()),
            ]));
        }
        workloads_json.push(Json::obj(vec![
            ("workload", profile.name.into()),
            ("points", Json::Arr(points)),
        ]));
    }
    report.set("workloads", Json::Arr(workloads_json));

    if let Some((stm_tx_s, mutex_tx_s)) = verdict {
        let beats = stm_tx_s > mutex_tx_s;
        let mut fields = vec![
            ("workload", Json::from("disjoint")),
            ("threads", (max_threads as u64).into()),
            ("stm_tx_per_s", stm_tx_s.into()),
            ("mutex_tx_per_s", mutex_tx_s.into()),
            ("stm_beats_mutex", beats.into()),
        ];
        if cpus < max_threads as u64 {
            fields.push((
                "caveat",
                format!(
                    "generated on a {cpus}-CPU host with {max_threads} benchmark \
                     threads: with no hardware parallelism the futex mutex stays \
                     on its uncontended fast path while the STM pays commit \
                     bookkeeping plus TID-order stalls behind preempted \
                     committers, so this cell measures per-commit overhead under \
                     time-slicing, not the parallel-commit scaling the protocol \
                     buys; regenerate on a multi-core host for a meaningful \
                     verdict"
                )
                .into(),
            ));
        }
        report.set("verdict", Json::obj(fields));
        println!(
            "\nverdict (disjoint @ {max_threads} threads): stm {stm_tx_s:.0} tx/s vs mutex {mutex_tx_s:.0} tx/s — {}",
            if beats { "STM WINS" } else { "mutex wins" }
        );
    }
    write_report(&report);
}
