//! Hermetic scheduler/hot-path performance harness (`BENCH_perf.json`).
//!
//! Runs a fixed set of Figure 7 cells and reports, per cell:
//!
//! * wall-clock (best of `--reps`, default 3),
//! * simulator events per second,
//! * heap allocations (count and bytes) via a counting global
//!   allocator — compiled into *this binary only*, so the tracked
//!   numbers cannot perturb any other build artifact,
//! * the deterministic result fingerprint
//!   ([`tcc_core::SimResult::fingerprint`]).
//!
//! Modes:
//!
//! * `perf` — the full tracked cells (radix across the Figure 7 sweep
//!   plus three 64-CPU apps); writes `BENCH_perf.json`.
//! * `perf --smoke` — small fixed cells for CI.
//! * `perf --smoke --check <golden.json>` — assert fingerprint identity
//!   and allocation counts within tolerance against a checked-in
//!   golden; exits non-zero on any regression.
//! * `perf --smoke --write-golden <golden.json>` — regenerate the
//!   golden after an intentional behaviour change.
//!
//! If `results/BENCH_perf_seed.json` (the committed pre-overhaul
//! reference, measured on the same machine class) is readable, each
//! cell also reports `speedup_vs_seed`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcc_bench::report::write_report;
use tcc_bench::{HarnessArgs, HARNESS_SEED};
use tcc_core::{SimResult, Simulator, SystemConfig};
use tcc_trace::{Json, RunReport};
use tcc_workloads::{apps, AppProfile, Scale};

/// Counting allocator: defers to the system allocator, tallying every
/// allocation. Lives only in this binary.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// One tracked cell: an application at a CPU count and scale.
struct Cell {
    app: AppProfile,
    cpus: usize,
    scale: Scale,
}

impl Cell {
    fn label(&self) -> String {
        let s = match self.scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        };
        format!("{}@{}/{s}", self.app.name, self.cpus)
    }
}

fn tracked_cells(smoke: bool) -> Vec<Cell> {
    let mk = |app: AppProfile, cpus: usize, scale: Scale| Cell { app, cpus, scale };
    if smoke {
        vec![
            mk(apps::radix(), 4, Scale::Smoke),
            mk(apps::radix(), 16, Scale::Smoke),
            // The radix @ 64 machine is the acceptance cell for the
            // allocation gate (`LineValues` interning); tracking it at
            // smoke scale keeps the regression visible in CI.
            mk(apps::radix(), 64, Scale::Smoke),
            mk(apps::specjbb(), 8, Scale::Smoke),
            mk(apps::volrend(), 8, Scale::Smoke),
        ]
    } else {
        vec![
            mk(apps::radix(), 1, Scale::Full),
            mk(apps::radix(), 8, Scale::Full),
            mk(apps::radix(), 16, Scale::Full),
            mk(apps::radix(), 32, Scale::Full),
            mk(apps::radix(), 64, Scale::Full),
            mk(apps::specjbb(), 64, Scale::Full),
            mk(apps::volrend(), 64, Scale::Full),
            mk(apps::equake(), 64, Scale::Full),
        ]
    }
}

struct Measurement {
    label: String,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    alloc_count: u64,
    alloc_bytes: u64,
    fingerprint: String,
    total_cycles: u64,
    commits: u64,
}

fn run_cell(cell: &Cell, reps: usize, args: &HarnessArgs) -> Measurement {
    let run_once = || -> (SimResult, f64, u64, u64) {
        let mut cfg = SystemConfig::with_procs(cell.cpus);
        args.apply_workers(&mut cfg);
        let programs = cell
            .app
            .generate_scaled(cell.cpus, HARNESS_SEED, cell.scale);
        let sim = Simulator::builder(cfg)
            .programs(programs)
            .build()
            .expect("valid config");
        let (a0, b0) = allocs();
        let t0 = Instant::now();
        let r = sim.run();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let (a1, b1) = allocs();
        (r, wall, a1 - a0, b1 - b0)
    };
    let mut best: Option<(SimResult, f64, u64, u64)> = None;
    for _ in 0..reps.max(1) {
        let m = run_once();
        let better = best.as_ref().is_none_or(|b| m.1 < b.1);
        if better {
            best = Some(m);
        }
    }
    let (r, wall_ms, alloc_count, alloc_bytes) = best.expect("at least one rep");
    Measurement {
        label: cell.label(),
        wall_ms,
        events: r.events,
        events_per_sec: r.events as f64 / (wall_ms / 1e3),
        alloc_count,
        alloc_bytes,
        fingerprint: r.fingerprint(),
        total_cycles: r.total_cycles,
        commits: r.commits,
    }
}

fn measurement_json(m: &Measurement, seed_ref: Option<&Json>) -> Json {
    let mut fields = vec![
        ("cell", Json::from(m.label.clone())),
        ("wall_ms", Json::Num(m.wall_ms)),
        ("events", m.events.into()),
        ("events_per_sec", Json::Num(m.events_per_sec)),
        ("alloc_count", m.alloc_count.into()),
        ("alloc_bytes", m.alloc_bytes.into()),
        ("fingerprint", m.fingerprint.clone().into()),
        ("total_cycles", m.total_cycles.into()),
        ("commits", m.commits.into()),
    ];
    if let Some(seed) = seed_ref.and_then(|s| seed_cell_wall(s, &m.label)) {
        fields.push(("seed_wall_ms", Json::Num(seed)));
        fields.push(("speedup_vs_seed", Json::Num(seed / m.wall_ms)));
    }
    Json::obj(fields)
}

/// Looks up a cell's wall-clock in the committed seed reference report.
fn seed_cell_wall(seed: &Json, label: &str) -> Option<f64> {
    let cells = seed.get("cells")?;
    let Json::Arr(arr) = cells else { return None };
    arr.iter()
        .find(|c| c.get("cell").and_then(Json::as_str) == Some(label))
        .and_then(|c| c.get("wall_ms"))
        .and_then(Json::as_f64)
}

fn load_seed_reference() -> Option<Json> {
    let text = std::fs::read_to_string("results/BENCH_perf_seed.json").ok()?;
    Json::parse(&text).ok()
}

/// Allowed relative allocation-count growth before `--check` fails.
const ALLOC_TOLERANCE: f64 = 0.10;

fn check_golden(path: &str, cells: &[Measurement]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let golden = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(Json::Arr(want)) = golden.get("cells") else {
        return Err(format!("{path}: no cells array"));
    };
    if want.len() != cells.len() {
        return Err(format!(
            "{path}: golden has {} cells, run produced {}",
            want.len(),
            cells.len()
        ));
    }
    for (w, got) in want.iter().zip(cells) {
        let cell = w.get("cell").and_then(Json::as_str).unwrap_or("?");
        if cell != got.label {
            return Err(format!(
                "cell order mismatch: golden {cell}, run {}",
                got.label
            ));
        }
        let want_fp = w.get("fingerprint").and_then(Json::as_str).unwrap_or("?");
        if want_fp != got.fingerprint {
            return Err(format!(
                "{cell}: result fingerprint changed: golden {want_fp}, run {} \
                 (simulation results must be byte-identical)",
                got.fingerprint
            ));
        }
        let want_allocs = w
            .get("alloc_count")
            .and_then(Json::as_f64)
            .unwrap_or(f64::MAX);
        let limit = want_allocs * (1.0 + ALLOC_TOLERANCE);
        if got.alloc_count as f64 > limit {
            return Err(format!(
                "{cell}: allocation regression: {} allocs > {:.0} \
                 (golden {want_allocs:.0} + {:.0}% tolerance)",
                got.alloc_count,
                limit,
                ALLOC_TOLERANCE * 100.0
            ));
        }
    }
    Ok(())
}

fn golden_json(cells: &[Measurement]) -> Json {
    Json::obj(vec![
        ("schema", "tcc-perf-golden/v1".into()),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("cell", Json::from(m.label.clone())),
                            ("fingerprint", m.fingerprint.clone().into()),
                            ("alloc_count", m.alloc_count.into()),
                            ("total_cycles", m.total_cycles.into()),
                            ("commits", m.commits.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    // One parse loop for everything: the shared `HarnessArgs` grammar
    // treats any free token as the app filter, which would swallow the
    // value of `--check`/`--write-golden`/`--reps`.
    let mut check: Option<String> = None;
    let mut write_golden: Option<String> = None;
    let mut reps = 3usize;
    let mut smoke = false;
    let mut filter: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--check" => check = iter.next(),
            "--write-golden" => write_golden = iter.next(),
            "--reps" => reps = iter.next().and_then(|v| v.parse().ok()).unwrap_or(3),
            "--smoke" => smoke = true,
            "--workers" => workers = iter.next().and_then(|v| v.parse().ok()),
            other if !other.starts_with("--") => filter = Some(other.to_string()),
            _ => {}
        }
    }
    let args = HarnessArgs {
        filter,
        smoke,
        workers,
        ..HarnessArgs::default()
    };

    let cells = tracked_cells(args.smoke);
    let seed_ref = load_seed_reference();
    let mut measured = Vec::new();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}  fingerprint",
        "cell", "wall ms", "events/s", "allocs", "alloc MB"
    );
    for cell in &cells {
        if !args.selects(cell.app.name) {
            continue;
        }
        let m = run_cell(cell, reps, &args);
        println!(
            "{:<18} {:>10.1} {:>12.0} {:>12} {:>12.1}  {}",
            m.label,
            m.wall_ms,
            m.events_per_sec,
            m.alloc_count,
            m.alloc_bytes as f64 / 1e6,
            m.fingerprint
        );
        measured.push(m);
    }

    let mut report = RunReport::new("perf");
    report.set_workers(args.workers() as u64);
    let mut harness = vec![
        ("seed", Json::from(HARNESS_SEED)),
        ("scale", if args.smoke { "smoke" } else { "full" }.into()),
        ("reps", (reps as u64).into()),
    ];
    // Only recorded for parallel-engine runs, keeping the default
    // (classic-engine) artifact byte-identical across versions.
    if args.workers() > 1 {
        harness.push(("workers", (args.workers() as u64).into()));
    }
    report.set("harness", Json::obj(harness));
    report.set(
        "cells",
        Json::Arr(
            measured
                .iter()
                .map(|m| measurement_json(m, seed_ref.as_ref()))
                .collect(),
        ),
    );
    write_report(&report);

    if let Some(path) = write_golden {
        std::fs::write(&path, golden_json(&measured).to_pretty()).expect("write golden");
        eprintln!("  wrote {path}");
    }
    if let Some(path) = check {
        match check_golden(&path, &measured) {
            Ok(()) => println!("perf-smoke: OK ({} cells match {path})", measured.len()),
            Err(e) => {
                eprintln!("perf-smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
