//! Regenerates Table 2: parameters of the simulated architecture.

use tcc_core::SystemConfig;
use tcc_stats::render::TextTable;

fn main() {
    let c = SystemConfig::default();
    let mut t = TextTable::new(vec!["Feature", "Description"]);
    t.row(vec![
        "CPU".into(),
        format!("single-issue cores, CPI 1.0 ({} default)", c.n_procs),
    ]);
    t.row(vec![
        "L1".into(),
        format!(
            "{}-KB, {}-byte cache line, {}-way associative, {}-cycle latency",
            c.cache.l1_bytes / 1024,
            c.cache.geometry.line_bytes(),
            c.cache.l1_ways,
            c.cache.l1_latency
        ),
    ]);
    t.row(vec![
        "L2".into(),
        format!(
            "{}-KB, {}-byte cache line, {}-way associative, {}-cycle latency",
            c.cache.l2_bytes / 1024,
            c.cache.geometry.line_bytes(),
            c.cache.l2_ways,
            c.cache.l2_latency
        ),
    ]);
    t.row(vec![
        "ICN".into(),
        format!(
            "2D grid topology, {}-cycle link latency (swept 1-8 in Figure 8), {} B/cycle links",
            c.network.link_latency, c.network.bytes_per_cycle
        ),
    ]);
    t.row(vec![
        "Main memory".into(),
        format!("{}-cycle latency", c.mem_latency),
    ]);
    t.row(vec![
        "Directory".into(),
        format!(
            "full-bit-vector sharer list; {}-cycle directory cache, {}-cycle control ops",
            c.dir_line_latency, c.dir_ctrl_latency
        ),
    ]);
    t.row(vec![
        "Placement".into(),
        "line-interleaved homes (workloads encode first-touch placement into addresses)".into(),
    ]);
    println!("Table 2: parameters of the simulated architecture\n");
    println!("{}", t.render());
}
