//! Regenerates Table 2: parameters of the simulated architecture.

use tcc_bench::report::write_report;
use tcc_core::SystemConfig;
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};

fn main() {
    let c = SystemConfig::default();
    let mut report = RunReport::new("table2");
    report.set(
        "params",
        Json::obj(vec![
            ("n_procs", c.n_procs.into()),
            ("l1_bytes", c.cache.l1_bytes.into()),
            ("l1_ways", c.cache.l1_ways.into()),
            ("l1_latency", c.cache.l1_latency.into()),
            ("l2_bytes", c.cache.l2_bytes.into()),
            ("l2_ways", c.cache.l2_ways.into()),
            ("l2_latency", c.cache.l2_latency.into()),
            ("line_bytes", c.cache.geometry.line_bytes().into()),
            ("link_latency", c.network.link_latency.into()),
            ("link_bytes_per_cycle", c.network.bytes_per_cycle.into()),
            ("mem_latency", c.mem_latency.into()),
            ("dir_line_latency", c.dir_line_latency.into()),
            ("dir_ctrl_latency", c.dir_ctrl_latency.into()),
        ]),
    );
    let mut t = TextTable::new(vec!["Feature", "Description"]);
    t.row(vec![
        "CPU".into(),
        format!("single-issue cores, CPI 1.0 ({} default)", c.n_procs),
    ]);
    t.row(vec![
        "L1".into(),
        format!(
            "{}-KB, {}-byte cache line, {}-way associative, {}-cycle latency",
            c.cache.l1_bytes / 1024,
            c.cache.geometry.line_bytes(),
            c.cache.l1_ways,
            c.cache.l1_latency
        ),
    ]);
    t.row(vec![
        "L2".into(),
        format!(
            "{}-KB, {}-byte cache line, {}-way associative, {}-cycle latency",
            c.cache.l2_bytes / 1024,
            c.cache.geometry.line_bytes(),
            c.cache.l2_ways,
            c.cache.l2_latency
        ),
    ]);
    t.row(vec![
        "ICN".into(),
        format!(
            "2D grid topology, {}-cycle link latency (swept 1-8 in Figure 8), {} B/cycle links",
            c.network.link_latency, c.network.bytes_per_cycle
        ),
    ]);
    t.row(vec![
        "Main memory".into(),
        format!("{}-cycle latency", c.mem_latency),
    ]);
    t.row(vec![
        "Directory".into(),
        format!(
            "full-bit-vector sharer list; {}-cycle directory cache, {}-cycle control ops",
            c.dir_line_latency, c.dir_ctrl_latency
        ),
    ]);
    t.row(vec![
        "Placement".into(),
        "line-interleaved homes (workloads encode first-touch placement into addresses)".into(),
    ]);
    write_report(&report);
    println!("Table 2: parameters of the simulated architecture\n");
    println!("{}", t.render());
}
