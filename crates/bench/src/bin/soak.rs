//! `soak` — the crash-surviving long-haul harness.
//!
//! Runs an adversarial simulator workload (lossy wires, reliable
//! transport, watchdog, serializability oracle) in checkpointed
//! segments: every `--every` cycles the full machine state is written
//! atomically as a `tcc-snapshot/v1` file and committed to an
//! append-only journal. SIGKILL the process at any point; the next
//! invocation resumes from the latest journaled checkpoint and — by
//! the simulator's byte-identical-resume guarantee — finishes with
//! exactly the fingerprint and commit count of an uninterrupted run.
//! Between generations it sweeps a small chaos grid and re-verifies a
//! sharded traffic-replay fingerprint, so continuous operation also
//! exercises the exploration and replay layers.
//!
//! Modes:
//!
//! * `soak run --state DIR` — the resumable segment runner (the mode
//!   you SIGKILL).
//! * `soak smoke` — self-contained crash drill, gated in CI: computes
//!   the uninterrupted fingerprint, spawns `soak run`, SIGKILLs it
//!   after its first checkpoint commits, resumes it, and demands
//!   fingerprint + commit parity.
//! * `soak measure` — checkpoint size and save/restore cost table per
//!   workload (the EXPERIMENTS.md table).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tcc_chaos::explorer::{run_scenarios, GridSpec};
use tcc_core::{
    Journal, RunError, SimResult, Simulator, Snapshot, Step, SystemConfig, ThreadProgram,
    Transaction, TransportConfig, TxOp, WatchdogConfig, WorkItem,
};
use tcc_network::{ChaosConfig, DropRule, DupRule};
use tcc_traffic::{replay_fingerprint, scenarios, synthesize};
use tcc_types::rng::SmallRng;
use tcc_types::{Addr, Cycle};

struct Args {
    mode: String,
    state: PathBuf,
    seed: u64,
    txs: usize,
    every: u64,
    generations: u64,
    grid: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            mode: String::new(),
            state: PathBuf::from("target/soak"),
            seed: 1,
            txs: 60,
            every: 5_000,
            generations: 1,
            grid: 0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    args.mode = it.next().unwrap_or_else(|| "help".to_string());
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--state" => args.state = PathBuf::from(value("--state")?),
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--txs" => args.txs = value("--txs")?.parse().map_err(|e| format!("{e}"))?,
            "--every" => args.every = value("--every")?.parse().map_err(|e| format!("{e}"))?,
            "--generations" => {
                args.generations = value("--generations")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--grid" => args.grid = value("--grid")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.every == 0 {
        return Err("--every must be at least 1".into());
    }
    Ok(args)
}

/// The soak workload's machine: lossy wires recovered by the reliable
/// transport, watchdog armed, serializability oracle on — the
/// configuration with the most live state to snapshot.
fn soak_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::with_procs(4);
    cfg.check_serializability = true;
    cfg.tie_break_seed = Some(seed);
    cfg.transport = Some(TransportConfig::default());
    cfg.watchdog = Some(WatchdogConfig::default());
    cfg.chaos = Some(ChaosConfig {
        seed,
        drops: vec![DropRule {
            kind: "*".to_string(),
            prob: 0.05,
            from: 0,
            until: u64::MAX,
        }],
        dups: vec![DupRule {
            kind: "*".to_string(),
            prob: 0.10,
            delay: 9,
            from: 0,
            until: u64::MAX,
        }],
        reorder: 32,
        reorder_prob: 0.25,
        ..ChaosConfig::default()
    });
    cfg
}

/// Seeded random hot-set programs (same shape the checkpoint matrix
/// tests drive): frequent conflicts, owner transfers, barriers.
fn soak_programs(n_procs: usize, txs: usize, seed: u64) -> Vec<ThreadProgram> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_procs)
        .map(|_| {
            let mut items = Vec::new();
            for t in 0..txs {
                let n_ops = rng.gen_range(1..=6);
                let mut ops = Vec::with_capacity(n_ops);
                for _ in 0..n_ops {
                    let line = rng.gen_range(0..6u64);
                    let word = rng.gen_range(0..8u64);
                    let addr = Addr(line * 32 + word * 4);
                    if rng.gen_bool(0.45) {
                        ops.push(TxOp::Store(addr));
                    } else {
                        ops.push(TxOp::Load(addr));
                    }
                    if rng.gen_bool(0.5) {
                        ops.push(TxOp::Compute(rng.gen_range(1..60)));
                    }
                }
                items.push(WorkItem::Tx(Transaction::new(ops)));
                if (t + 1) % 3 == 0 {
                    items.push(WorkItem::Barrier);
                }
            }
            ThreadProgram::new(items)
        })
        .collect()
}

fn build(cfg: &SystemConfig, programs: &[ThreadProgram], seed: u64) -> Simulator {
    let mut sim = Simulator::builder(cfg.clone())
        .programs(programs.to_vec())
        .build()
        .expect("valid soak config");
    sim.set_program_seed(seed);
    sim
}

/// One resumable generation: run in `every`-cycle segments, journal a
/// checkpoint after each, resume from the journal if one matches.
fn run_generation(args: &Args, gen_seed: u64) -> Result<SimResult, RunError> {
    let cfg = soak_config(gen_seed);
    let programs = soak_programs(4, args.txs, gen_seed);
    std::fs::create_dir_all(&args.state).expect("create state dir");
    let mut journal = Journal::open(args.state.join("journal.tsv")).expect("open journal");

    let mut parent = None;
    let mut sim = None;
    if let Some(latest) = journal
        .entries()
        .iter()
        .rev()
        .find(|e| e.digest == cfg.digest())
    {
        match Snapshot::read_file(Path::new(&latest.path))
            .map_err(|e| e.to_string())
            .and_then(|snap| {
                Simulator::resume(cfg.clone(), programs.clone(), &snap).map_err(|e| e.to_string())
            }) {
            Ok(resumed) => {
                println!(
                    "resumed: seq={} cycle={} ({})",
                    latest.seq, latest.cycle, latest.path
                );
                parent = Some(latest.seq);
                sim = Some(resumed);
            }
            Err(e) => {
                // A half-written or stale snapshot is recoverable — the
                // run restarts from scratch rather than dying.
                eprintln!(
                    "checkpoint seq={} unusable ({e}); starting fresh",
                    latest.seq
                );
            }
        }
    }
    let mut sim = sim.unwrap_or_else(|| build(&cfg, &programs, gen_seed));

    loop {
        let target = sim.queue_now().0 + args.every;
        match sim.try_run_until(Some(Cycle(target)))? {
            Step::Done(r) => return Ok(r),
            Step::Paused(paused) => {
                let snap = paused.checkpoint();
                let file = args.state.join(format!("ckpt-{:012}.snap", snap.at_cycle));
                snap.write_atomic(&file).expect("write checkpoint");
                let entry = journal
                    .append(
                        parent,
                        snap.at_cycle,
                        snap.config_digest,
                        &file.to_string_lossy(),
                        &format!("gen-seed {gen_seed}"),
                    )
                    .expect("journal append");
                println!("checkpoint: seq={} cycle={}", entry.seq, entry.cycle);
                parent = Some(entry.seq);
                sim = *paused;
            }
        }
    }
}

/// Stateless side sweeps between generations: a small chaos grid and a
/// sharded traffic-replay fingerprint check. Returns false on any
/// failure.
fn side_sweeps(gen_seed: u64, grid: u64) -> bool {
    let mut ok = true;
    if grid > 0 {
        let scenarios = GridSpec::new(gen_seed..gen_seed + grid, 0..grid).scenarios();
        let report = run_scenarios(&scenarios, 2);
        println!(
            "chaos grid: {} runs, {} commits, {} failures",
            report.runs,
            report.commits,
            report.failures.len()
        );
        ok &= report.passed();
    }
    let trace = synthesize(&scenarios::zipfian_steady(), 2_000).expect("preset is valid");
    let fp1 = replay_fingerprint(&trace, 1);
    let fp4 = replay_fingerprint(&trace, 4);
    println!("traffic replay: fp(1w)==fp(4w): {}", fp1 == fp4);
    ok && fp1 == fp4
}

fn mode_run(args: &Args) -> ExitCode {
    for g in 0..args.generations.max(1) {
        let gen_seed = args.seed + g;
        match run_generation(args, gen_seed) {
            Ok(r) => {
                if let Some(Err(e)) = &r.serializability {
                    eprintln!("generation {gen_seed}: NOT SERIALIZABLE: {e}");
                    return ExitCode::from(2);
                }
                println!("generation: {gen_seed}");
                println!("commits: {}", r.commits);
                println!("total_cycles: {}", r.total_cycles);
                println!("fingerprint: {}", r.fingerprint());
            }
            Err(RunError::Stalled(d)) => {
                eprintln!("generation {gen_seed} stalled:\n{d}");
                return ExitCode::from(2);
            }
        }
        if !side_sweeps(gen_seed, args.grid) {
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Polls the journal until it holds at least one committed entry.
fn wait_for_checkpoint(journal_path: &Path, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if let Ok(j) = Journal::open(journal_path) {
            if !j.entries().is_empty() {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Extracts `key: value` from captured child stdout.
fn stdout_field<'a>(out: &'a str, key: &str) -> Option<&'a str> {
    out.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix(": ")))
}

fn mode_smoke(args: &Args) -> ExitCode {
    // Fresh state dir per drill so stale checkpoints can't fake parity.
    let state = args.state.join(format!("smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&state).ok();
    std::fs::create_dir_all(&state).expect("create state dir");
    let journal_path = state.join("journal.tsv");

    // 1. The uninterrupted truth, in-process.
    let cfg = soak_config(args.seed);
    let programs = soak_programs(4, args.txs, args.seed);
    let baseline = match build(&cfg, &programs, args.seed).try_run() {
        Ok(r) => r,
        Err(RunError::Stalled(d)) => {
            eprintln!("smoke baseline stalled:\n{d}");
            return ExitCode::from(2);
        }
    };
    baseline.assert_serializable();
    println!(
        "baseline: commits={} cycles={} fingerprint={}",
        baseline.commits,
        baseline.total_cycles,
        baseline.fingerprint()
    );

    // 2. Spawn the runner and SIGKILL it after its first checkpoint
    // commits — a genuine no-warning kill, not a graceful shutdown.
    let exe = std::env::current_exe().expect("current exe");
    let child_cmd = |state: &Path| {
        let mut c = std::process::Command::new(&exe);
        c.arg("run")
            .args(["--state".as_ref(), state.as_os_str()])
            .args(["--seed", &args.seed.to_string()])
            .args(["--txs", &args.txs.to_string()])
            .args(["--every", &args.every.to_string()])
            .args(["--generations", "1"]);
        c
    };
    let mut child = child_cmd(&state)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn soak runner");
    if !wait_for_checkpoint(&journal_path, Duration::from_secs(120)) {
        child.kill().ok();
        child.wait().ok();
        eprintln!("smoke: no checkpoint appeared within the wait budget");
        return ExitCode::from(2);
    }
    child.kill().expect("SIGKILL the runner");
    child.wait().expect("reap the runner");
    let killed_at = Journal::open(&journal_path)
        .ok()
        .and_then(|j| j.latest().map(|e| e.cycle));
    println!(
        "killed runner after checkpoint at cycle {}",
        killed_at.unwrap_or(0)
    );

    // 3. Resume: the second invocation must pick up the journaled
    // checkpoint and finish with the uninterrupted run's numbers.
    let out = child_cmd(&state).output().expect("run resumed soak");
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        eprintln!(
            "smoke: resumed runner failed ({})\n{stdout}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        return ExitCode::from(2);
    }
    if !stdout.contains("resumed: seq=") {
        eprintln!("smoke: second run did not resume from the checkpoint\n{stdout}");
        return ExitCode::from(2);
    }
    let fp = stdout_field(&stdout, "fingerprint").unwrap_or("<missing>");
    let commits = stdout_field(&stdout, "commits").unwrap_or("<missing>");
    let fp_ok = fp == baseline.fingerprint();
    let commits_ok = commits == baseline.commits.to_string();
    println!("resumed:  commits={commits} fingerprint={fp}");
    if fp_ok && commits_ok {
        println!("SMOKE PASS: kill-and-resume is byte-identical to the uninterrupted run");
        std::fs::remove_dir_all(&state).ok();
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "SMOKE FAIL: fingerprint parity={fp_ok} commit parity={commits_ok} (state kept at {})",
            state.display()
        );
        ExitCode::from(2)
    }
}

fn mode_measure(args: &Args) -> ExitCode {
    println!("| workload | cycle | snapshot bytes | save | restore |");
    println!("|---|---|---|---|---|");
    let seeds = [("lossy-4p", args.seed), ("lossy-4p-alt", args.seed + 1)];
    for (name, seed) in seeds {
        let cfg = soak_config(seed);
        let programs = soak_programs(4, args.txs, seed);
        let total = match build(&cfg, &programs, seed).try_run() {
            Ok(r) => r.total_cycles,
            Err(RunError::Stalled(d)) => {
                eprintln!("measure workload {name} stalled:\n{d}");
                return ExitCode::from(2);
            }
        };
        for frac in [4u64, 2] {
            let at = total / frac;
            let Ok(Step::Paused(paused)) =
                build(&cfg, &programs, seed).try_run_until(Some(Cycle(at)))
            else {
                continue;
            };
            let t0 = Instant::now();
            let bytes = paused.checkpoint().to_bytes();
            let save = t0.elapsed();
            let t1 = Instant::now();
            let snap = Snapshot::from_bytes(&bytes).expect("container round-trips");
            let resumed = Simulator::resume(cfg.clone(), programs.clone(), &snap).expect("resume");
            let restore = t1.elapsed();
            drop(resumed);
            println!(
                "| {name} | {at} | {} | {:.2?} | {:.2?} |",
                bytes.len(),
                save,
                restore
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.mode.as_str() {
        "run" => mode_run(&args),
        "smoke" => mode_smoke(&args),
        "measure" => mode_measure(&args),
        _ => {
            println!(
                "usage: soak <run|smoke|measure> [--state DIR] [--seed N] [--txs N] \
                 [--every CYCLES] [--generations N] [--grid N]"
            );
            ExitCode::FAILURE
        }
    }
}
