//! Ablations of the paper's three design claims (DESIGN.md §4):
//!
//! * **A — parallel vs. serialized commit**: Scalable TCC against the
//!   small-scale baseline (global commit token + broadcast) on a
//!   commit-intensive application, across machine sizes. The paper's
//!   motivation: "the sum of all commit times places a lower bound on
//!   execution time" for the serialized design.
//! * **B — word- vs. line-granularity conflict detection**: the same
//!   workload under both tracking granularities; line granularity
//!   exposes false sharing as extra violations.
//! * **C — write-back vs. write-through commit traffic**: remote bytes
//!   moved by the scalable write-back protocol against the baseline's
//!   write-through broadcasts.

use tcc_bench::report::{harness_json, write_report};
use tcc_bench::{run_app, HarnessArgs, HARNESS_SEED};
use tcc_core::baseline::OccCondition;
use tcc_core::Simulator;
use tcc_core::SystemConfig;
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("ablation");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    ablation_a(&args, &mut report);
    ablation_b(&args, &mut report);
    ablation_c(&args, &mut report);
    ablation_d(&args, &mut report);
    ablation_e(&args, &mut report);
    write_report(&report);
}

/// The three OCC conditions of §2.1 head-to-head: serial execution
/// (condition 1), serialized commit (condition 2, small-scale TCC),
/// and parallel commit (condition 3, Scalable TCC).
fn ablation_a(args: &HarnessArgs, report: &mut RunReport) {
    println!("Ablation A: the three OCC conditions (volrend-class workload)\n");
    let app = apps::volrend();
    let mut t = TextTable::new(vec![
        "CPUs",
        "Cond 3 (Scalable)",
        "Cond 2 (token)",
        "Cond 1 (serial)",
        "Cond2/Cond3",
        "Cond1/Cond3",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for n in [1usize, 4, 16, 32] {
        let scalable = run_app(&app, n, args.scale(), |_| {}).total_cycles;
        let programs = app.generate_scaled(n, HARNESS_SEED, args.scale());
        let cond2 = Simulator::builder(SystemConfig::with_procs(n))
            .programs(programs.clone())
            .build_baseline()
            .expect("valid config")
            .run()
            .total_cycles;
        let cond1 = Simulator::builder(SystemConfig::with_procs(n))
            .programs(programs)
            .baseline(OccCondition::SerialExecution)
            .build_baseline()
            .expect("valid config")
            .run()
            .total_cycles;
        t.row(vec![
            n.to_string(),
            scalable.to_string(),
            cond2.to_string(),
            cond1.to_string(),
            format!("{:.2}x", cond2 as f64 / scalable as f64),
            format!("{:.2}x", cond1 as f64 / scalable as f64),
        ]);
        rows.push(Json::obj(vec![
            ("cpus", n.into()),
            ("parallel_commit", scalable.into()),
            ("serialized_commit", cond2.into()),
            ("serial_execution", cond1.into()),
        ]));
        eprintln!("  A: p={n} done");
    }
    report.set("occ_conditions", Json::Arr(rows));
    println!("{}", t.render());
    println!("Expectation (§2.1): condition 1 yields no concurrency at all;");
    println!("condition 2 stops scaling once the sum of commit times dominates;");
    println!("condition 3 (parallel commit) keeps scaling.\n");
}

/// Word- vs. line-granularity conflict detection.
fn ablation_b(args: &HarnessArgs, report: &mut RunReport) {
    println!("Ablation B: word- vs. line-granularity conflict detection\n");
    let mut t = TextTable::new(vec![
        "Application",
        "Word viol",
        "Line viol",
        "Word cycles",
        "Line cycles",
        "Line/Word time",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for app in [apps::cluster_ga(), apps::water_nsquared(), apps::volrend()] {
        if !args.selects(app.name) {
            continue;
        }
        let word = run_app(&app, 16, args.scale(), |_| {});
        let line = run_app(&app, 16, args.scale(), |c| {
            c.cache.granularity = tcc_cache::Granularity::Line;
        });
        t.row(vec![
            app.name.to_string(),
            word.violations.to_string(),
            line.violations.to_string(),
            word.total_cycles.to_string(),
            line.total_cycles.to_string(),
            format!(
                "{:.2}x",
                line.total_cycles as f64 / word.total_cycles as f64
            ),
        ]);
        rows.push(Json::obj(vec![
            ("app", app.name.into()),
            ("word_violations", word.violations.into()),
            ("line_violations", line.violations.into()),
            ("word_cycles", word.total_cycles.into()),
            ("line_cycles", line.total_cycles.into()),
        ]));
        eprintln!("  B: {} done", app.name);
    }
    report.set("granularity", Json::Arr(rows));
    println!("{}", t.render());
    println!("Expectation: line granularity adds false-sharing violations on");
    println!("write-shared lines (§3.1 motivates per-word SR/SM bits).\n");
}

/// Write-back vs. write-through commit traffic.
fn ablation_c(args: &HarnessArgs, report: &mut RunReport) {
    println!("Ablation C: write-back (scalable) vs. write-through (baseline) traffic\n");
    let mut t = TextTable::new(vec![
        "Application",
        "WB total bytes",
        "WT total bytes",
        "WT/WB",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for app in [apps::swim(), apps::water_spatial()] {
        if !args.selects(app.name) {
            continue;
        }
        let n = 16;
        let wb = run_app(&app, n, args.scale(), |_| {});
        let programs = app.generate_scaled(n, HARNESS_SEED, args.scale());
        let wt = Simulator::builder(SystemConfig::with_procs(n))
            .programs(programs)
            .build_baseline()
            .expect("valid config")
            .run();
        t.row(vec![
            app.name.to_string(),
            wb.traffic.total_bytes().to_string(),
            wt.traffic.total_bytes().to_string(),
            format!(
                "{:.1}x",
                wt.traffic.total_bytes() as f64 / wb.traffic.total_bytes().max(1) as f64
            ),
        ]);
        rows.push(Json::obj(vec![
            ("app", app.name.into()),
            ("writeback_bytes", wb.traffic.total_bytes().into()),
            ("writethrough_bytes", wt.traffic.total_bytes().into()),
        ]));
        eprintln!("  C: {} done", app.name);
    }
    report.set("commit_traffic", Json::Arr(rows));
    println!("{}", t.render());
    println!("Expectation: write-through broadcast commits move every written");
    println!("line's data to every node; write-back moves data only on true");
    println!("sharing or eviction (§2 'write-back commit').");
}

/// Directory-cache capacity sensitivity: Table 3 argues the per-app
/// working set "fits comfortably in a 2-MB directory cache"; this
/// ablation shows what happens when it does not.
fn ablation_d(args: &HarnessArgs, report: &mut RunReport) {
    println!("Ablation D: directory-cache capacity (16 CPUs)\n");
    let mut t = TextTable::new(vec![
        "Application",
        "unbounded",
        "4096 entries",
        "256 entries",
        "32 entries",
        "32-entry slowdown",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for app in [apps::barnes(), apps::equake()] {
        if !args.selects(app.name) {
            continue;
        }
        let cycles: Vec<u64> = [None, Some(4096usize), Some(256), Some(32)]
            .iter()
            .map(|&cap| run_app(&app, 16, args.scale(), |c| c.dir_cache_entries = cap).total_cycles)
            .collect();
        let base = cycles[0] as f64;
        t.row(vec![
            app.name.to_string(),
            cycles[0].to_string(),
            format!("{:.2}x", cycles[1] as f64 / base),
            format!("{:.2}x", cycles[2] as f64 / base),
            format!("{:.2}x", cycles[3] as f64 / base),
            format!("+{:.0}%", (cycles[3] as f64 / base - 1.0) * 100.0),
        ]);
        rows.push(Json::obj(vec![
            ("app", app.name.into()),
            (
                "cycles_by_capacity",
                Json::Arr(cycles.iter().map(|&c| c.into()).collect()),
            ),
        ]));
        eprintln!("  D: {} done", app.name);
    }
    report.set("dir_cache_capacity", Json::Arr(rows));
    println!("{}", t.render());
    println!("Expectation: performance is flat until the directory working set");
    println!("(Table 3: tens to hundreds of entries) spills, then every");
    println!("line-state operation pays an extra memory access.");
}

/// Topology extension: the paper's plain 2D grid vs. a 2D torus
/// (wrap-around links halve worst-case hop counts). The
/// latency-sensitive applications of Figure 8 should gain the most.
fn ablation_e(args: &HarnessArgs, report: &mut RunReport) {
    println!("Ablation E (extension): 2D grid vs. 2D torus at 64 CPUs\n");
    let mut t = TextTable::new(vec![
        "Application",
        "Grid cycles",
        "Torus cycles",
        "Torus speedup",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for app in [apps::equake(), apps::volrend(), apps::swim()] {
        if !args.selects(app.name) {
            continue;
        }
        let grid = run_app(&app, 64, args.scale(), |_| {}).total_cycles;
        let torus = run_app(&app, 64, args.scale(), |c| c.network.torus = true).total_cycles;
        t.row(vec![
            app.name.to_string(),
            grid.to_string(),
            torus.to_string(),
            format!("{:.2}x", grid as f64 / torus as f64),
        ]);
        rows.push(Json::obj(vec![
            ("app", app.name.into()),
            ("grid_cycles", grid.into()),
            ("torus_cycles", torus.into()),
        ]));
        eprintln!("  E: {} done", app.name);
    }
    report.set("torus", Json::Arr(rows));
    println!("{}", t.render());
    println!("Expectation: communication-bound applications (equake, volrend)");
    println!("gain from shorter average distances; partitioned-grid codes");
    println!("(swim) are indifferent — the Figure 8 sensitivity, inverted.");
}
