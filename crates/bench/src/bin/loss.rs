//! Loss-rate sensitivity of the reliable transport (EXPERIMENTS.md
//! "Lossy interconnect"): one contended application swept across frame
//! drop rates, reporting completion, slowdown, and the transport's
//! recovery work (retransmissions, timeout fires, duplicate drops,
//! acks). Every run must complete exactly once — a stall at any loss
//! rate is a harness failure.

use tcc_bench::report::{harness_json, write_report, TransportTotals};
use tcc_bench::{par_map, run_app_seeded, HarnessArgs, HARNESS_SEED};
use tcc_core::{TransportConfig, WatchdogConfig};
use tcc_network::{ChaosConfig, DropRule};
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

/// Per-frame drop probabilities swept (percent × 100).
const LOSS_PCT: [u64; 5] = [0, 1, 2, 5, 10];

const CPUS: usize = 16;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(HARNESS_SEED);
    let app = apps::by_name("radix").expect("radix profile");
    let mut report = RunReport::new("loss");
    report.set_workers(args.workers() as u64);
    report.set("harness", harness_json(&args, seed));
    report.set("app", app.name.into());
    report.set("cpus", (CPUS as u64).into());
    let results = par_map(&LOSS_PCT, args.jobs(), |&pct| {
        run_app_seeded(&app, CPUS, args.scale(), seed, |cfg| {
            cfg.transport = Some(TransportConfig::default());
            cfg.watchdog = Some(WatchdogConfig::default());
            if pct > 0 {
                cfg.chaos = Some(ChaosConfig {
                    seed,
                    drops: vec![DropRule {
                        kind: "*".to_string(),
                        prob: pct as f64 / 100.0,
                        from: 0,
                        until: u64::MAX,
                    }],
                    ..ChaosConfig::default()
                });
            }
        })
    });
    let base = results[0].total_cycles;
    let mut t = TextTable::new(vec![
        "Loss %",
        "Cycles",
        "Slowdown",
        "Commits",
        "Retransmits",
        "Timeout fires",
        "Dup drops",
        "Acks",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut totals = TransportTotals::default();
    for (&pct, r) in LOSS_PCT.iter().zip(&results) {
        totals.add(r);
        let ts = r.transport.as_ref().expect("transport was on");
        t.row(vec![
            pct.to_string(),
            r.total_cycles.to_string(),
            format!("{:.3}", r.total_cycles as f64 / base as f64),
            r.commits.to_string(),
            ts.retransmits.to_string(),
            ts.timeout_fires.to_string(),
            ts.dup_drops.to_string(),
            ts.acks.to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("loss_pct", pct.into()),
            ("cycles", r.total_cycles.into()),
            ("commits", r.commits.into()),
            ("violations", r.violations.into()),
            ("retransmits", ts.retransmits.into()),
            ("timeout_fires", ts.timeout_fires.into()),
            ("dup_drops", ts.dup_drops.into()),
            ("acks", ts.acks.into()),
        ]));
    }
    println!(
        "\n{} at {CPUS} CPUs — completion under frame loss\n",
        app.name
    );
    println!("{}", t.render());
    report.set("points", Json::Arr(rows));
    report.set("transport", totals.to_json());
    write_report(&report);
}
