//! Regenerates Figure 6: normalized execution-time breakdown of every
//! application on one processor.

use tcc_bench::{run_app, HarnessArgs};
use tcc_stats::breakdown::BreakdownPct;
use tcc_stats::render::{stacked_bar, TextTable};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut t = TextTable::new(vec![
        "Application",
        "Useful %",
        "CacheMiss %",
        "Idle %",
        "Commit %",
        "Violation %",
        "U=useful M=miss I=idle C=commit V=violation",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 1, args.scale(), |_| {});
        let pct = BreakdownPct::from_result(&r);
        t.row(vec![
            app.name.into(),
            format!("{:.1}", pct.useful * 100.0),
            format!("{:.1}", pct.cache_miss * 100.0),
            format!("{:.1}", pct.idle * 100.0),
            format!("{:.1}", pct.commit * 100.0),
            format!("{:.1}", pct.violation * 100.0),
            stacked_bar(&pct.components(), 40),
        ]);
        eprintln!("  done: {}", app.name);
    }
    println!("Figure 6: single-processor execution-time breakdown\n");
    println!("{}", t.render());
    println!("Paper anchor: with one processor the only TCC overhead is the");
    println!("commit component, ~1-3% on average; no violations are possible.");
}
