//! Regenerates Figure 6: normalized execution-time breakdown of every
//! application on one processor.

use tcc_bench::report::{harness_json, maybe_write_chrome, result_json, write_report};
use tcc_bench::{run_app, HarnessArgs, HARNESS_SEED};
use tcc_stats::breakdown::BreakdownPct;
use tcc_stats::render::{stacked_bar, TextTable};
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("fig6");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let mut t = TextTable::new(vec![
        "Application",
        "Useful %",
        "CacheMiss %",
        "Idle %",
        "Commit %",
        "Violation %",
        "U=useful M=miss I=idle C=commit V=violation",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let r = run_app(&app, 1, args.scale(), |_| {});
        maybe_write_chrome(&r, &format!("fig6_{}", app.name));
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("result", result_json(&r)),
        ]));
        let pct = BreakdownPct::from_result(&r);
        t.row(vec![
            app.name.into(),
            format!("{:.1}", pct.useful * 100.0),
            format!("{:.1}", pct.cache_miss * 100.0),
            format!("{:.1}", pct.idle * 100.0),
            format!("{:.1}", pct.commit * 100.0),
            format!("{:.1}", pct.violation * 100.0),
            stacked_bar(&pct.components(), 40),
        ]);
        eprintln!("  done: {}", app.name);
    }
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("Figure 6: single-processor execution-time breakdown\n");
    println!("{}", t.render());
    println!("Paper anchor: with one processor the only TCC overhead is the");
    println!("commit component, ~1-3% on average; no violations are possible.");
}
