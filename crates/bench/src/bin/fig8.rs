//! Regenerates Figure 8: the impact of interconnect latency
//! (cycles per hop) on 64-processor execution time.

use tcc_bench::report::{harness_json, write_report};
use tcc_bench::{par_map, run_app, HarnessArgs, FIG8_LATENCIES, HARNESS_SEED};
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = RunReport::new("fig8");
    report.set_workers(args.workers() as u64);
    report.set(
        "harness",
        harness_json(&args, args.seed.unwrap_or(HARNESS_SEED)),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut t = TextTable::new(vec![
        "Application",
        "1 cyc/hop",
        "2 cyc/hop",
        "4 cyc/hop",
        "8 cyc/hop",
        "slowdown 8 vs 1",
    ]);
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let cycles: Vec<u64> = par_map(&FIG8_LATENCIES, args.jobs(), |&lat| {
            let r = run_app(&app, 64, args.scale(), |c| c.network.link_latency = lat);
            eprintln!("  {}: {lat} cyc/hop done", app.name);
            r.total_cycles
        });
        let base = cycles[0].max(1) as f64;
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            (
                "points",
                Json::Arr(
                    FIG8_LATENCIES
                        .iter()
                        .zip(&cycles)
                        .map(|(&lat, &c)| {
                            Json::obj(vec![
                                ("cycles_per_hop", lat.into()),
                                ("cycles", c.into()),
                                ("normalized", (c as f64 / base).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        for (lat, c) in FIG8_LATENCIES.iter().zip(&cycles) {
            csv.push(vec![
                app.name.to_string(),
                lat.to_string(),
                c.to_string(),
                format!("{:.4}", *c as f64 / base),
            ]);
        }
        let mut row = vec![app.name.to_string()];
        for c in &cycles {
            row.push(format!("{:.2}", *c as f64 / base));
        }
        row.push(format!("{:.0}%", (cycles[3] as f64 / base - 1.0) * 100.0));
        t.row(row);
    }
    println!("Figure 8: 64-CPU execution time vs. cycles per hop");
    println!("(normalized to the 1-cycle-per-hop run)\n");
    println!("{}", t.render());
    args.write_csv(
        "fig8",
        &["app", "cycles_per_hop", "cycles", "normalized"],
        &csv,
    );
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("Paper anchors: equake (remote-load bound) and volrend");
    println!("(commit bound) degrade ~50% at 8 cycles/hop; SPECjbb2000 and");
    println!("swim are nearly flat.");
}
