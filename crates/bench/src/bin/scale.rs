//! Parallel-engine scaling study (`BENCH_scale.json`).
//!
//! Runs several applications on a 128-CPU simulated machine, sweeping
//! the engine worker count: `workers == 1` is the classic sequential
//! engine (the baseline), higher counts run the sharded parallel
//! engine. Per cell it records wall-clock, simulator events per
//! second, wall-clock speedup over the classic baseline, and the
//! deterministic result fingerprint — and it *asserts* the fingerprint
//! is byte-identical at every worker count, which is the parallel
//! engine's core claim.
//!
//! Honest-measurement note: the parallel engine leases its threads
//! from the shared worker budget, so on a host with fewer CPUs than
//! requested workers the extra workers are simply not granted and the
//! wall-clock columns measure windowing overhead, not speedup. The
//! report records `host_cpus` so a reader can tell which regime a
//! given artifact was generated in.

use std::time::Instant;

use tcc_bench::report::write_report;
use tcc_bench::{HarnessArgs, HARNESS_SEED};
use tcc_core::{ParallelConfig, Simulator, SystemConfig};
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

/// The simulated machine size: past the paper's largest (64) to show
/// the engine handles more shards than any evaluated configuration.
const SCALE_CPUS: usize = 128;

/// Engine worker counts swept per application.
const WORKER_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// The swept cells: the radix @ 64 acceptance cell (the Figure 7
/// machine size the speedup target is stated against) plus a
/// 128-CPU sweep of four applications.
fn cells() -> Vec<(tcc_workloads::AppProfile, usize)> {
    vec![
        (apps::radix(), 64),
        (apps::radix(), SCALE_CPUS),
        (apps::specjbb(), SCALE_CPUS),
        (apps::volrend(), SCALE_CPUS),
        (apps::equake(), SCALE_CPUS),
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(HARNESS_SEED);
    let host_cpus = tcc_trace::report::host_cpus() as usize;
    let mut report = RunReport::new("scale");
    // This bin sweeps the engine worker count itself; the host block
    // records the largest count the run actually spun up.
    report.set_workers(*WORKER_SWEEP.iter().max().expect("non-empty sweep") as u64);
    report.set(
        "harness",
        Json::obj(vec![
            ("seed", seed.into()),
            ("scale", if args.smoke { "smoke" } else { "full" }.into()),
            ("cpus", (SCALE_CPUS as u64).into()),
            ("host_cpus", (host_cpus as u64).into()),
            (
                "workers",
                Json::Arr(WORKER_SWEEP.iter().map(|&w| (w as u64).into()).collect()),
            ),
        ]),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    for (app, cpus) in cells() {
        if !args.selects(app.name) {
            continue;
        }
        println!("\n{} — {cpus}-CPU machine, engine worker sweep", app.name);
        let mut t = TextTable::new(vec![
            "Workers",
            "Engine",
            "Wall ms",
            "Events/s",
            "Speedup",
            "Fingerprint",
        ]);
        let mut baseline: Option<(f64, String)> = None;
        let mut points: Vec<Json> = Vec::new();
        for &workers in &WORKER_SWEEP {
            let mut cfg = SystemConfig::with_procs(cpus);
            if workers > 1 {
                cfg.parallel = Some(ParallelConfig::with_workers(workers));
            }
            let programs = app.generate_scaled(cpus, seed, args.scale());
            let sim = Simulator::builder(cfg)
                .programs(programs)
                .build()
                .expect("valid config");
            let t0 = Instant::now();
            let r = sim.run();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let fp = r.fingerprint();
            let (base_wall, base_fp) = baseline.get_or_insert((wall_ms, fp.clone()));
            assert_eq!(
                *base_fp, fp,
                "{}: parallel engine at {workers} workers diverged from classic",
                app.name
            );
            let speedup = *base_wall / wall_ms;
            let engine = if workers > 1 { "parallel" } else { "classic" };
            eprintln!(
                "  {}: workers={workers} done ({} cycles, {wall_ms:.0} ms)",
                app.name, r.total_cycles
            );
            t.row(vec![
                workers.to_string(),
                engine.to_string(),
                format!("{wall_ms:.1}"),
                format!("{:.0}", r.events as f64 / (wall_ms / 1e3)),
                format!("{speedup:.2}"),
                fp.clone(),
            ]);
            points.push(Json::obj(vec![
                ("workers", (workers as u64).into()),
                ("engine", engine.into()),
                ("wall_ms", Json::Num(wall_ms)),
                ("events", r.events.into()),
                ("speedup_vs_classic", Json::Num(speedup)),
                ("fingerprint", fp.into()),
                ("total_cycles", r.total_cycles.into()),
                ("commits", r.commits.into()),
            ]));
        }
        println!("{}", t.render());
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("cpus", (cpus as u64).into()),
            ("points", Json::Arr(points)),
        ]));
    }
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("\nFingerprints are byte-identical across all worker counts (asserted).");
    if host_cpus < *WORKER_SWEEP.last().expect("non-empty sweep") {
        println!(
            "Note: host has {host_cpus} CPU(s); worker counts above that are \
             capped by the shared worker budget, so wall-clock columns \
             measure engine overhead rather than speedup."
        );
    }
}
