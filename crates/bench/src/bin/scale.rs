//! Parallel-engine scaling study (`BENCH_scale.json`).
//!
//! Per cell (application @ CPU count) this harness first runs the
//! classic sequential engine as the baseline row, then sweeps the
//! sharded parallel engine across worker counts — *including*
//! `workers == 1`, which isolates the pure windowing overhead the
//! adaptive-lookahead planner exists to eliminate. Per row it records
//! wall-clock, simulator events per second, heap allocations (count
//! and bytes, via a counting global allocator compiled into this
//! binary only), wall-clock speedup over the classic baseline, and the
//! deterministic result fingerprint — and it *asserts* the fingerprint
//! is byte-identical to the classic baseline at every worker count,
//! which is the parallel engine's core claim.
//!
//! Honest-measurement note: the parallel engine leases its threads
//! from the shared worker budget, so on a host with fewer CPUs than
//! requested workers the extra workers are simply not granted and the
//! wall-clock columns measure windowing overhead, not speedup. The
//! report records `host_cpus` so a reader can tell which regime a
//! given artifact was generated in.
//!
//! Modes:
//!
//! * `scale` — the full 64/128-CPU cells; writes `BENCH_scale.json`.
//! * `scale --smoke` — small 16-CPU cells with a reduced sweep, for CI.
//! * `scale --smoke --check <golden.json>` — assert per-cell
//!   fingerprint identity and classic-row allocation counts within
//!   tolerance against a checked-in golden; exits non-zero on any
//!   regression.
//! * `scale --smoke --write-golden <golden.json>` — regenerate the
//!   golden after an intentional behaviour change.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcc_bench::report::write_report;
use tcc_bench::{HarnessArgs, HARNESS_SEED};
use tcc_core::{ParallelConfig, SimResult, Simulator, SystemConfig};
use tcc_stats::render::TextTable;
use tcc_trace::{Json, RunReport};
use tcc_workloads::{apps, AppProfile, Scale};

/// Counting allocator: defers to the system allocator, tallying every
/// allocation. Lives only in this binary.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// The simulated machine size: past the paper's largest (64) to show
/// the engine handles more shards than any evaluated configuration.
const SCALE_CPUS: usize = 128;

/// Engine worker counts swept per application (full mode). The sweep
/// starts at 1: a `workers == 1` *parallel* row is the windowing
/// overhead a reader should compare against the classic baseline row.
const WORKER_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Reduced sweep for `--smoke` (CI).
const SMOKE_SWEEP: [usize; 3] = [1, 2, 4];

/// The swept cells. Full: the radix @ 64 acceptance cell (the Figure 7
/// machine size the speedup target is stated against) plus a 128-CPU
/// sweep of four applications. Smoke: three 16-CPU cells small enough
/// for a CI gate.
fn cells(smoke: bool) -> Vec<(AppProfile, usize)> {
    if smoke {
        vec![
            (apps::radix(), 16),
            (apps::volrend(), 16),
            (apps::equake(), 16),
        ]
    } else {
        vec![
            (apps::radix(), 64),
            (apps::radix(), SCALE_CPUS),
            (apps::specjbb(), SCALE_CPUS),
            (apps::volrend(), SCALE_CPUS),
            (apps::equake(), SCALE_CPUS),
        ]
    }
}

/// One measured row: the classic baseline (`workers == None`) or a
/// parallel-engine run at a worker count.
struct Row {
    workers: Option<usize>,
    wall_ms: f64,
    events: u64,
    alloc_count: u64,
    alloc_bytes: u64,
    fingerprint: String,
    total_cycles: u64,
    commits: u64,
}

fn run_row(app: &AppProfile, cpus: usize, workers: Option<usize>, seed: u64, scale: Scale) -> Row {
    let mut cfg = SystemConfig::with_procs(cpus);
    if let Some(w) = workers {
        cfg.parallel = Some(ParallelConfig::with_workers(w));
    }
    let programs = app.generate_scaled(cpus, seed, scale);
    let sim = Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config");
    let (a0, b0) = allocs();
    let t0 = Instant::now();
    let r: SimResult = sim.run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (a1, b1) = allocs();
    Row {
        workers,
        wall_ms,
        events: r.events,
        alloc_count: a1 - a0,
        alloc_bytes: b1 - b0,
        fingerprint: r.fingerprint(),
        total_cycles: r.total_cycles,
        commits: r.commits,
    }
}

/// One fully-measured cell: the classic row plus the parallel sweep.
struct CellResult {
    label: String,
    rows: Vec<Row>,
}

/// Allowed relative allocation-count growth before `--check` fails.
/// Only the classic row is gated: the parallel engine's thread-local
/// message pools make parallel-row counts scheduling-dependent.
const ALLOC_TOLERANCE: f64 = 0.10;

fn check_golden(path: &str, cells: &[CellResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let golden = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(Json::Arr(want)) = golden.get("cells") else {
        return Err(format!("{path}: no cells array"));
    };
    if want.len() != cells.len() {
        return Err(format!(
            "{path}: golden has {} cells, run produced {}",
            want.len(),
            cells.len()
        ));
    }
    for (w, got) in want.iter().zip(cells) {
        let cell = w.get("cell").and_then(Json::as_str).unwrap_or("?");
        if cell != got.label {
            return Err(format!(
                "cell order mismatch: golden {cell}, run {}",
                got.label
            ));
        }
        let classic = got.rows.first().expect("classic row always measured");
        let want_fp = w.get("fingerprint").and_then(Json::as_str).unwrap_or("?");
        if want_fp != classic.fingerprint {
            return Err(format!(
                "{cell}: result fingerprint changed: golden {want_fp}, run {} \
                 (simulation results must be byte-identical)",
                classic.fingerprint
            ));
        }
        let want_allocs = w
            .get("classic_alloc_count")
            .and_then(Json::as_f64)
            .unwrap_or(f64::MAX);
        let limit = want_allocs * (1.0 + ALLOC_TOLERANCE);
        if classic.alloc_count as f64 > limit {
            return Err(format!(
                "{cell}: allocation regression: {} allocs > {:.0} \
                 (golden {want_allocs:.0} + {:.0}% tolerance)",
                classic.alloc_count,
                limit,
                ALLOC_TOLERANCE * 100.0
            ));
        }
    }
    Ok(())
}

fn golden_json(cells: &[CellResult]) -> Json {
    Json::obj(vec![
        ("schema", "tcc-scale-golden/v1".into()),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let classic = c.rows.first().expect("classic row always measured");
                        Json::obj(vec![
                            ("cell", Json::from(c.label.clone())),
                            ("fingerprint", classic.fingerprint.clone().into()),
                            ("classic_alloc_count", classic.alloc_count.into()),
                            ("total_cycles", classic.total_cycles.into()),
                            ("commits", classic.commits.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    // One parse loop for everything: the shared `HarnessArgs` grammar
    // treats any free token as the app filter, which would swallow the
    // value of `--check`/`--write-golden`/`--seed`.
    let mut check: Option<String> = None;
    let mut write_golden: Option<String> = None;
    let mut smoke = false;
    let mut filter: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--check" => check = iter.next(),
            "--write-golden" => write_golden = iter.next(),
            "--smoke" => smoke = true,
            "--seed" => seed = iter.next().and_then(|v| v.parse().ok()),
            other if !other.starts_with("--") => filter = Some(other.to_string()),
            _ => {}
        }
    }
    let args = HarnessArgs {
        filter,
        smoke,
        ..HarnessArgs::default()
    };
    let seed = seed.unwrap_or(HARNESS_SEED);
    let sweep: &[usize] = if smoke { &SMOKE_SWEEP } else { &WORKER_SWEEP };
    let host_cpus = tcc_trace::report::host_cpus() as usize;
    let mut report = RunReport::new("scale");
    // This bin sweeps the engine worker count itself; the host block
    // records the largest count the run actually spun up.
    report.set_workers(*sweep.iter().max().expect("non-empty sweep") as u64);
    report.set(
        "harness",
        Json::obj(vec![
            ("seed", seed.into()),
            ("scale", if smoke { "smoke" } else { "full" }.into()),
            ("host_cpus", (host_cpus as u64).into()),
            (
                "workers",
                Json::Arr(sweep.iter().map(|&w| (w as u64).into()).collect()),
            ),
        ]),
    );
    let mut measured: Vec<CellResult> = Vec::new();
    let mut apps_json: Vec<Json> = Vec::new();
    for (app, cpus) in cells(smoke) {
        if !args.selects(app.name) {
            continue;
        }
        println!(
            "\n{} — {cpus}-CPU machine, classic baseline + engine worker sweep",
            app.name
        );
        let mut t = TextTable::new(vec![
            "Workers",
            "Engine",
            "Wall ms",
            "Events/s",
            "Allocs",
            "Speedup",
            "Fingerprint",
        ]);
        let mut rows: Vec<Row> = Vec::new();
        // The classic sequential engine is the baseline row; every
        // parallel row (including workers == 1) is compared to it.
        rows.push(run_row(&app, cpus, None, seed, args.scale()));
        for &workers in sweep {
            rows.push(run_row(&app, cpus, Some(workers), seed, args.scale()));
        }
        let base_wall = rows[0].wall_ms;
        let base_fp = rows[0].fingerprint.clone();
        let mut points: Vec<Json> = Vec::new();
        for row in &rows {
            assert_eq!(
                base_fp, row.fingerprint,
                "{}: parallel engine at {:?} workers diverged from classic",
                app.name, row.workers
            );
            let speedup = base_wall / row.wall_ms;
            let engine = if row.workers.is_some() {
                "parallel"
            } else {
                "classic"
            };
            eprintln!(
                "  {}: {engine} workers={} done ({} cycles, {:.0} ms)",
                app.name,
                row.workers.map_or_else(|| "-".into(), |w| w.to_string()),
                row.total_cycles,
                row.wall_ms
            );
            t.row(vec![
                row.workers.map_or_else(|| "-".into(), |w| w.to_string()),
                engine.to_string(),
                format!("{:.1}", row.wall_ms),
                format!("{:.0}", row.events as f64 / (row.wall_ms / 1e3)),
                row.alloc_count.to_string(),
                format!("{speedup:.2}"),
                row.fingerprint.clone(),
            ]);
            let mut fields = vec![
                ("engine", Json::from(engine)),
                ("wall_ms", Json::Num(row.wall_ms)),
                ("events", row.events.into()),
                ("alloc_count", row.alloc_count.into()),
                ("alloc_bytes", row.alloc_bytes.into()),
                ("speedup_vs_classic", Json::Num(speedup)),
                ("fingerprint", row.fingerprint.clone().into()),
                ("total_cycles", row.total_cycles.into()),
                ("commits", row.commits.into()),
            ];
            if let Some(w) = row.workers {
                fields.insert(0, ("workers", (w as u64).into()));
                // Overhead is the honest 1-CPU-host reading of the
                // wall-clock column: parallel wall over classic wall.
                fields.push(("overhead_vs_classic", Json::Num(row.wall_ms / base_wall)));
            }
            points.push(Json::obj(fields));
        }
        println!("{}", t.render());
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("cpus", (cpus as u64).into()),
            ("points", Json::Arr(points)),
        ]));
        measured.push(CellResult {
            label: format!("{}@{cpus}", app.name),
            rows,
        });
    }
    report.set("apps", Json::Arr(apps_json));
    write_report(&report);
    println!("\nFingerprints are byte-identical across all worker counts (asserted).");
    if host_cpus < *sweep.last().expect("non-empty sweep") {
        println!(
            "Note: host has {host_cpus} CPU(s); worker counts above that are \
             capped by the shared worker budget, so wall-clock columns \
             measure engine overhead rather than speedup."
        );
    }

    if let Some(path) = write_golden {
        std::fs::write(&path, golden_json(&measured).to_pretty()).expect("write golden");
        eprintln!("  wrote {path}");
    }
    if let Some(path) = check {
        match check_golden(&path, &measured) {
            Ok(()) => println!("scale-smoke: OK ({} cells match {path})", measured.len()),
            Err(e) => {
                eprintln!("scale-smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
