//! Regenerates Figure 7: execution time, speedup, and breakdown of
//! every application as the machine scales from 1 to 64 processors.

use tcc_bench::{run_app_seeded, HarnessArgs, FIG7_SIZES, HARNESS_SEED};
use tcc_stats::breakdown::scaling_curve;
use tcc_stats::render::{stacked_bar, TextTable};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let seed = args.seed.unwrap_or(HARNESS_SEED);
        let results: Vec<_> = FIG7_SIZES
            .iter()
            .map(|&n| {
                let r = run_app_seeded(&app, n, args.scale(), seed, |_| {});
                eprintln!("  {}: p={n} done ({} cycles)", app.name, r.total_cycles);
                r
            })
            .collect();
        let curve = scaling_curve(&FIG7_SIZES, &results);
        println!("\n{} — Figure 7 panel", app.name);
        let mut t = TextTable::new(vec![
            "CPUs",
            "Cycles",
            "Speedup",
            "Useful %",
            "Miss %",
            "Idle %",
            "Commit %",
            "(probe-wait %)",
            "Viol %",
            "breakdown (40 cols)",
        ]);
        for (p, r) in curve.iter().zip(&results) {
            // §4.2: "a breakdown of this commit time (not shown)
            // indicates that the majority of the time is spent probing
            // directories" — we show it.
            let commit_total: u64 = r.breakdowns.iter().map(|b| b.commit).sum();
            let probe_wait: u64 = r.proc_counters.iter().map(|c| c.probe_wait).sum();
            let probe_share = 100.0 * probe_wait as f64 / commit_total.max(1) as f64;
            t.row(vec![
                p.n_procs.to_string(),
                p.cycles.to_string(),
                format!("{:.1}", p.speedup),
                format!("{:.1}", p.pct.useful * 100.0),
                format!("{:.1}", p.pct.cache_miss * 100.0),
                format!("{:.1}", p.pct.idle * 100.0),
                format!("{:.1}", p.pct.commit * 100.0),
                format!("{probe_share:.0}%"),
                format!("{:.1}", p.pct.violation * 100.0),
                stacked_bar(&p.pct.components(), 40),
            ]);
        }
        println!("{}", t.render());
        for p in &curve {
            csv.push(vec![
                app.name.to_string(),
                p.n_procs.to_string(),
                p.cycles.to_string(),
                format!("{:.3}", p.speedup),
                format!("{:.4}", p.pct.useful),
                format!("{:.4}", p.pct.cache_miss),
                format!("{:.4}", p.pct.idle),
                format!("{:.4}", p.pct.commit),
                format!("{:.4}", p.pct.violation),
                p.violations.to_string(),
            ]);
        }
        let s32 = curve.iter().find(|p| p.n_procs == 32).map_or(0.0, |p| p.speedup);
        let s64 = curve.iter().find(|p| p.n_procs == 64).map_or(0.0, |p| p.speedup);
        summary.push((app.name.to_string(), s32, s64));
    }
    println!("\nFigure 7 summary (speedup over 1 CPU)\n");
    let mut t = TextTable::new(vec!["Application", "32 CPUs", "64 CPUs"]);
    for (name, s32, s64) in &summary {
        t.row(vec![name.clone(), format!("{s32:.1}"), format!("{s64:.1}")]);
    }
    println!("{}", t.render());
    args.write_csv(
        "fig7",
        &[
            "app", "cpus", "cycles", "speedup", "useful", "miss", "idle", "commit",
            "violation_frac", "violations",
        ],
        &csv,
    );
    println!("Paper anchors: 32-CPU speedups ~11..32; 64-CPU speedups ~16..57;");
    println!("SPECjbb2000 ~linear; SVM Classify best; equake/volrend worst");
    println!("(small transactions -> commit-time bound at high CPU counts).");
}
