//! Regenerates Figure 7: execution time, speedup, and breakdown of
//! every application as the machine scales from 1 to 64 processors.

use tcc_bench::report::{
    breakdown_json, harness_json, histogram_of, maybe_write_chrome, write_report, TransportTotals,
};
use tcc_bench::{par_map, run_app_seeded, HarnessArgs, FIG7_SIZES, HARNESS_SEED};
use tcc_stats::breakdown::scaling_curve;
use tcc_stats::render::{stacked_bar, TextTable};
use tcc_trace::{Json, RunReport};
use tcc_workloads::apps;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(HARNESS_SEED);
    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut report = RunReport::new("fig7");
    report.set_workers(args.workers() as u64);
    report.set("harness", harness_json(&args, seed));
    report.set(
        "sizes",
        Json::Arr(FIG7_SIZES.iter().map(|&n| n.into()).collect()),
    );
    let mut apps_json: Vec<Json> = Vec::new();
    let mut transport = TransportTotals::default();
    for app in apps::all() {
        if !args.selects(app.name) {
            continue;
        }
        let results = par_map(&FIG7_SIZES, args.jobs(), |&n| {
            let r = run_app_seeded(&app, n, args.scale(), seed, |cfg| args.apply_workers(cfg));
            eprintln!("  {}: p={n} done ({} cycles)", app.name, r.total_cycles);
            maybe_write_chrome(&r, &format!("fig7_{}_p{n}", app.name));
            r
        });
        for r in &results {
            transport.add(r);
        }
        let curve = scaling_curve(&FIG7_SIZES, &results);
        println!("\n{} — Figure 7 panel", app.name);
        let mut t = TextTable::new(vec![
            "CPUs",
            "Cycles",
            "Speedup",
            "Useful %",
            "Miss %",
            "Idle %",
            "Commit %",
            "(probe-wait %)",
            "Viol %",
            "breakdown (40 cols)",
        ]);
        for (p, r) in curve.iter().zip(&results) {
            // §4.2: "a breakdown of this commit time (not shown)
            // indicates that the majority of the time is spent probing
            // directories" — we show it.
            let commit_total: u64 = r.breakdowns.iter().map(|b| b.commit).sum();
            let probe_wait: u64 = r.proc_counters.iter().map(|c| c.probe_wait).sum();
            let probe_share = 100.0 * probe_wait as f64 / commit_total.max(1) as f64;
            t.row(vec![
                p.n_procs.to_string(),
                p.cycles.to_string(),
                format!("{:.1}", p.speedup),
                format!("{:.1}", p.pct.useful * 100.0),
                format!("{:.1}", p.pct.cache_miss * 100.0),
                format!("{:.1}", p.pct.idle * 100.0),
                format!("{:.1}", p.pct.commit * 100.0),
                format!("{probe_share:.0}%"),
                format!("{:.1}", p.pct.violation * 100.0),
                stacked_bar(&p.pct.components(), 40),
            ]);
        }
        println!("{}", t.render());
        for p in &curve {
            csv.push(vec![
                app.name.to_string(),
                p.n_procs.to_string(),
                p.cycles.to_string(),
                format!("{:.3}", p.speedup),
                format!("{:.4}", p.pct.useful),
                format!("{:.4}", p.pct.cache_miss),
                format!("{:.4}", p.pct.idle),
                format!("{:.4}", p.pct.commit),
                format!("{:.4}", p.pct.violation),
                p.violations.to_string(),
            ]);
        }
        let s32 = curve
            .iter()
            .find(|p| p.n_procs == 32)
            .map_or(0.0, |p| p.speedup);
        let s64 = curve
            .iter()
            .find(|p| p.n_procs == 64)
            .map_or(0.0, |p| p.speedup);
        summary.push((app.name.to_string(), s32, s64));
        // Run-report panel: per-size scalars plus the commit-phase
        // latency distribution (TID acquire -> Commit multicast) of
        // each run; the full metrics snapshot only for the largest
        // machine, where commit overlap matters most.
        let points: Vec<Json> = curve
            .iter()
            .zip(&results)
            .map(|(p, r)| {
                Json::obj(vec![
                    ("cpus", p.n_procs.into()),
                    ("cycles", p.cycles.into()),
                    ("speedup", p.speedup.into()),
                    ("breakdown", breakdown_json(r)),
                    ("commits", r.commits.into()),
                    ("violations", r.violations.into()),
                    ("commit_latency", histogram_of(r, "commit.latency")),
                ])
            })
            .collect();
        let largest = results.last().expect("at least one machine size");
        apps_json.push(Json::obj(vec![
            ("app", app.name.into()),
            ("points", Json::Arr(points)),
            ("speedup_32", s32.into()),
            ("speedup_64", s64.into()),
            (
                "metrics_largest",
                largest
                    .trace
                    .as_ref()
                    .map_or(Json::Null, |t| t.metrics_json()),
            ),
        ]));
    }
    println!("\nFigure 7 summary (speedup over 1 CPU)\n");
    let mut t = TextTable::new(vec!["Application", "32 CPUs", "64 CPUs"]);
    for (name, s32, s64) in &summary {
        t.row(vec![name.clone(), format!("{s32:.1}"), format!("{s64:.1}")]);
    }
    println!("{}", t.render());
    args.write_csv(
        "fig7",
        &[
            "app",
            "cpus",
            "cycles",
            "speedup",
            "useful",
            "miss",
            "idle",
            "commit",
            "violation_frac",
            "violations",
        ],
        &csv,
    );
    report.set("apps", Json::Arr(apps_json));
    report.set("transport", transport.to_json());
    write_report(&report);
    println!("Paper anchors: 32-CPU speedups ~11..32; 64-CPU speedups ~16..57;");
    println!("SPECjbb2000 ~linear; SVM Classify best; equake/volrend worst");
    println!("(small transactions -> commit-time bound at high CPU counts).");
}
