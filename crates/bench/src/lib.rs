//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (run with `--release`; each accepts an optional
//! application-name filter and a `--smoke` flag for quick runs):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table2` | Table 2 — simulated architecture parameters |
//! | `table3` | Table 3 — application transactional characteristics |
//! | `fig6`   | Figure 6 — uniprocessor execution-time breakdown |
//! | `fig7`   | Figure 7 — speedups & breakdowns, 2–64 CPUs |
//! | `fig8`   | Figure 8 — link-latency sensitivity at 64 CPUs |
//! | `fig9`   | Figure 9 — remote traffic per directory (bytes/instr) |
//! | `ablation` | design-choice ablations (A: parallel vs. serialized commit; B: word vs. line conflict detection; C: write-back vs. write-through traffic) |
//! | `loss`   | reliable-transport loss sweep — completion & recovery cost at 0–10% frame drop |
//!
//! Framework-free micro-benchmarks of the protocol hot paths live in
//! `benches/` (plain `std::time` harnesses, so the suite builds with no
//! network access).

pub mod report;

use tcc_core::{SimResult, Simulator, SystemConfig};
use tcc_workloads::{AppProfile, Scale};

/// Deterministic workload seed shared by all harness binaries, so every
/// figure is regenerated from the identical programs.
pub const HARNESS_SEED: u64 = 0x7cc_5eed;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Case-insensitive substring filter on application names.
    pub filter: Option<String>,
    /// Run at smoke scale (~1/8 the transactions) for a quick pass.
    pub smoke: bool,
    /// Directory to write machine-readable CSV outputs into
    /// (`--csv <dir>`), alongside the text tables on stdout.
    pub csv_dir: Option<String>,
    /// Workload seed override (`--seed <n>`), for sensitivity studies;
    /// defaults to [`HARNESS_SEED`].
    pub seed: Option<u64>,
    /// Worker threads for embarrassingly parallel sweeps
    /// (`--jobs <n>`). Each simulation is single-threaded and
    /// deterministic, so the rendered output is byte-identical for any
    /// job count; only wall-clock changes. Defaults to 1.
    pub jobs: Option<usize>,
    /// Worker threads *inside* each simulation (`--workers <n>`):
    /// values above 1 run the sharded parallel engine, whose results
    /// are byte-identical to the classic sequential engine at any
    /// worker count. Defaults to 1 (classic engine).
    pub workers: Option<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args()`: any `--smoke` flag plus an optional
    /// free-form filter string.
    #[must_use]
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            if a == "--smoke" {
                args.smoke = true;
            } else if a == "--csv" {
                args.csv_dir = iter.next();
            } else if a == "--seed" {
                args.seed = iter.next().and_then(|v| v.parse().ok());
            } else if a == "--jobs" {
                args.jobs = iter.next().and_then(|v| v.parse().ok());
            } else if a == "--workers" {
                args.workers = iter.next().and_then(|v| v.parse().ok());
            } else if !a.starts_with("--") {
                args.filter = Some(a);
            }
        }
        args
    }

    /// Writes `rows` (with `headers`) as `<csv_dir>/<name>.csv` if
    /// `--csv` was given; silently does nothing otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        let Some(dir) = &self.csv_dir else { return };
        std::fs::create_dir_all(dir).expect("create csv dir");
        let mut out = headers.join(",");
        out.push('\n');
        for r in rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, out).expect("write csv");
        eprintln!("  wrote {path}");
    }

    /// The workload scale selected.
    #[must_use]
    pub fn scale(&self) -> Scale {
        if self.smoke {
            Scale::Smoke
        } else {
            Scale::Full
        }
    }

    /// The worker-thread count for [`par_map`] sweeps.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or(1).max(1)
    }

    /// The in-simulation worker count selected by `--workers`.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1).max(1)
    }

    /// Applies the `--workers` selection to a simulation config:
    /// above 1, the run uses the sharded parallel engine (results are
    /// byte-identical to the classic engine, only wall-clock differs).
    /// The engine leases its threads from the shared [`WorkerBudget`],
    /// so combining `--jobs` with `--workers` degrades gracefully
    /// instead of oversubscribing the machine.
    pub fn apply_workers(&self, cfg: &mut SystemConfig) {
        if self.workers() > 1 {
            cfg.parallel = Some(tcc_core::ParallelConfig::with_workers(self.workers()));
        }
    }

    /// Whether `name` passes the filter.
    #[must_use]
    pub fn selects(&self, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => name.to_lowercase().contains(&f.to_lowercase()),
        }
    }
}

/// Applies `f` to every item on `jobs` worker threads, returning the
/// results in input order. With `jobs == 1` the items run sequentially
/// on the calling thread, so single-job runs behave exactly as before
/// `--jobs` existed. Each simulation is deterministic and isolated, so
/// the result vector — and anything rendered from it — is identical for
/// every job count.
///
/// The fan-out is leased from the shared [`tcc_core::WorkerBudget`], so
/// a `--jobs` sweep whose simulations themselves run the parallel
/// engine (`--workers`) degrades the thread counts instead of
/// oversubscribing the machine; a reduced grant never changes results.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let lease = tcc_core::WorkerBudget::global().lease(jobs.min(items.len()));
    let jobs = lease.workers();
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every item must have run"))
        .collect()
}

/// Runs one application on an `n`-processor machine, with `tweak`
/// applied to the configuration (e.g. a link-latency override).
#[must_use]
pub fn run_app(
    app: &AppProfile,
    n: usize,
    scale: Scale,
    tweak: impl FnOnce(&mut SystemConfig),
) -> SimResult {
    run_app_seeded(app, n, scale, HARNESS_SEED, tweak)
}

/// As [`run_app`], with an explicit workload seed.
#[must_use]
pub fn run_app_seeded(
    app: &AppProfile,
    n: usize,
    scale: Scale,
    seed: u64,
    tweak: impl FnOnce(&mut SystemConfig),
) -> SimResult {
    let mut cfg = SystemConfig::with_procs(n);
    cfg.trace = report::trace_config();
    tweak(&mut cfg);
    let programs = app.generate_scaled(n, seed, scale);
    Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config")
        .run()
}

/// The machine sizes Figure 7 sweeps.
pub const FIG7_SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The cycles-per-hop values Figure 8 sweeps.
pub const FIG8_LATENCIES: [u64; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_workloads::apps;

    #[test]
    fn harness_args_default_select_everything() {
        let a = HarnessArgs::default();
        assert!(a.selects("swim"));
        assert!(!a.smoke);
    }

    #[test]
    fn filter_is_case_insensitive_substring() {
        let a = HarnessArgs {
            filter: Some("JBB".into()),
            ..HarnessArgs::default()
        };
        assert!(a.selects("SPECjbb2000"));
        assert!(!a.selects("swim"));
    }

    #[test]
    fn par_map_preserves_order_for_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for jobs in [1, 2, 5, 64] {
            assert_eq!(par_map(&items, jobs, |x| x * 3), expect);
        }
    }

    #[test]
    fn parallel_sweeps_render_byte_identical_output() {
        // A miniature fig7-style sweep: the rendered rows must be
        // byte-identical for --jobs 1 and --jobs 3, because each
        // simulation is deterministic and par_map preserves order.
        let app = apps::volrend();
        let sizes = [1usize, 2, 4];
        let rows = |jobs: usize| -> Vec<String> {
            par_map(&sizes, jobs, |&n| {
                let r = run_app(&app, n, Scale::Smoke, |_| {});
                format!("{},{},{}", n, r.total_cycles, r.commits)
            })
        };
        assert_eq!(rows(1), rows(3));
    }

    #[test]
    fn jobs_flag_defaults_to_one() {
        assert_eq!(HarnessArgs::default().jobs(), 1);
        let a = HarnessArgs {
            jobs: Some(8),
            ..HarnessArgs::default()
        };
        assert_eq!(a.jobs(), 8);
    }

    #[test]
    fn run_app_completes_at_smoke_scale() {
        let app = apps::volrend();
        let r = run_app(&app, 2, Scale::Smoke, |c| c.check_serializability = true);
        assert!(r.commits > 0);
        r.assert_serializable();
    }
}
