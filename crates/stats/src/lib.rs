//! Measurement reduction and report rendering for the reproduction.
//!
//! The simulator (`tcc-core`) emits raw per-transaction, per-processor,
//! and per-directory observations; this crate reduces them into exactly
//! the quantities the paper reports and renders them as text tables:
//!
//! * [`percentile`] — the 90th-percentile reductions of Table 3.
//! * [`table3`] — the full Table 3 row for one application run.
//! * [`breakdown`] — normalized execution-time breakdowns
//!   (Figures 6–8) and speedups (Figure 7).
//! * [`traffic`] — bytes-per-instruction by category (Figure 9).
//! * [`render`] — plain-text table and stacked-bar rendering.

pub mod breakdown;
pub mod render;
pub mod table3;
pub mod traffic;

/// Returns the `p`-th percentile (0–100) of `values` using
/// nearest-rank interpolation; 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// use tcc_stats::percentile;
/// let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
/// assert_eq!(percentile(&v, 90.0), 9.1);
/// assert_eq!(percentile(&v, 50.0), 5.5);
/// assert_eq!(percentile(&[], 90.0), 0.0);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Convenience: 90th percentile of integer samples.
#[must_use]
pub fn p90(values: &[u64]) -> f64 {
    let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    percentile(&v, 90.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        assert_eq!(percentile(&[5.0], 90.0), 5.0);
        assert_eq!(percentile(&[1.0, 3.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 3.0], 100.0), 3.0);
        assert_eq!(percentile(&[1.0, 3.0], 50.0), 2.0);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = percentile(&[9.0, 1.0, 5.0, 3.0, 7.0], 90.0);
        let b = percentile(&[1.0, 3.0, 5.0, 7.0, 9.0], 90.0);
        assert_eq!(a, b);
    }

    #[test]
    fn p90_integers() {
        let v: Vec<u64> = (1..=100).collect();
        let x = p90(&v);
        assert!((x - 90.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        let _ = percentile(&[1.0], 150.0);
    }
}
