//! Execution-time breakdown normalization and speedups (Figures 6–8).

use tcc_core::{Breakdown, SimResult};

/// A machine-wide breakdown normalized to fractions of total execution
/// time (the stacked bars of Figures 6–8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownPct {
    /// Useful execution fraction.
    pub useful: f64,
    /// Cache-miss stall fraction.
    pub cache_miss: f64,
    /// Commit-protocol fraction.
    pub commit: f64,
    /// Violated-work fraction.
    pub violation: f64,
    /// Barrier/idle fraction.
    pub idle: f64,
}

impl BreakdownPct {
    /// Normalizes an absolute breakdown.
    #[must_use]
    pub fn from_breakdown(b: &Breakdown) -> BreakdownPct {
        let t = b.total().max(1) as f64;
        BreakdownPct {
            useful: b.useful as f64 / t,
            cache_miss: b.cache_miss as f64 / t,
            commit: b.commit as f64 / t,
            violation: b.violation as f64 / t,
            idle: b.idle as f64 / t,
        }
    }

    /// Machine-wide normalized breakdown of a run.
    #[must_use]
    pub fn from_result(r: &SimResult) -> BreakdownPct {
        BreakdownPct::from_breakdown(&r.aggregate())
    }

    /// The component fractions in Figure 6/7 legend order
    /// (useful, cache miss, idle, commit, violation) with labels.
    #[must_use]
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("Useful", self.useful),
            ("Miss", self.cache_miss),
            ("Idle", self.idle),
            ("Commit", self.commit),
            ("Violations", self.violation),
        ]
    }
}

/// One point of a Figure 7 scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Machine size.
    pub n_procs: usize,
    /// Makespan in cycles.
    pub cycles: u64,
    /// Speedup over the 1-processor run.
    pub speedup: f64,
    /// Normalized breakdown at this size.
    pub pct: BreakdownPct,
    /// Violated attempts.
    pub violations: u64,
}

/// Builds the Figure 7 curve from per-size results; `results[0]` must be
/// the uniprocessor run (the normalization base).
///
/// # Panics
///
/// Panics if `results` is empty or the base run took zero cycles.
#[must_use]
pub fn scaling_curve(sizes: &[usize], results: &[SimResult]) -> Vec<ScalingPoint> {
    assert_eq!(sizes.len(), results.len(), "one result per machine size");
    assert!(!results.is_empty(), "need at least the uniprocessor run");
    let base = results[0].total_cycles;
    assert!(base > 0, "baseline run took zero cycles");
    sizes
        .iter()
        .zip(results)
        .map(|(&n, r)| ScalingPoint {
            n_procs: n,
            cycles: r.total_cycles,
            speedup: base as f64 / r.total_cycles.max(1) as f64,
            pct: BreakdownPct::from_result(r),
            violations: r.violations,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(useful: u64, miss: u64, commit: u64, violation: u64, idle: u64) -> Breakdown {
        Breakdown {
            useful,
            cache_miss: miss,
            commit,
            violation,
            idle,
        }
    }

    #[test]
    fn percentages_sum_to_one() {
        let pct = BreakdownPct::from_breakdown(&b(50, 20, 10, 15, 5));
        let sum: f64 = pct.components().iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(pct.useful, 0.5);
        assert_eq!(pct.idle, 0.05);
    }

    #[test]
    fn zero_breakdown_is_safe() {
        let pct = BreakdownPct::from_breakdown(&Breakdown::default());
        assert_eq!(pct.useful, 0.0);
    }
}
