//! Remote-traffic reduction: bytes per instruction by category
//! (Figure 9).

use tcc_core::SimResult;
use tcc_types::TrafficCategory;

/// The Figure 9 y-axis for one application run: average remote bytes
/// delivered per directory, normalized by committed instructions,
/// broken down by category.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// `(category, bytes per instruction)`, in Figure 9 legend order.
    pub per_category: Vec<(TrafficCategory, f64)>,
    /// Sum over all categories.
    pub total: f64,
    /// Total bandwidth in MB/s assuming the paper's 2-GHz clock
    /// (Figure 9's accompanying discussion).
    pub total_mbps_at_2ghz: f64,
}

impl TrafficReport {
    /// Reduces a run's traffic statistics.
    ///
    /// Figure 9 reports "the traffic produced and consumed on average
    /// at each directory … in terms of bytes per instruction": total
    /// remote bytes divided by directories, normalized by the
    /// per-directory share of committed instructions.
    #[must_use]
    pub fn from_result(r: &SimResult) -> TrafficReport {
        let n_dirs = r.breakdowns.len().max(1) as f64;
        let instr_per_dir = (r.instructions as f64 / n_dirs).max(1.0);
        let per_category: Vec<(TrafficCategory, f64)> = TrafficCategory::ALL
            .iter()
            .map(|&c| {
                let per_dir = r.traffic.bytes_in_category(c) as f64 / n_dirs;
                (c, per_dir / instr_per_dir)
            })
            .collect();
        let total: f64 = per_category.iter().map(|(_, v)| v).sum();
        // bytes/instr × instr/s (1 instr per cycle at 2 GHz × utilization
        // folded out, as in the paper's envelope estimate).
        let cycles = r.total_cycles.max(1) as f64;
        let bytes_per_dir_total = total * instr_per_dir;
        let seconds = cycles / 2.0e9;
        let total_mbps_at_2ghz = bytes_per_dir_total / seconds / 1.0e6;
        TrafficReport {
            per_category,
            total,
            total_mbps_at_2ghz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_core::{Simulator, SystemConfig, ThreadProgram, Transaction, TxOp, WorkItem};
    use tcc_types::Addr;

    #[test]
    fn report_reflects_remote_fills() {
        // P1 loads a line homed at node 0: remote Miss traffic exists.
        let cfg = SystemConfig::with_procs(2);
        let programs = vec![
            ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(vec![TxOp::Compute(
                1000,
            )]))]),
            ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(vec![
                TxOp::Load(Addr(0)),
                TxOp::Compute(1000),
            ]))]),
        ];
        let r = Simulator::builder(cfg)
            .programs(programs)
            .build()
            .expect("valid config")
            .run();
        let t = TrafficReport::from_result(&r);
        let miss = t
            .per_category
            .iter()
            .find(|(c, _)| *c == TrafficCategory::Miss)
            .unwrap()
            .1;
        assert!(miss > 0.0, "remote fill must appear as Miss traffic");
        assert!(t.total >= miss);
        assert!(t.total_mbps_at_2ghz > 0.0);
    }

    #[test]
    fn uniprocessor_traffic_is_zero() {
        let cfg = SystemConfig::with_procs(1);
        let programs = vec![ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(
            vec![
                TxOp::Load(Addr(0)),
                TxOp::Store(Addr(64)),
                TxOp::Compute(50),
            ],
        ))])];
        let r = Simulator::builder(cfg)
            .programs(programs)
            .build()
            .expect("valid config")
            .run();
        let t = TrafficReport::from_result(&r);
        assert_eq!(t.total, 0.0);
    }
}
