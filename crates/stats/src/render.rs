//! Plain-text rendering: aligned tables and stacked bars.

/// A simple column-aligned text table builder.
///
/// # Example
///
/// ```
/// use tcc_stats::render::TextTable;
/// let mut t = TextTable::new(vec!["app", "speedup"]);
/// t.row(vec!["swim".into(), "28.0".into()]);
/// let s = t.render();
/// assert!(s.contains("app"));
/// assert!(s.contains("swim"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns (first column
    /// left-aligned, the rest right-aligned).
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..ncols {
                if i > 0 {
                    s.push_str("  ");
                }
                if i == 0 {
                    s.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    s.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            s
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal stacked bar of labelled fractions, `width`
/// characters wide, e.g. `UUUUUUMMMCC|`. Each segment uses the first
/// letter of its label; fractions are clamped to sum ≤ 1.
#[must_use]
pub fn stacked_bar(components: &[(&str, f64)], width: usize) -> String {
    let mut bar = String::with_capacity(width + 1);
    let mut used = 0usize;
    for (label, frac) in components {
        let cells = (frac.max(0.0) * width as f64).round() as usize;
        let cells = cells.min(width.saturating_sub(used));
        let ch = label.chars().next().unwrap_or('?');
        for _ in 0..cells {
            bar.push(ch);
        }
        used += cells;
    }
    while used < width {
        bar.push(' ');
        used += 1;
    }
    bar.push('|');
    bar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[3].starts_with("longer"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn stacked_bar_proportions() {
        let bar = stacked_bar(&[("Useful", 0.5), ("Miss", 0.25), ("Commit", 0.25)], 20);
        assert_eq!(bar.len(), 21);
        assert_eq!(bar.matches('U').count(), 10);
        assert_eq!(bar.matches('M').count(), 5);
        assert_eq!(bar.matches('C').count(), 5);
        assert!(bar.ends_with('|'));
    }

    #[test]
    fn stacked_bar_clamps_overflow() {
        let bar = stacked_bar(&[("A", 0.9), ("B", 0.9)], 10);
        assert_eq!(bar.len(), 11);
        assert_eq!(bar.matches('A').count(), 9);
        assert_eq!(bar.matches('B').count(), 1);
    }
}
