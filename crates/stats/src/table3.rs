//! Table 3 reduction: per-application transactional characteristics.

use tcc_core::SimResult;

use crate::p90;

/// One row of Table 3, computed from a simulation at the paper's
/// reference machine size (32 processors).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Application name.
    pub name: String,
    /// 90th-percentile committed-transaction size, in instructions.
    pub tx_size_p90: f64,
    /// 90th-percentile write-set size, in KB.
    pub write_set_kb_p90: f64,
    /// 90th-percentile read-set size, in KB.
    pub read_set_kb_p90: f64,
    /// 90th-percentile operations per word written.
    pub ops_per_word_p90: f64,
    /// 90th-percentile directories touched per commit (Writing ∪
    /// Sharing vectors).
    pub dirs_per_commit_p90: f64,
    /// 90th-percentile directory working set, in entries with remote
    /// sharers (measured across directories at end of run).
    pub working_set_p90: f64,
    /// 90th-percentile directory occupancy, in cycles per commit.
    pub occupancy_p90: f64,
}

impl Table3Row {
    /// Reduces one application run into its Table 3 row.
    #[must_use]
    pub fn from_result(name: &str, r: &SimResult) -> Table3Row {
        let sizes: Vec<u64> = r.tx_chars.iter().map(|t| t.instructions).collect();
        let wsets: Vec<u64> = r.tx_chars.iter().map(|t| t.write_set_bytes).collect();
        let rsets: Vec<u64> = r.tx_chars.iter().map(|t| t.read_set_bytes).collect();
        let opw: Vec<f64> = r
            .tx_chars
            .iter()
            .map(|t| t.ops_per_word_written())
            .collect();
        let dirs: Vec<u64> = r
            .tx_chars
            .iter()
            .map(|t| u64::from(t.dirs_touched))
            .collect();
        let ws: Vec<u64> = r.dir_working_set.iter().map(|&x| x as u64).collect();
        Table3Row {
            name: name.to_string(),
            tx_size_p90: p90(&sizes),
            write_set_kb_p90: p90(&wsets) / 1024.0,
            read_set_kb_p90: p90(&rsets) / 1024.0,
            ops_per_word_p90: crate::percentile(&opw, 90.0),
            dirs_per_commit_p90: p90(&dirs),
            working_set_p90: p90(&ws),
            occupancy_p90: p90(&r.dir_occupancy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_core::{Simulator, SystemConfig, ThreadProgram, Transaction, TxOp, WorkItem};
    use tcc_types::Addr;

    #[test]
    fn row_from_a_tiny_run() {
        let cfg = SystemConfig::with_procs(2);
        let programs: Vec<ThreadProgram> = (0..2u64)
            .map(|p| {
                ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(vec![
                    TxOp::Load(Addr(p * 4096)),
                    TxOp::Compute(100),
                    TxOp::Store(Addr(p * 4096 + 4)),
                ]))])
            })
            .collect();
        let r = Simulator::builder(cfg)
            .programs(programs)
            .build()
            .expect("valid config")
            .run();
        let row = Table3Row::from_result("tiny", &r);
        assert_eq!(row.name, "tiny");
        assert_eq!(row.tx_size_p90, 102.0);
        // One line read + one line written = 32 bytes each.
        assert!((row.write_set_kb_p90 - 32.0 / 1024.0).abs() < 1e-9);
        assert!((row.read_set_kb_p90 - 32.0 / 1024.0).abs() < 1e-9);
        assert_eq!(row.ops_per_word_p90, 102.0);
        assert!(row.dirs_per_commit_p90 >= 1.0);
    }
}
