//! Bounded ring buffer of trace records.
//!
//! The ring keeps the *most recent* `capacity` events: when full, the
//! oldest record is dropped. `recorded()` counts every push ever made,
//! so `dropped()` tells an exporter exactly how much history was lost.
//! A zero-capacity ring discards everything while still counting —
//! that is the "metrics only" tracing mode.

use std::collections::VecDeque;

use crate::event::TraceRecord;

#[derive(Debug, Clone, Default)]
pub struct EventRing {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    recorded: u64,
}

impl EventRing {
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
        }
    }

    /// Append a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, rec: TraceRecord) {
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records lost to overflow (or to a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Oldest-to-newest iteration over the retained window.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Drain the retained window, oldest first.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use tcc_types::{Cycle, NodeId, Tid};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            at: Cycle(i),
            event: TraceEvent::TidAcquire {
                node: NodeId(0),
                tid: Tid(i),
                waited: 0,
            },
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
        let ats: Vec<u64> = r.iter().map(|x| x.at.0).collect();
        assert_eq!(ats, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_by_dropping_oldest() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let ats: Vec<u64> = r.iter().map(|x| x.at.0).collect();
        assert_eq!(ats, vec![6, 7, 8, 9], "must retain the newest window");
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut r = EventRing::new(0);
        for i in 0..100 {
            r.push(rec(i));
        }
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 100);
        assert_eq!(r.dropped(), 100);
    }

    #[test]
    fn take_drains_oldest_first_and_resets_window() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(rec(i));
        }
        let taken = r.take();
        assert_eq!(
            taken.iter().map(|x| x.at.0).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(r.is_empty());
        // recorded keeps counting across a drain.
        r.push(rec(99));
        assert_eq!(r.recorded(), 6);
    }
}
