//! `tcc-trace` — observability for the Scalable TCC simulator.
//!
//! Three layers:
//!
//! 1. **Structured event trace** ([`TraceEvent`] in a bounded
//!    [`EventRing`]): typed protocol transitions — TID acquisition,
//!    message sends, NSTID advances, deferred probes, load stalls,
//!    commit phases, violations — each with a cycle timestamp and
//!    node/directory attribution.
//! 2. **Metrics registry** ([`MetricsRegistry`]): named counters and
//!    log2-bucket histograms (commit-phase latency, NSTID/probe wait,
//!    invalidation-ack windows, violations by cause).
//! 3. **Exporters**: Chrome `trace_event` JSON ([`chrome`]) for
//!    timeline visualization of parallel commit overlap, and the
//!    `BENCH_*.json` run-report schema ([`report`]).
//!
//! The [`Tracer`] handle is what instrumented components hold. It is
//! **observation-only and zero-cost when disabled**: a disabled tracer
//! is a `None` and every hook starts with that check, the event
//! constructor closures never run, and nothing the tracer does feeds
//! back into simulation state — so cycle counts and checker verdicts
//! are identical with tracing on or off (asserted by the determinism
//! test in the umbrella crate).

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod ring;

pub use event::{TraceEvent, TraceRecord, ViolationCause};
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use report::RunReport;
pub use ring::EventRing;

use std::sync::{Arc, Mutex};

use tcc_types::Cycle;

/// How much tracing a simulation run performs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Master switch; `false` makes every hook a no-op.
    pub enabled: bool,
    /// Event-ring capacity; 0 keeps metrics but retains no events.
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Events + metrics with the default 64 Ki-event window.
    pub fn full() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 1 << 16,
        }
    }

    /// Counters and histograms only — what benchmark harnesses use.
    pub fn metrics_only() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 0,
        }
    }
}

#[derive(Debug)]
struct TraceCore {
    ring: EventRing,
    metrics: MetricsRegistry,
}

/// Shared tracing handle. Cloning shares the underlying sink; all
/// instrumented components of one simulator hold clones of one tracer.
/// The sink is behind a `Mutex` so components may live on different
/// worker threads (parallel execution mode); the disabled path stays a
/// `None` check and never touches the lock.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceCore>>>,
}

impl Tracer {
    /// A tracer whose every hook is a no-op.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    pub fn new(cfg: &TraceConfig) -> Self {
        if !cfg.enabled {
            return Self::disabled();
        }
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceCore {
                ring: EventRing::new(cfg.ring_capacity),
                metrics: MetricsRegistry::default(),
            }))),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event. The closure only runs when tracing is enabled,
    /// so argument formatting costs nothing on the disabled path.
    #[inline]
    pub fn record(&self, at: Cycle, event: impl FnOnce() -> TraceEvent) {
        if let Some(core) = &self.inner {
            core.lock()
                .expect("trace sink poisoned")
                .ring
                .push(TraceRecord { at, event: event() });
        }
    }

    /// Bump a counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(core) = &self.inner {
            core.lock()
                .expect("trace sink poisoned")
                .metrics
                .inc(name, delta);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(core) = &self.inner {
            core.lock()
                .expect("trace sink poisoned")
                .metrics
                .observe(name, value);
        }
    }

    /// Extract everything recorded so far, leaving the tracer empty
    /// (but still attached and enabled). Returns `None` when disabled.
    pub fn take_report(&self) -> Option<TraceReport> {
        self.inner.as_ref().map(|core| {
            let mut core = core.lock().expect("trace sink poisoned");
            let recorded = core.ring.recorded();
            let dropped = core.ring.dropped();
            TraceReport {
                events: core.ring.take(),
                recorded,
                dropped,
                metrics: core.metrics.snapshot(),
            }
        })
    }
}

/// Everything one run recorded: the retained event window plus the
/// full metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Retained events, oldest first (the newest `ring_capacity`).
    pub events: Vec<TraceRecord>,
    /// Total events recorded, including dropped ones.
    pub recorded: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
}

impl TraceReport {
    /// Chrome `trace_event` JSON for chrome://tracing or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        chrome::chrome_trace(&self.events).to_pretty()
    }

    /// Metrics as a run-report JSON fragment.
    pub fn metrics_json(&self) -> Json {
        report::metrics_json(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::{NodeId, Tid};

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(&TraceConfig::default());
        assert!(!t.is_enabled());
        let mut ran = false;
        t.record(Cycle(1), || {
            ran = true;
            TraceEvent::TidRequest { node: NodeId(0) }
        });
        assert!(!ran, "event constructor must not run when disabled");
        t.count("x", 1);
        t.observe("y", 10);
        assert!(t.take_report().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::new(&TraceConfig::full());
        let u = t.clone();
        t.record(Cycle(5), || TraceEvent::TidAcquire {
            node: NodeId(1),
            tid: Tid(3),
            waited: 2,
        });
        u.count("commits", 2);
        let report = t.take_report().unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.metrics.counter("commits"), 2);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn metrics_only_mode_drops_events_keeps_metrics() {
        let t = Tracer::new(&TraceConfig::metrics_only());
        for i in 0..50 {
            t.record(Cycle(i), || TraceEvent::TidRequest { node: NodeId(0) });
            t.observe("h", i);
        }
        let report = t.take_report().unwrap();
        assert!(report.events.is_empty());
        assert_eq!(report.recorded, 50);
        assert_eq!(report.dropped, 50);
        assert_eq!(report.metrics.histogram("h").unwrap().count(), 50);
    }
}
