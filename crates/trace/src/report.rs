//! Machine-readable run reports (`BENCH_*.json`).
//!
//! Every `tcc-bench` binary writes one of these alongside its text
//! output. The schema is intentionally small and stable:
//!
//! ```json
//! {
//!   "schema": "tcc-run-report/v1",
//!   "bench": "fig7",
//!   "harness": { "seed": 131292909, "scale": "full" },
//!   ...benchmark-specific fields...
//! }
//! ```
//!
//! Benchmark-specific payloads are free-form [`Json`] values; the
//! fixed header is what tooling keys on. Histograms serialize with
//! their moments, coarse percentiles, and non-empty log2 buckets.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::metrics::{Histogram, MetricsSnapshot};

pub const SCHEMA: &str = "tcc-run-report/v1";

/// Logical CPUs available to this process, or 1 when undetectable.
///
/// Recorded in every report's `host` block: throughput and scaling
/// artifacts are meaningless without knowing how much hardware
/// parallelism the producing host actually had (a `--workers 8` sweep
/// regenerated on a 1-CPU container measures time-slicing, not
/// scaling).
#[must_use]
pub fn host_cpus() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

#[derive(Debug, Clone)]
pub struct RunReport {
    bench: String,
    workers: u64,
    fields: Vec<(String, Json)>,
}

impl RunReport {
    pub fn new(bench: &str) -> Self {
        RunReport {
            bench: bench.to_string(),
            workers: 1,
            fields: Vec::new(),
        }
    }

    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// Records how many OS threads the producing run actually used
    /// (default 1). Serialized in the `host` block next to
    /// [`host_cpus`], so artifacts self-describe oversubscription.
    pub fn set_workers(&mut self, workers: u64) -> &mut Self {
        self.workers = workers.max(1);
        self
    }

    /// Append a top-level field (after the fixed header).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), SCHEMA.into()),
            ("bench".to_string(), self.bench.clone().into()),
            (
                "host".to_string(),
                Json::obj(vec![
                    ("host_cpus", host_cpus().into()),
                    ("workers", self.workers.into()),
                ]),
            ),
        ];
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }

    /// Write `BENCH_<bench>.json` into `dir`, pretty-printed.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Parse a previously written report back, checking the header.
    pub fn validate(text: &str) -> Result<Json, String> {
        let v = Json::parse(text)?;
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("bad schema field: {other:?}")),
        }
        if v.get("bench").and_then(Json::as_str).is_none() {
            return Err("missing bench field".to_string());
        }
        Ok(v)
    }
}

/// Serialize a histogram: moments, coarse percentiles, and the
/// non-empty log2 buckets as `[upper_bound, count]` pairs.
pub fn histogram_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", h.count().into()),
        ("sum", h.sum().into()),
        ("min", h.min().into()),
        ("max", h.max().into()),
        ("mean", h.mean().into()),
        ("p50", h.percentile(50.0).into()),
        ("p90", h.percentile(90.0).into()),
        ("p99", h.percentile(99.0).into()),
        ("p999", h.percentile(99.9).into()),
        (
            "log2_buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(ub, n)| Json::Arr(vec![ub.into(), n.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize a whole metrics snapshot.
pub fn metrics_json(m: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), v.into()))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), histogram_json(h)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn report_roundtrips_and_validates() {
        let mut m = MetricsRegistry::default();
        m.inc("violations.conflict", 4);
        for v in [10u64, 20, 400, 3000] {
            m.observe("commit.latency", v);
        }
        let mut r = RunReport::new("fig7");
        r.set("apps", Json::Arr(vec!["barnes".into()]));
        r.set("metrics", metrics_json(&m.snapshot()));
        let text = r.to_json().to_pretty();
        let parsed = RunReport::validate(&text).expect("must validate");
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some("fig7"));
        let host = parsed.get("host").expect("host block is always present");
        assert_eq!(host.get("host_cpus").unwrap().as_u64(), Some(host_cpus()));
        assert_eq!(host.get("workers").unwrap().as_u64(), Some(1));
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("violations.conflict"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let h = parsed
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("commit.latency"))
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(h.get("max").unwrap().as_u64(), Some(3000));
        // Tail percentiles are part of the exported summary; with four
        // samples p99 and p999 both land on the largest observation.
        assert_eq!(h.get("p999").unwrap().as_u64(), Some(3000));
    }

    #[test]
    fn set_workers_is_recorded_and_clamped() {
        let mut r = RunReport::new("x");
        r.set_workers(8);
        let host = r.to_json().get("host").cloned().unwrap();
        assert_eq!(host.get("workers").unwrap().as_u64(), Some(8));
        r.set_workers(0);
        let host = r.to_json().get("host").cloned().unwrap();
        assert_eq!(host.get("workers").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        assert!(RunReport::validate(r#"{"schema":"other/v9","bench":"x"}"#).is_err());
        assert!(RunReport::validate(r#"{"schema":"tcc-run-report/v1"}"#).is_err());
        assert!(RunReport::validate("not json").is_err());
    }
}
