//! Counter and histogram registry.
//!
//! Metrics are identified by static string names (e.g.
//! `"commit.latency"`); histograms use power-of-two buckets, which is
//! plenty of resolution for latency distributions spanning 1..10^6
//! cycles and keeps recording allocation-free after the first touch.

use std::collections::BTreeMap;

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 holds the value 0), so bucket i spans [2^(i-1), 2^i).
pub const BUCKETS: usize = 65;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl Histogram {
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Folds another histogram into this one, as if every value the
    /// other observed had been [`record`](Histogram::record)ed here —
    /// how per-thread histograms combine into a run-wide one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in 0..=100): the upper bound of the
    /// first bucket at which the cumulative count reaches `p`% — exact
    /// to within the bucket's power-of-two resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper(i).min(self.max), n))
            .collect()
    }
}

/// Registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn inc(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// Owned, name-sorted copy of the registry for inclusion in results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_moments_and_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        // 0 -> bucket 0; 1 -> b1; 2,3 -> b2; 100 -> b7; 1000 -> b10.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (127, 1), (1000, 1)]
        );
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values_a = [0u64, 3, 17, 900];
        let values_b = [1u64, 17, 65_000];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in values_a {
            a.record(v);
            both.record(v);
        }
        for v in values_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is a no-op (min stays correct).
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn percentiles_are_bucket_bounded() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        assert_eq!(h.percentile(50.0), 15); // 10 lands in [8,15]
        assert_eq!(h.percentile(100.0), 100_000);
        let empty = Histogram::default();
        assert_eq!(empty.percentile(99.0), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let mut m = MetricsRegistry::default();
        m.inc("violations.conflict", 2);
        m.inc("violations.conflict", 1);
        m.observe("commit.latency", 40);
        let snap = m.snapshot();
        assert_eq!(snap.counter("violations.conflict"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram("commit.latency").unwrap().count(), 1);
    }
}
