//! Typed protocol events.
//!
//! Every observable protocol transition the simulator can report is a
//! variant here, carrying cycle-accurate attribution: which node or
//! directory it happened at, which TID it concerns, and — for the
//! paired enter/exit style events — how long the interval lasted.
//! Duration-carrying variants record the *exit* edge; the matching
//! enter edge is `at - duration`, so a ring-buffer overflow can never
//! split an interval.

use tcc_types::{Cycle, DirId, LineAddr, NodeId, Tid};

/// Why a transaction was violated (rolled back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationCause {
    /// A committer's invalidation hit a word this transaction had read.
    Conflict,
    /// The speculative read/write set overflowed the cache hierarchy.
    Overflow,
}

impl ViolationCause {
    pub fn name(self) -> &'static str {
        match self {
            ViolationCause::Conflict => "conflict",
            ViolationCause::Overflow => "overflow",
        }
    }
}

/// One structured protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A processor entered commit and asked the vendor for a TID.
    TidRequest { node: NodeId },
    /// The gap-free TID arrived; `waited` cycles since the request.
    TidAcquire { node: NodeId, tid: Tid, waited: u64 },
    /// A message entered the interconnect (multicast copies report one
    /// event per destination).
    MsgSend {
        kind: &'static str,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    },
    /// A directory's Now-Serving-TID register advanced.
    NstidAdvance { dir: DirId, from: Tid, to: Tid },
    /// A Skip landed in the directory's skip vector without advancing
    /// the NSTID (out-of-order arrival).
    SkipBuffered { dir: DirId, tid: Tid },
    /// A Probe arrived ahead of the NSTID and was queued.
    ProbeDeferred {
        dir: DirId,
        tid: Tid,
        requester: NodeId,
    },
    /// A deferred Probe was answered once the NSTID caught up.
    ProbeReleased {
        dir: DirId,
        tid: Tid,
        requester: NodeId,
        deferred_for: u64,
    },
    /// A load stalled at the directory behind a marked / commit-locked
    /// line.
    LoadStallEnter {
        dir: DirId,
        line: LineAddr,
        requester: NodeId,
    },
    /// The stalled load was re-dispatched.
    LoadStallExit {
        dir: DirId,
        line: LineAddr,
        requester: NodeId,
        stalled_for: u64,
    },
    /// A processor finished a miss stall (enter edge is `at - stalled_for`).
    MissStallExit {
        node: NodeId,
        line: LineAddr,
        stalled_for: u64,
    },
    /// Commit phase 1: Skip multicast + Probes fanned out.
    CommitAnnounce {
        node: NodeId,
        tid: Tid,
        probes: u32,
        skips: u32,
    },
    /// Commit phase 2: Marks sent, Commit multicast issued. `latency`
    /// is the full TID-acquire → Commit-multicast span.
    CommitMulticast {
        node: NodeId,
        tid: Tid,
        marks: u32,
        latency: u64,
    },
    /// A directory finished serving a committing TID (its commit span
    /// at that directory lasted `span` cycles).
    CommitComplete { dir: DirId, tid: Tid, span: u64 },
    /// The last invalidation ack for a commit arrived; the window ran
    /// `window` cycles from the invalidation fan-out.
    AckWindowClose { dir: DirId, tid: Tid, window: u64 },
    /// A transaction rolled back.
    Violation { node: NodeId, cause: ViolationCause },
    /// The chaos fault injector delayed a message by `delay` cycles
    /// past its natural arrival (adversarial-schedule exploration).
    ChaosPerturb {
        kind: &'static str,
        src: NodeId,
        dst: NodeId,
        delay: u64,
    },
    /// The chaos wire dropped a transport frame (reliable-transport
    /// runs only; the sender's retransmission timer recovers it).
    FrameDropped {
        kind: &'static str,
        src: NodeId,
        dst: NodeId,
    },
    /// The chaos wire duplicated a transport frame into `copies` extra
    /// deliveries (the receiver's dedup filter absorbs them).
    FrameDuplicated {
        kind: &'static str,
        src: NodeId,
        dst: NodeId,
        copies: u64,
    },
    /// A retransmission timer fired and re-sent every unacked frame on
    /// one channel (`count` frames, `retries` consecutive fires so far).
    RetxFired {
        src: NodeId,
        dst: NodeId,
        count: u64,
        retries: u32,
    },
}

impl TraceEvent {
    /// Stable, machine-readable variant name.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TidRequest { .. } => "tid_request",
            TraceEvent::TidAcquire { .. } => "tid_acquire",
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::NstidAdvance { .. } => "nstid_advance",
            TraceEvent::SkipBuffered { .. } => "skip_buffered",
            TraceEvent::ProbeDeferred { .. } => "probe_deferred",
            TraceEvent::ProbeReleased { .. } => "probe_released",
            TraceEvent::LoadStallEnter { .. } => "load_stall_enter",
            TraceEvent::LoadStallExit { .. } => "load_stall_exit",
            TraceEvent::MissStallExit { .. } => "miss_stall_exit",
            TraceEvent::CommitAnnounce { .. } => "commit_announce",
            TraceEvent::CommitMulticast { .. } => "commit_multicast",
            TraceEvent::CommitComplete { .. } => "commit_complete",
            TraceEvent::AckWindowClose { .. } => "ack_window_close",
            TraceEvent::Violation { .. } => "violation",
            TraceEvent::ChaosPerturb { .. } => "chaos_perturb",
            TraceEvent::FrameDropped { .. } => "frame_dropped",
            TraceEvent::FrameDuplicated { .. } => "frame_duplicated",
            TraceEvent::RetxFired { .. } => "retx_fired",
        }
    }
}

/// A timestamped event as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    pub at: Cycle,
    pub event: TraceEvent,
}
