//! Minimal JSON value, writer, and parser.
//!
//! The container has no serde, so exporters build this value type by
//! hand. Objects preserve insertion order, which keeps emitted reports
//! stable and diffable. The parser exists so run-report schemas can be
//! round-trip tested and future tools can read `BENCH_*.json` back.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_num(out: &mut String, n: f64) {
        if !n.is_finite() {
            out.push_str("null");
        } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    }

    fn write_to(&self, out: &mut String, indent: usize, level: usize) {
        let (nl, pad, pad_in) = if indent > 0 {
            (
                "\n",
                " ".repeat(indent * level),
                " ".repeat(indent * (level + 1)),
            )
        } else {
            ("", String::new(), String::new())
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => Self::write_num(out, *n),
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_to(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    Self::write_escaped(out, k);
                    out.push(':');
                    if indent > 0 {
                        out.push(' ');
                    }
                    v.write_to(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out, 0, 0);
        out
    }

    /// Pretty serialization with 2-space indentation plus a trailing
    /// newline (the format `BENCH_*.json` files are committed in).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out, 2, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{s}': {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Json::obj(vec![
            ("name", "fig7".into()),
            ("ok", true.into()),
            ("nothing", Json::Null),
            ("speedup", 13.25.into()),
            ("cycles", 123456u64.into()),
            ("apps", Json::Arr(vec!["barnes".into(), "equake".into()])),
            (
                "nested",
                Json::obj(vec![
                    ("empty_arr", Json::Arr(vec![])),
                    ("empty_obj", Json::Obj(vec![])),
                ]),
            ),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line\nbreak \"quoted\" back\\slash \t tab \u{1} ctl".to_string());
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42u64).to_compact(), "42");
        assert_eq!(Json::from(2.5f64).to_compact(), "2.5");
        assert_eq!(Json::from(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert!(v.get("d").is_none());
    }
}
