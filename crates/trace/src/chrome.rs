//! Chrome `trace_event` exporter.
//!
//! Converts the retained event window into the JSON Array Format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly. Simulated cycles are mapped 1:1 to microseconds (the
//! viewers have no notion of cycles).
//!
//! Track layout:
//! * `pid 0` — processors, one thread row per node: TID-wait and
//!   commit-phase slices, miss stalls, violation instants.
//! * `pid 1` — directories, one thread row per directory: commit
//!   service spans, deferred probes, invalidation-ack windows, load
//!   stalls, and an NSTID counter series.
//!
//! Duration events are emitted at their *exit* edge as complete (`X`)
//! slices starting `duration` earlier, so overlapping commits across
//! directories line up visually — the parallel-commit overlap the
//! protocol is built around.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::Json;

const PID_PROCS: u64 = 0;
const PID_DIRS: u64 = 1;

fn slice(name: &str, pid: u64, tid: u64, start: u64, dur: u64, args: Vec<(&str, Json)>) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "X".into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("ts", start.into()),
        ("dur", dur.into()),
        ("args", Json::obj(args)),
    ])
}

fn instant(name: &str, pid: u64, tid: u64, ts: u64, args: Vec<(&str, Json)>) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "i".into()),
        ("s", "t".into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("ts", ts.into()),
        ("args", Json::obj(args)),
    ])
}

fn counter(name: &str, pid: u64, tid: u64, ts: u64, value: u64) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "C".into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("ts", ts.into()),
        ("args", Json::obj(vec![("value", value.into())])),
    ])
}

fn meta(name: &str, pid: u64, label: &str) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "M".into()),
        ("pid", pid.into()),
        ("args", Json::obj(vec![("name", label.into())])),
    ])
}

/// Build the `trace_event` array for a window of records.
pub fn chrome_trace(records: &[TraceRecord]) -> Json {
    let mut out = vec![
        meta("process_name", PID_PROCS, "processors"),
        meta("process_name", PID_DIRS, "directories"),
    ];
    for rec in records {
        let at = rec.at.0;
        match &rec.event {
            TraceEvent::TidAcquire { node, tid, waited } => {
                out.push(slice(
                    "tid_wait",
                    PID_PROCS,
                    node.0 as u64,
                    at.saturating_sub(*waited),
                    *waited,
                    vec![("tid", tid.0.into())],
                ));
            }
            TraceEvent::CommitMulticast {
                node,
                tid,
                marks,
                latency,
            } => {
                out.push(slice(
                    "commit",
                    PID_PROCS,
                    node.0 as u64,
                    at.saturating_sub(*latency),
                    *latency,
                    vec![("tid", tid.0.into()), ("marks", (*marks).into())],
                ));
            }
            TraceEvent::MissStallExit {
                node,
                line,
                stalled_for,
            } => {
                out.push(slice(
                    "miss_stall",
                    PID_PROCS,
                    node.0 as u64,
                    at.saturating_sub(*stalled_for),
                    *stalled_for,
                    vec![("line", format!("{line}").into())],
                ));
            }
            TraceEvent::Violation { node, cause } => {
                out.push(instant(
                    "violation",
                    PID_PROCS,
                    node.0 as u64,
                    at,
                    vec![("cause", cause.name().into())],
                ));
            }
            TraceEvent::CommitComplete { dir, tid, span } => {
                out.push(slice(
                    "dir_commit",
                    PID_DIRS,
                    dir.0 as u64,
                    at.saturating_sub(*span),
                    *span,
                    vec![("tid", tid.0.into())],
                ));
            }
            TraceEvent::ProbeReleased {
                dir,
                tid,
                requester,
                deferred_for,
            } => {
                out.push(slice(
                    "probe_deferred",
                    PID_DIRS,
                    dir.0 as u64,
                    at.saturating_sub(*deferred_for),
                    *deferred_for,
                    vec![
                        ("tid", tid.0.into()),
                        ("requester", (requester.0 as u64).into()),
                    ],
                ));
            }
            TraceEvent::AckWindowClose { dir, tid, window } => {
                out.push(slice(
                    "inv_ack_window",
                    PID_DIRS,
                    dir.0 as u64,
                    at.saturating_sub(*window),
                    *window,
                    vec![("tid", tid.0.into())],
                ));
            }
            TraceEvent::LoadStallExit {
                dir,
                line,
                requester,
                stalled_for,
            } => {
                out.push(slice(
                    "load_stall",
                    PID_DIRS,
                    dir.0 as u64,
                    at.saturating_sub(*stalled_for),
                    *stalled_for,
                    vec![
                        ("line", format!("{line}").into()),
                        ("requester", (requester.0 as u64).into()),
                    ],
                ));
            }
            TraceEvent::NstidAdvance { dir, to, .. } => {
                out.push(counter("nstid", PID_DIRS, dir.0 as u64, at, to.0));
            }
            // Point events that would only add noise to the timeline
            // (full fidelity lives in the structured event list).
            TraceEvent::TidRequest { .. }
            | TraceEvent::MsgSend { .. }
            | TraceEvent::SkipBuffered { .. }
            | TraceEvent::ProbeDeferred { .. }
            | TraceEvent::LoadStallEnter { .. }
            | TraceEvent::CommitAnnounce { .. }
            | TraceEvent::ChaosPerturb { .. }
            | TraceEvent::FrameDropped { .. }
            | TraceEvent::FrameDuplicated { .. }
            | TraceEvent::RetxFired { .. } => {}
        }
    }
    Json::Arr(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::{Cycle, DirId, NodeId, Tid};

    #[test]
    fn commit_slices_carry_their_span() {
        let records = vec![
            TraceRecord {
                at: Cycle(150),
                event: TraceEvent::CommitComplete {
                    dir: DirId(2),
                    tid: Tid(7),
                    span: 50,
                },
            },
            TraceRecord {
                at: Cycle(160),
                event: TraceEvent::Violation {
                    node: NodeId(3),
                    cause: crate::ViolationCause::Conflict,
                },
            },
        ];
        let json = chrome_trace(&records);
        let arr = json.as_arr().unwrap();
        // 2 metadata + 1 slice + 1 instant.
        assert_eq!(arr.len(), 4);
        let commit = &arr[2];
        assert_eq!(commit.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(commit.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(commit.get("dur").unwrap().as_u64(), Some(50));
        assert_eq!(commit.get("tid").unwrap().as_u64(), Some(2));
        // The export parses back as valid JSON.
        assert_eq!(Json::parse(&json.to_compact()).unwrap(), json);
    }
}
