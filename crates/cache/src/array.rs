//! A generic set-associative array with true-LRU replacement.

use tcc_types::LineAddr;

/// Checkpoint view of one array: per set, every way's
/// `(line, stamp, payload)` in physical slot order.
pub type ExportedWays<'a, T> = Vec<Vec<(LineAddr, u64, &'a T)>>;

/// One way of a set: a tag plus caller-defined payload, stamped for LRU.
#[derive(Debug, Clone)]
struct Way<T> {
    line: LineAddr,
    stamp: u64,
    data: T,
}

/// A set-associative tag/data array with true-LRU replacement.
///
/// Used for both cache levels: the L2 stores full [`crate::LineState`]
/// payloads, the L1 is a tag-only presence filter (`T = ()`) over the
/// inclusive L2.
#[derive(Debug, Clone)]
pub struct SetArray<T> {
    sets: Vec<Vec<Way<T>>>,
    ways: usize,
    tick: u64,
}

impl<T> SetArray<T> {
    /// Creates an array of `sets` sets with `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> SetArray<T> {
        assert!(sets > 0 && ways > 0, "cache dimensions must be nonzero");
        SetArray {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn n_ways(&self) -> usize {
        self.ways
    }

    /// Total lines currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_of(&self, line: LineAddr) -> usize {
        // XOR-folded set hashing (as in many real cache designs):
        // plain modulo indexing pathologically aliases address streams
        // whose lines stride by a multiple of the set count — exactly
        // what NUMA-interleaved home placement produces.
        let h = line.0 ^ (line.0 >> 12);
        (h % self.sets.len() as u64) as usize
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `line`, refreshing its LRU position on a hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let stamp = self.bump();
        let set = self.set_of(line);
        let way = self.sets[set].iter_mut().find(|w| w.line == line)?;
        way.stamp = stamp;
        Some(&mut way.data)
    }

    /// Looks up `line` without disturbing LRU state.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| &w.data)
    }

    /// Whether `line` is resident (no LRU update).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts `line`; if its set is full, evicts a victim first.
    ///
    /// The victim is the least-recently-used way for which
    /// `may_evict(&victim)` holds. Returns `Ok(evicted)` on success
    /// (`evicted` is `None` if there was a free way) or `Err(data)` if
    /// the set is full and no way may be evicted — the caller's
    /// speculative-overflow case.
    ///
    /// # Panics
    ///
    /// Panics if `line` is already resident; callers must update in
    /// place via [`SetArray::get_mut`] instead of re-inserting.
    pub fn insert(
        &mut self,
        line: LineAddr,
        data: T,
        may_evict: impl Fn(&T) -> bool,
    ) -> Result<Option<(LineAddr, T)>, T> {
        let stamp = self.bump();
        let set_idx = self.set_of(line);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        assert!(
            set.iter().all(|w| w.line != line),
            "line {line} already resident; update in place"
        );
        if set.len() < ways {
            set.push(Way { line, stamp, data });
            return Ok(None);
        }
        // Full set: evict the LRU way that the caller permits.
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, w)| may_evict(&w.data))
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(&mut set[i], Way { line, stamp, data });
                Ok(Some((old.line, old.data)))
            }
            None => Err(data),
        }
    }

    /// Removes `line`, returning its payload if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).data)
    }

    /// Iterates over all resident lines (no LRU effect, arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets.iter().flatten().map(|w| (w.line, &w.data))
    }

    /// Mutably iterates over all resident lines (no LRU effect).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        self.sets
            .iter_mut()
            .flatten()
            .map(|w| (w.line, &mut w.data))
    }

    /// Checkpoint view: the LRU tick plus, per set, every way's
    /// `(line, stamp, payload)` in physical slot order. Slot order is
    /// preserved (not just the stamp order) so a restored array is
    /// byte-identical in layout, not merely LRU-equivalent — eviction
    /// scans and `iter()` order then replay exactly.
    #[must_use]
    pub fn export_ways(&self) -> (u64, ExportedWays<'_, T>) {
        let sets = self
            .sets
            .iter()
            .map(|set| set.iter().map(|w| (w.line, w.stamp, &w.data)).collect())
            .collect();
        (self.tick, sets)
    }

    /// Overwrites this array's contents with state captured by
    /// [`SetArray::export_ways`] from an identically-dimensioned array.
    ///
    /// # Panics
    ///
    /// Panics if the set count differs, a set exceeds the
    /// associativity, or a stamp is ahead of `tick` (the snapshot does
    /// not belong to this geometry).
    pub fn restore_ways(&mut self, tick: u64, sets: Vec<Vec<(LineAddr, u64, T)>>) {
        assert_eq!(sets.len(), self.sets.len(), "set count mismatch");
        self.tick = tick;
        for (dst, src) in self.sets.iter_mut().zip(sets) {
            assert!(src.len() <= self.ways, "set exceeds associativity");
            dst.clear();
            for (line, stamp, data) in src {
                assert!(stamp <= tick, "way stamp {stamp} ahead of tick {tick}");
                dst.push(Way { line, stamp, data });
            }
        }
    }

    /// Removes every line for which `pred` holds, returning them.
    pub fn drain_filter(
        &mut self,
        mut pred: impl FnMut(LineAddr, &T) -> bool,
    ) -> Vec<(LineAddr, T)> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if pred(set[i].line, &set[i].data) {
                    let w = set.swap_remove(i);
                    out.push((w.line, w.data));
                } else {
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::rng::SmallRng;

    #[test]
    fn insert_and_lookup() {
        let mut a: SetArray<u32> = SetArray::new(4, 2);
        assert!(a.insert(LineAddr(0), 10, |_| true).unwrap().is_none());
        assert!(a.insert(LineAddr(4), 20, |_| true).unwrap().is_none());
        assert_eq!(a.peek(LineAddr(0)), Some(&10));
        assert_eq!(a.get_mut(LineAddr(4)), Some(&mut 20));
        assert!(a.contains(LineAddr(4)));
        assert!(!a.contains(LineAddr(8)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let mut a: SetArray<u32> = SetArray::new(1, 2);
        a.insert(LineAddr(0), 0, |_| true).unwrap();
        a.insert(LineAddr(1), 1, |_| true).unwrap();
        // Touch line 0 so line 1 becomes LRU.
        a.get_mut(LineAddr(0));
        let evicted = a.insert(LineAddr(2), 2, |_| true).unwrap();
        assert_eq!(evicted, Some((LineAddr(1), 1)));
        assert!(a.contains(LineAddr(0)));
        assert!(a.contains(LineAddr(2)));
    }

    #[test]
    fn pinned_ways_are_skipped_for_eviction() {
        let mut a: SetArray<u32> = SetArray::new(1, 2);
        a.insert(LineAddr(0), 100, |_| true).unwrap(); // LRU but pinned
        a.insert(LineAddr(1), 5, |_| true).unwrap();
        let evicted = a.insert(LineAddr(2), 7, |&d| d < 50).unwrap();
        assert_eq!(
            evicted,
            Some((LineAddr(1), 5)),
            "pinned LRU way must survive"
        );
    }

    #[test]
    fn full_set_of_pinned_ways_reports_overflow() {
        let mut a: SetArray<u32> = SetArray::new(1, 2);
        a.insert(LineAddr(0), 1, |_| true).unwrap();
        a.insert(LineAddr(1), 2, |_| true).unwrap();
        assert!(a.insert(LineAddr(2), 3, |_| false).is_err());
        // The failed insert must not have displaced anything.
        assert!(a.contains(LineAddr(0)) && a.contains(LineAddr(1)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_and_drain() {
        let mut a: SetArray<u32> = SetArray::new(2, 2);
        for i in 0..4 {
            a.insert(LineAddr(i), i as u32, |_| true).unwrap();
        }
        assert_eq!(a.remove(LineAddr(1)), Some(1));
        assert_eq!(a.remove(LineAddr(1)), None);
        let odd = a.drain_filter(|l, _| l.0 % 2 == 1);
        assert_eq!(odd, vec![(LineAddr(3), 3)]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut a: SetArray<u32> = SetArray::new(1, 2);
        a.insert(LineAddr(0), 1, |_| true).unwrap();
        a.insert(LineAddr(0), 2, |_| true).unwrap();
    }

    #[test]
    fn lines_map_to_sets_by_modulo() {
        let mut a: SetArray<u32> = SetArray::new(4, 1);
        // Lines 0 and 4 collide; 1 does not.
        a.insert(LineAddr(0), 0, |_| true).unwrap();
        a.insert(LineAddr(1), 1, |_| true).unwrap();
        let ev = a.insert(LineAddr(4), 4, |_| true).unwrap();
        assert_eq!(ev, Some((LineAddr(0), 0)));
        assert!(a.contains(LineAddr(1)));
    }

    /// Capacity is never exceeded and every resident line is findable.
    #[test]
    fn prop_capacity_respected() {
        let mut rng = SmallRng::seed_from_u64(0xa44a_0001);
        for _ in 0..256 {
            let mut a: SetArray<u64> = SetArray::new(4, 2);
            let n = rng.gen_range(1usize..200);
            for _ in 0..n {
                let l = rng.gen_range(0u64..64);
                if !a.contains(LineAddr(l)) {
                    let _ = a.insert(LineAddr(l), l, |_| true);
                }
                assert!(a.len() <= 8);
                assert_eq!(a.peek(LineAddr(l)).copied(), Some(l));
            }
        }
    }

    /// An element touched every step is never evicted by other traffic
    /// in the same set (true LRU).
    #[test]
    fn prop_hot_line_survives() {
        let mut rng = SmallRng::seed_from_u64(0xa44a_0002);
        for _ in 0..256 {
            let mut a: SetArray<u64> = SetArray::new(1, 4);
            a.insert(LineAddr(1000), 1000, |_| true).unwrap();
            let n = rng.gen_range(1usize..100);
            for _ in 0..n {
                let l = rng.gen_range(0u64..32);
                assert!(a.get_mut(LineAddr(1000)).is_some(), "hot line evicted");
                if !a.contains(LineAddr(l)) {
                    let _ = a.insert(LineAddr(l), l, |_| true);
                }
            }
            assert!(a.contains(LineAddr(1000)));
        }
    }
}
