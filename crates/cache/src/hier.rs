//! The two-level inclusive speculative cache hierarchy.

use tcc_types::snap::{SnapError, SnapReader, SnapWriter};
use tcc_types::{LineAddr, LineValues, Tid, WordMask};

use crate::array::SetArray;
use crate::config::{CacheConfig, Level};
use crate::line::LineState;

/// Result of a load access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The word was serviced by the hierarchy.
    Hit {
        /// Level that serviced it (for latency accounting).
        level: Level,
        /// Observed value: the last committed writer of the word, or
        /// `None` if the word was never written. Only meaningful when
        /// `own_speculative` is false.
        value: Option<Tid>,
        /// The word carried this transaction's own SM bit: the load read
        /// its own speculative write (no SR bit is set, and the
        /// observation is not a committed-state read).
        own_speculative: bool,
        /// This is the transaction's first read of this word (its SR
        /// bit was clear): the load is a fresh committed-state
        /// observation worth recording.
        first_read: bool,
    },
    /// The word is not present (cold miss, or its valid bit was cleared
    /// by an invalidation): a `LoadRequest` must be sent to the home
    /// directory, and the access retried after the fill.
    Miss,
}

/// Result of a store access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The store was absorbed by the hierarchy.
    Hit {
        /// Level that absorbed it.
        level: Level,
        /// §3.1: the first speculative write of a transaction to a line
        /// whose *dirty* bit is set must first write that committed data
        /// back, so an abort cannot destroy it. When present, the caller
        /// must send this `WriteBack` to the home directory.
        pre_writeback: Option<Eviction>,
    },
    /// Write-allocate: the line must be fetched before the store can be
    /// performed.
    Miss,
}

/// A line leaving the hierarchy (capacity eviction or explicit flush).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// The departing line.
    pub line: LineAddr,
    /// Its contents at departure.
    pub values: LineValues,
    /// Words of `values` that are valid (a dirty line can have holes
    /// where later commits invalidated words it no longer owns).
    pub valid: WordMask,
    /// True if the line held committed data newer than memory: the
    /// caller must send a `WriteBack` message to the home directory.
    pub dirty: bool,
    /// The ownership generation of the departing data (the TID whose
    /// commit produced it) — the write-back's staleness tag.
    pub generation: Option<Tid>,
}

/// Result of installing a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillResult {
    /// Dirty lines displaced by the fill; each needs a `WriteBack`.
    pub evictions: Vec<Eviction>,
    /// The fill could not be installed without displacing a line that
    /// carries speculative state (SR/SM): the hardware's buffering is
    /// exhausted. The caller must fall back to the overflow policy
    /// (violate and re-execute serialized, §3.1).
    pub overflow: bool,
}

/// Result of a forced (serialized-mode) fill.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForcedFillResult {
    /// Dirty non-speculative victim needing a `WriteBack`.
    pub evictions: Vec<Eviction>,
    /// A displaced *speculative* line: `(line, state, valid words)`.
    /// The caller must retain it in its overflow buffer. If the line was
    /// also *dirty* (committed data owned by this processor, read by the
    /// current transaction), `state.dirty` is true and the caller must
    /// flush the committed words home — while staying on the sharers
    /// list, because the buffered SR/SM bits still need invalidations.
    pub spilled: Option<(LineAddr, LineState, WordMask)>,
}

/// Result of processing an invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidateOutcome {
    /// The line was resident.
    pub was_present: bool,
    /// The invalidated words intersect the current transaction's
    /// speculatively-read words: the transaction must violate.
    pub conflict: bool,
    /// The cache still holds transactional interest in the line (SR/SM
    /// bits of the current transaction); reported back to the directory
    /// in the invalidation ack so it can prune inactive sharers.
    pub retained: bool,
}

/// Hit/miss and maintenance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads serviced by L1.
    pub l1_load_hits: u64,
    /// Loads serviced by L2.
    pub l2_load_hits: u64,
    /// Loads that left the hierarchy.
    pub load_misses: u64,
    /// Stores absorbed by L1.
    pub l1_store_hits: u64,
    /// Stores absorbed by L2.
    pub l2_store_hits: u64,
    /// Stores that required a write-allocate fill.
    pub store_misses: u64,
    /// Dirty lines written back on eviction or pre-write.
    pub writebacks: u64,
    /// Fills rejected because a speculative line would be displaced.
    pub overflows: u64,
}

/// The private two-level cache hierarchy of one TCC processor.
///
/// The L2 is the authoritative store (inclusive of L1); the L1 is a
/// tag-only presence filter used for latency modelling. Both levels of
/// the paper's hardware track SR/SM state; modelling the state once in
/// the inclusive L2 is behaviourally identical.
///
/// Word validity: invalidations clear per-word valid bits, but words the
/// current transaction has speculatively written remain readable (the
/// committed write they superseded is irrelevant to this transaction
/// unless it also *read* the word, which is the violation case).
#[derive(Debug)]
pub struct HierCache {
    config: CacheConfig,
    l1: SetArray<()>,
    l2: SetArray<Entry>,
    stats: CacheStats,
}

#[derive(Debug, Clone)]
struct Entry {
    state: LineState,
    /// Per-word valid bits; cleared by word-granularity invalidations.
    valid: WordMask,
}

impl HierCache {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new(config: CacheConfig) -> HierCache {
        let l1 = SetArray::new(config.sets(Level::L1), config.l1_ways as usize);
        let l2 = SetArray::new(config.sets(Level::L2), config.l2_ways as usize);
        HierCache {
            config,
            l1,
            l2,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Whether `line` is resident (any level).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }

    /// Number of resident lines carrying speculative state.
    #[must_use]
    pub fn speculative_lines(&self) -> usize {
        self.l2
            .iter()
            .filter(|(_, e)| e.state.is_speculative())
            .count()
    }

    fn level_of(&self, line: LineAddr) -> Level {
        if self.l1.contains(line) {
            Level::L1
        } else {
            Level::L2
        }
    }

    /// Promotes `line` into L1 (tag only). L1 victims are silent: their
    /// state remains in the inclusive L2.
    fn promote_to_l1(&mut self, line: LineAddr) {
        if self.l1.contains(line) {
            self.l1.get_mut(line); // refresh LRU
            return;
        }
        // Any L1 way may be replaced: the L2 retains the state.
        let _ = self.l1.insert(line, (), |_| true);
    }

    /// Performs a speculative load of word `word` of `line`.
    ///
    /// On a hit, sets the SR tracking bits (unless the word carries this
    /// transaction's own SM bit) and returns the observed committed
    /// writer. On a miss the caller must fetch the line and retry.
    pub fn load(&mut self, line: LineAddr, word: usize) -> LoadOutcome {
        let track = self.config.track_mask(word);
        let level = self.level_of(line);
        let Some(entry) = self.l2.get_mut(line) else {
            self.stats.load_misses += 1;
            return LoadOutcome::Miss;
        };
        let own = entry.state.sm.get(word);
        if !own && !entry.valid.get(word) {
            // Present but the word was invalidated: upgrade miss.
            self.stats.load_misses += 1;
            return LoadOutcome::Miss;
        }
        let value = entry.state.values.words.get(word).copied().flatten();
        let first_read = !own && !entry.state.sr.get(word);
        if !own {
            entry.state.sr = entry.state.sr.union(track);
        }
        match level {
            Level::L1 => self.stats.l1_load_hits += 1,
            Level::L2 => self.stats.l2_load_hits += 1,
        }
        self.promote_to_l1(line);
        LoadOutcome::Hit {
            level,
            value,
            own_speculative: own,
            first_read,
        }
    }

    /// Performs a speculative store to word `word` of `line`.
    ///
    /// The stored "value" is implicit: at commit time the word's writer
    /// stamp becomes the committing TID (see [`HierCache::commit_tx`]).
    pub fn store(&mut self, line: LineAddr, word: usize) -> StoreOutcome {
        let track = self.config.track_mask(word);
        let level = self.level_of(line);
        let Some(entry) = self.l2.get_mut(line) else {
            self.stats.store_misses += 1;
            return StoreOutcome::Miss;
        };
        // First speculative write to a dirty line: write the committed
        // data back first so an abort cannot destroy it (§3.1).
        let mut pre_writeback = None;
        if entry.state.dirty && entry.state.sm.is_empty() {
            entry.state.dirty = false;
            pre_writeback = Some(Eviction {
                line,
                values: entry.state.values.clone(),
                valid: entry.valid,
                dirty: true,
                generation: entry.state.owner_tid,
            });
            self.stats.writebacks += 1;
        }
        entry.state.sm = entry.state.sm.union(track);
        match level {
            Level::L1 => self.stats.l1_store_hits += 1,
            Level::L2 => self.stats.l2_store_hits += 1,
        }
        self.promote_to_l1(line);
        StoreOutcome::Hit {
            level,
            pre_writeback,
        }
    }

    /// Installs fill data for `line` after a miss.
    ///
    /// If the line is already resident (partial-validity upgrade miss),
    /// the fill merges: words this transaction has speculatively written
    /// keep their speculative identity, all others take the fill values
    /// and become valid.
    ///
    /// `dirty` marks fills that arrive with ownership (not used by the
    /// standard protocol, which fills clean, but exercised by tests and
    /// the write-through baseline).
    pub fn fill(&mut self, line: LineAddr, values: LineValues, dirty: bool) -> FillResult {
        let full = self.config.full_line_mask();
        if let Some(entry) = self.l2.get_mut(line) {
            // Merge into the resident (partially invalid) copy. Only
            // *invalid*, non-speculative words take the fill data:
            // valid words are always at least as new as memory (an
            // invalidation would have cleared them otherwise), and
            // words this processor owns may be strictly newer.
            for w in full.iter() {
                if !entry.state.sm.get(w) && !entry.valid.get(w) {
                    if let (Some(dst), Some(src)) =
                        (entry.state.values.words.get_mut(w), values.words.get(w))
                    {
                        *dst = *src;
                    }
                }
            }
            entry.valid = full;
            entry.state.dirty |= dirty;
            if dirty && entry.state.owner_tid.is_none() {
                entry.state.owner_tid = Some(Tid(0));
            }
            self.promote_to_l1(line);
            return FillResult {
                evictions: Vec::new(),
                overflow: false,
            };
        }
        let entry = Entry {
            state: LineState {
                dirty,
                // A fill that arrives owning the line (test/baseline
                // paths only) gets the oldest generation: any real
                // commit's write-back supersedes it.
                owner_tid: dirty.then_some(Tid(0)),
                ..LineState::filled(values)
            },
            valid: full,
        };
        match self.l2.insert(line, entry, |e| !e.state.is_speculative()) {
            Ok(victim) => {
                let mut evictions = Vec::new();
                if let Some((vline, ventry)) = victim {
                    self.l1.remove(vline); // maintain inclusion
                    if ventry.state.dirty {
                        self.stats.writebacks += 1;
                        evictions.push(Eviction {
                            line: vline,
                            values: ventry.state.values,
                            valid: ventry.valid,
                            dirty: true,
                            generation: ventry.state.owner_tid,
                        });
                    }
                }
                self.promote_to_l1(line);
                FillResult {
                    evictions,
                    overflow: false,
                }
            }
            Err(_) => {
                self.stats.overflows += 1;
                FillResult {
                    evictions: Vec::new(),
                    overflow: true,
                }
            }
        }
    }

    /// Installs a fill even when every way of the target set carries
    /// speculative state, by unconditionally evicting the LRU way.
    ///
    /// This is the serialized-mode (early-TID) overflow path: the
    /// displaced speculative line's state is returned in
    /// [`ForcedFillResult::spilled`] for the processor to keep in its
    /// unbounded victim buffer (a VTM-style virtualization; see
    /// DESIGN.md). Dirty victims still produce write-backs.
    pub fn fill_forced(&mut self, line: LineAddr, values: LineValues) -> ForcedFillResult {
        let full = self.config.full_line_mask();
        self.install_forced(line, LineState::filled(values), full)
    }

    /// Installs an arbitrary line state (e.g. an entry returning from
    /// the overflow victim buffer), evicting unconditionally as
    /// [`HierCache::fill_forced`] does.
    pub fn install_forced(
        &mut self,
        line: LineAddr,
        state: LineState,
        valid: WordMask,
    ) -> ForcedFillResult {
        debug_assert!(!self.l2.contains(line), "install_forced on resident line");
        let entry = Entry { state, valid };
        match self.l2.insert(line, entry, |_| true) {
            Ok(victim) => {
                let mut out = ForcedFillResult::default();
                if let Some((vline, ventry)) = victim {
                    self.l1.remove(vline);
                    if ventry.state.is_speculative() {
                        out.spilled = Some((vline, ventry.state, ventry.valid));
                    } else if ventry.state.dirty {
                        self.stats.writebacks += 1;
                        out.evictions.push(Eviction {
                            line: vline,
                            values: ventry.state.values,
                            valid: ventry.valid,
                            dirty: true,
                            generation: ventry.state.owner_tid,
                        });
                    }
                }
                self.promote_to_l1(line);
                out
            }
            Err(_) => unreachable!("insert with unconditional eviction cannot fail"),
        }
    }

    /// The current transaction's write-set: every line with SM bits and
    /// the words written, in deterministic (line-address) order. This is
    /// what the commit protocol sends as `Mark` messages.
    #[must_use]
    pub fn write_set(&self) -> Vec<(LineAddr, WordMask)> {
        let mut ws: Vec<_> = self
            .l2
            .iter()
            .filter(|(_, e)| e.state.is_speculatively_modified())
            .map(|(l, e)| (l, e.state.sm))
            .collect();
        ws.sort_by_key(|(l, _)| l.0);
        ws
    }

    /// Commits the current transaction locally: speculatively-written
    /// words take writer stamp `tid` and their lines become dirty
    /// (committed data not yet written back); all SR/SM bits clear.
    pub fn commit_tx(&mut self, tid: Tid) {
        for (_, e) in self.l2.iter_mut() {
            if !e.state.sm.is_empty() {
                e.state.values.apply_write(e.state.sm, tid);
                e.state.dirty = true;
                e.state.owner_tid = Some(tid);
                // Speculatively written words are now valid committed data.
                e.valid = e.valid.union(e.state.sm);
            }
            e.state.sr = WordMask::EMPTY;
            e.state.sm = WordMask::EMPTY;
        }
    }

    /// Clears every dirty bit without writing anything back.
    ///
    /// Used by the *write-through* baseline protocol, whose commits push
    /// data to memory immediately: after a write-through commit the
    /// cached copies are clean by construction.
    pub fn clear_dirty_bits(&mut self) {
        for (_, e) in self.l2.iter_mut() {
            e.state.dirty = false;
        }
    }

    /// Aborts the current transaction: speculatively-written lines are
    /// dropped wholesale (their committed data, if any, was written back
    /// before the first speculative write), and all SR bits clear.
    /// Returns the number of lines dropped.
    pub fn abort_tx(&mut self) -> usize {
        let dropped = self
            .l2
            .drain_filter(|_, e| e.state.is_speculatively_modified());
        for (l, e) in &dropped {
            debug_assert!(!e.state.dirty, "speculative line {l} should not be dirty");
            self.l1.remove(*l);
        }
        for (_, e) in self.l2.iter_mut() {
            e.state.sr = WordMask::EMPTY;
        }
        dropped.len()
    }

    /// Processes an invalidation for `words` of `line` caused by a
    /// remote commit.
    ///
    /// The conflict check is word-granular (the invalidation's word
    /// flags against the SR mask — §3.3 fine-grain conflict detection),
    /// but the *data* invalidation is whole-line, as in the paper
    /// ("violate or simply invalidate the line"): every valid bit is
    /// cleared. Words this transaction speculatively wrote stay
    /// readable (write-write overlaps do not violate under lazy
    /// versioning), and the SR mask survives so later re-reads are
    /// still recognized. The line is dropped entirely once it carries
    /// no transactional state.
    pub fn invalidate(&mut self, line: LineAddr, words: WordMask) -> InvalidateOutcome {
        let Some(entry) = self.l2.get_mut(line) else {
            return InvalidateOutcome {
                was_present: false,
                conflict: false,
                retained: false,
            };
        };
        // A *dirty* line can be invalidated when another processor that
        // fetched the line before our commit now commits to it and takes
        // over ownership. The caller must have flushed our still-valid
        // committed words home first (see `prepare_inv_flush`).
        debug_assert!(
            !entry.state.dirty,
            "invalidating a dirty line {line}: call prepare_inv_flush first"
        );
        let conflict = entry.state.sr.intersects(words);
        entry.valid = WordMask::EMPTY;
        let retained = entry.state.is_speculative();
        if !retained {
            self.l2.remove(line);
            self.l1.remove(line);
        }
        InvalidateOutcome {
            was_present: true,
            conflict,
            retained,
        }
    }

    /// Services a directory `DataRequest`: returns the line's contents
    /// and valid-word mask, clearing its dirty bit. If `keep` the line
    /// stays resident as a clean copy; otherwise it is removed (Fig. 2f
    /// write-back semantics). Returns `None` if the line is not
    /// resident (stale request after an eviction already wrote it back).
    pub fn flush(
        &mut self,
        line: LineAddr,
        keep: bool,
    ) -> Option<(LineValues, WordMask, Option<Tid>)> {
        let entry = self.l2.get_mut(line)?;
        entry.state.dirty = false;
        let values = entry.state.values.clone();
        let valid = entry.valid;
        let generation = entry.state.owner_tid;
        if !keep {
            self.l2.remove(line);
            self.l1.remove(line);
        }
        Some((values, valid, generation))
    }

    /// Prepares the flush that must precede invalidating a *dirty*
    /// line: clears the dirty bit and returns the line's contents with
    /// the valid mask *minus* the words being invalidated (those belong
    /// to the new owner and must not be merged into memory). Returns
    /// `None` if the line is absent or clean.
    pub fn prepare_inv_flush(
        &mut self,
        line: LineAddr,
        inv_words: WordMask,
    ) -> Option<(LineValues, WordMask, Option<Tid>)> {
        let entry = self.l2.get_mut(line)?;
        if !entry.state.dirty {
            return None;
        }
        entry.state.dirty = false;
        let valid = WordMask(entry.valid.0 & !inv_words.0);
        Some((entry.state.values.clone(), valid, entry.state.owner_tid))
    }

    /// Serializes the hierarchy's full mutable state — both levels'
    /// tag arrays (slot order, LRU stamps, tick) and the counters —
    /// for checkpointing. The configuration is not written; restore
    /// targets a hierarchy freshly built from the same `CacheConfig`
    /// (gated by the snapshot's config digest).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let s = self.stats;
        for v in [
            s.l1_load_hits,
            s.l2_load_hits,
            s.load_misses,
            s.l1_store_hits,
            s.l2_store_hits,
            s.store_misses,
            s.writebacks,
            s.overflows,
        ] {
            w.put(&v);
        }
        let (l1_tick, l1_sets) = self.l1.export_ways();
        w.put(&l1_tick);
        w.put(&(l1_sets.len() as u64));
        for set in &l1_sets {
            w.put(&(set.len() as u64));
            for &(line, stamp, _) in set {
                w.put(&line);
                w.put(&stamp);
            }
        }
        let (l2_tick, l2_sets) = self.l2.export_ways();
        w.put(&l2_tick);
        w.put(&(l2_sets.len() as u64));
        for set in &l2_sets {
            w.put(&(set.len() as u64));
            for &(line, stamp, entry) in set {
                w.put(&line);
                w.put(&stamp);
                w.put(&entry.state.sr);
                w.put(&entry.state.sm);
                w.put(&entry.state.dirty);
                w.put(&entry.state.owner_tid);
                w.put(&entry.state.values);
                w.put(&entry.valid);
            }
        }
    }

    /// Restores state captured by [`HierCache::save_state`] into this
    /// (identically-configured) hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated or structurally invalid
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's array dimensions disagree with this
    /// hierarchy's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = CacheStats {
            l1_load_hits: r.get()?,
            l2_load_hits: r.get()?,
            load_misses: r.get()?,
            l1_store_hits: r.get()?,
            l2_store_hits: r.get()?,
            store_misses: r.get()?,
            writebacks: r.get()?,
            overflows: r.get()?,
        };
        let l1_tick: u64 = r.get()?;
        let n1 = r.get_len(8)?;
        let mut l1_sets = Vec::with_capacity(n1);
        for _ in 0..n1 {
            let len = r.get_len(16)?;
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                let line: LineAddr = r.get()?;
                let stamp: u64 = r.get()?;
                set.push((line, stamp, ()));
            }
            l1_sets.push(set);
        }
        self.l1.restore_ways(l1_tick, l1_sets);
        let l2_tick: u64 = r.get()?;
        let n2 = r.get_len(8)?;
        let mut l2_sets = Vec::with_capacity(n2);
        for _ in 0..n2 {
            let len = r.get_len(16)?;
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                let line: LineAddr = r.get()?;
                let stamp: u64 = r.get()?;
                let entry = Entry {
                    state: LineState {
                        sr: r.get()?,
                        sm: r.get()?,
                        dirty: r.get()?,
                        owner_tid: r.get()?,
                        values: r.get()?,
                    },
                    valid: r.get()?,
                };
                set.push((line, stamp, entry));
            }
            l2_sets.push(set);
        }
        self.l2.restore_ways(l2_tick, l2_sets);
        Ok(())
    }

    /// Whether `line` is resident with its dirty bit set.
    #[must_use]
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        self.l2.peek(line).is_some_and(|e| e.state.dirty)
    }

    /// The SR mask of `line` (empty if not resident).
    #[must_use]
    pub fn sr_mask(&self, line: LineAddr) -> WordMask {
        self.l2.peek(line).map_or(WordMask::EMPTY, |e| e.state.sr)
    }

    /// The SM mask of `line` (empty if not resident).
    #[must_use]
    pub fn sm_mask(&self, line: LineAddr) -> WordMask {
        self.l2.peek(line).map_or(WordMask::EMPTY, |e| e.state.sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Granularity;
    use tcc_types::LineGeometry;

    /// A tiny hierarchy so eviction paths are easy to trigger:
    /// L1 = 2 sets x 1 way, L2 = 2 sets x 2 ways (4 lines total).
    fn tiny() -> HierCache {
        HierCache::new(CacheConfig {
            l1_bytes: 64,
            l1_ways: 1,
            l1_latency: 1,
            l2_bytes: 128,
            l2_ways: 2,
            l2_latency: 16,
            geometry: LineGeometry::new(32, 4),
            granularity: Granularity::Word,
        })
    }

    fn vals() -> LineValues {
        LineValues::fresh(8)
    }

    #[test]
    fn cold_load_misses_then_hits_after_fill() {
        let mut c = tiny();
        assert_eq!(c.load(LineAddr(0), 0), LoadOutcome::Miss);
        let r = c.fill(LineAddr(0), vals(), false);
        assert!(!r.overflow && r.evictions.is_empty());
        match c.load(LineAddr(0), 0) {
            LoadOutcome::Hit {
                level,
                value,
                own_speculative,
                first_read,
            } => {
                assert_eq!(level, Level::L1);
                assert_eq!(value, None);
                assert!(!own_speculative);
                assert!(first_read);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().load_misses, 1);
        assert_eq!(c.stats().l1_load_hits, 1);
    }

    #[test]
    fn l2_hit_when_l1_tag_displaced() {
        let mut c = tiny();
        // Lines 0 and 2 map to L1 set 0 (1 way): the second displaces the
        // first from L1 but both stay in L2 (2 ways in set 0).
        c.fill(LineAddr(0), vals(), false);
        c.fill(LineAddr(2), vals(), false);
        match c.load(LineAddr(0), 0) {
            LoadOutcome::Hit { level, .. } => assert_eq!(level, Level::L2),
            other => panic!("expected L2 hit, got {other:?}"),
        }
    }

    #[test]
    fn loads_set_sr_stores_set_sm() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.load(LineAddr(0), 3);
        assert!(c.sr_mask(LineAddr(0)).get(3));
        c.store(LineAddr(0), 5);
        assert!(c.sm_mask(LineAddr(0)).get(5));
        assert_eq!(c.speculative_lines(), 1);
        assert_eq!(c.write_set(), vec![(LineAddr(0), WordMask::single(5))]);
    }

    #[test]
    fn reading_own_write_sets_no_sr() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.store(LineAddr(0), 2);
        match c.load(LineAddr(0), 2) {
            LoadOutcome::Hit {
                own_speculative, ..
            } => assert!(own_speculative),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(
            !c.sr_mask(LineAddr(0)).get(2),
            "own-write read must not set SR"
        );
    }

    #[test]
    fn line_granularity_tracks_whole_line() {
        let mut c = HierCache::new(CacheConfig {
            granularity: Granularity::Line,
            ..tiny().config().clone()
        });
        c.fill(LineAddr(0), vals(), false);
        c.load(LineAddr(0), 1);
        assert_eq!(c.sr_mask(LineAddr(0)).count(), 8);
    }

    #[test]
    fn store_miss_is_write_allocate() {
        let mut c = tiny();
        assert_eq!(c.store(LineAddr(0), 0), StoreOutcome::Miss);
        c.fill(LineAddr(0), vals(), false);
        assert!(matches!(c.store(LineAddr(0), 0), StoreOutcome::Hit { .. }));
        assert_eq!(c.stats().store_misses, 1);
    }

    #[test]
    fn first_speculative_store_to_dirty_line_writes_back() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.store(LineAddr(0), 1);
        c.commit_tx(Tid(7)); // line is now dirty committed data
        assert!(c.is_dirty(LineAddr(0)));
        // Next transaction stores to the dirty line.
        match c.store(LineAddr(0), 2) {
            StoreOutcome::Hit {
                pre_writeback: Some(ev),
                ..
            } => {
                assert_eq!(ev.line, LineAddr(0));
                assert!(ev.dirty);
                assert_eq!(ev.values.words[1], Some(Tid(7)));
            }
            other => panic!("expected pre-writeback, got {other:?}"),
        }
        assert!(!c.is_dirty(LineAddr(0)));
        // Second store in the same transaction: no further write-back.
        match c.store(LineAddr(0), 3) {
            StoreOutcome::Hit { pre_writeback, .. } => assert!(pre_writeback.is_none()),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn commit_stamps_values_and_clears_speculation() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.load(LineAddr(0), 0);
        c.store(LineAddr(0), 4);
        c.commit_tx(Tid(3));
        assert!(c.sr_mask(LineAddr(0)).is_empty());
        assert!(c.sm_mask(LineAddr(0)).is_empty());
        assert!(c.is_dirty(LineAddr(0)));
        match c.load(LineAddr(0), 4) {
            LoadOutcome::Hit { value, .. } => assert_eq!(value, Some(Tid(3))),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn abort_drops_written_lines_and_clears_sr() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.fill(LineAddr(1), vals(), false);
        c.load(LineAddr(1), 0);
        c.store(LineAddr(0), 0);
        assert_eq!(c.abort_tx(), 1);
        assert!(!c.contains(LineAddr(0)), "written line dropped");
        assert!(c.contains(LineAddr(1)), "read-only line survives");
        assert!(c.sr_mask(LineAddr(1)).is_empty());
    }

    #[test]
    fn invalidation_conflicts_only_with_read_words() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.load(LineAddr(0), 1);
        let miss = c.invalidate(LineAddr(0), WordMask::single(2));
        assert!(miss.was_present && !miss.conflict);
        let hit = c.invalidate(LineAddr(0), WordMask::single(1));
        assert!(hit.was_present && hit.conflict);
        let absent = c.invalidate(LineAddr(9), WordMask::ALL);
        assert!(!absent.was_present && !absent.conflict);
    }

    #[test]
    fn invalidated_words_miss_but_own_writes_survive() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.store(LineAddr(0), 3);
        // Remote commit invalidates words 3 (write-write, no conflict)
        // and 4.
        let out = c.invalidate(LineAddr(0), WordMask(0b11000));
        assert!(!out.conflict);
        // Word 4 is gone: upgrade miss.
        assert_eq!(c.load(LineAddr(0), 4), LoadOutcome::Miss);
        // Word 3 is our own speculative write: still readable.
        assert!(matches!(
            c.load(LineAddr(0), 3),
            LoadOutcome::Hit {
                own_speculative: true,
                ..
            }
        ));
        // A merge fill restores word 4 without touching word 3's SM.
        let mut newer = vals();
        newer.apply_write(WordMask::single(4), Tid(11));
        c.fill(LineAddr(0), newer, false);
        match c.load(LineAddr(0), 4) {
            LoadOutcome::Hit { value, .. } => assert_eq!(value, Some(Tid(11))),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(c.sm_mask(LineAddr(0)).get(3));
    }

    #[test]
    fn fully_invalidated_line_is_dropped() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.invalidate(LineAddr(0), WordMask::ALL);
        assert!(!c.contains(LineAddr(0)));
    }

    #[test]
    fn eviction_of_dirty_line_produces_writeback() {
        let mut c = tiny();
        // Fill set 0 of L2 (lines 0, 2), dirty line 0 via commit.
        c.fill(LineAddr(0), vals(), false);
        c.store(LineAddr(0), 0);
        c.commit_tx(Tid(1));
        c.fill(LineAddr(2), vals(), false);
        // Touch line 2 so line 0 is LRU, then force an eviction.
        c.load(LineAddr(2), 0);
        c.commit_tx(Tid(2)); // clear speculation so line 2 is evictable
        let r = c.fill(LineAddr(4), vals(), false);
        assert!(!r.overflow);
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].line, LineAddr(0));
        assert!(r.evictions[0].dirty);
        assert!(!c.contains(LineAddr(0)));
    }

    #[test]
    fn speculative_lines_are_not_evicted_overflow_instead() {
        let mut c = tiny();
        // Fill both ways of L2 set 0 and make both speculative.
        c.fill(LineAddr(0), vals(), false);
        c.fill(LineAddr(2), vals(), false);
        c.load(LineAddr(0), 0);
        c.store(LineAddr(2), 0);
        let r = c.fill(LineAddr(4), vals(), false);
        assert!(r.overflow);
        assert!(r.evictions.is_empty());
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(2)));
        assert_eq!(c.stats().overflows, 1);
    }

    #[test]
    fn flush_clears_dirty_and_optionally_keeps() {
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.store(LineAddr(0), 1);
        c.commit_tx(Tid(5));
        let (v, valid, generation) = c.flush(LineAddr(0), true).expect("line resident");
        assert_eq!(v.words[1], Some(Tid(5)));
        assert_eq!(valid.count(), 8);
        assert_eq!(generation, Some(Tid(5)), "generation = the committing TID");
        assert!(!c.is_dirty(LineAddr(0)));
        assert!(c.contains(LineAddr(0)));
        let (v2, _, _) = c.flush(LineAddr(0), false).expect("line resident");
        assert_eq!(v2.words[1], Some(Tid(5)));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.flush(LineAddr(0), true).is_none());
    }

    #[test]
    fn save_restore_round_trips_state_and_behaviour() {
        use tcc_types::snap::{SnapReader, SnapWriter};
        let mut c = tiny();
        c.fill(LineAddr(0), vals(), false);
        c.fill(LineAddr(2), vals(), false);
        c.load(LineAddr(0), 1);
        c.store(LineAddr(2), 3);
        c.commit_tx(Tid(4));
        c.fill(LineAddr(1), vals(), false);
        c.load(LineAddr(1), 0);
        c.store(LineAddr(0), 5);
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = tiny();
        let mut r = SnapReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(restored.stats(), c.stats());
        // Re-saving yields identical bytes: state is fully captured.
        let mut w2 = SnapWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // Behaviour replays identically, including LRU-driven eviction
        // choices that depend on the restored stamps.
        for cache in [&mut c, &mut restored] {
            cache.load(LineAddr(2), 3);
        }
        let a = c.fill(LineAddr(4), vals(), false);
        let b = restored.fill(LineAddr(4), vals(), false);
        assert_eq!(a, b);
        assert_eq!(c.write_set(), restored.write_set());
        assert_eq!(c.stats(), restored.stats());
    }

    #[test]
    fn write_set_is_deterministically_ordered() {
        let mut c = tiny();
        for l in [3u64, 1, 0, 2] {
            c.fill(LineAddr(l), vals(), false);
            c.store(LineAddr(l), 0);
        }
        let ws: Vec<u64> = c.write_set().iter().map(|(l, _)| l.0).collect();
        assert_eq!(ws, vec![0, 1, 2, 3]);
    }
}
