//! Cache hierarchy configuration.

use tcc_types::{LineGeometry, WordMask};

/// Which cache level serviced an access, with its latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit (L1 miss).
    L2,
}

/// Granularity of speculative state tracking and conflict detection
/// (§3.1 of the paper describes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// One SR/SM bit per word; `Mark`/`Invalidate` carry word flags, so
    /// two transactions touching disjoint words of a line do not
    /// conflict. The paper's default.
    #[default]
    Word,
    /// One SR/SM bit per line; any overlap at line granularity
    /// conflicts (exposes false sharing — Ablation B).
    Line,
}

/// Geometry and timing of the two-level private cache hierarchy.
///
/// Defaults correspond to Table 2 of the paper: 32-KB 4-way L1 with
/// 1-cycle latency and 512-KB 8-way L2 with 16-cycle latency, both with
/// 32-byte lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total L1 capacity in bytes.
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Total L2 capacity in bytes.
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Line/word geometry (shared with the directories).
    pub geometry: LineGeometry,
    /// Speculative-state tracking granularity.
    pub granularity: Granularity,
}

impl CacheConfig {
    /// Number of sets in the given level.
    ///
    /// # Panics
    ///
    /// Panics if the capacity, associativity, and line size are
    /// inconsistent (non-integral or zero set count).
    #[must_use]
    pub fn sets(&self, level: Level) -> usize {
        let (bytes, ways) = match level {
            Level::L1 => (self.l1_bytes, self.l1_ways),
            Level::L2 => (self.l2_bytes, self.l2_ways),
        };
        let line = self.geometry.line_bytes();
        assert!(
            ways > 0 && bytes % (line * ways) == 0,
            "inconsistent cache geometry"
        );
        let sets = bytes / (line * ways);
        assert!(sets > 0, "cache must have at least one set");
        sets as usize
    }

    /// Hit latency of the given level.
    #[must_use]
    pub fn latency(&self, level: Level) -> u64 {
        match level {
            Level::L1 => self.l1_latency,
            Level::L2 => self.l2_latency,
        }
    }

    /// Mask of all words in a line under this geometry.
    #[must_use]
    pub fn full_line_mask(&self) -> WordMask {
        let n = self.geometry.words_per_line();
        if n >= 64 {
            WordMask::ALL
        } else {
            WordMask((1u64 << n) - 1)
        }
    }

    /// The tracking mask for an access to word `word`: a single bit under
    /// [`Granularity::Word`], the whole line under [`Granularity::Line`].
    #[must_use]
    pub fn track_mask(&self, word: usize) -> WordMask {
        match self.granularity {
            Granularity::Word => WordMask::single(word),
            Granularity::Line => self.full_line_mask(),
        }
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            l1_bytes: 32 << 10,
            l1_ways: 4,
            l1_latency: 1,
            l2_bytes: 512 << 10,
            l2_ways: 8,
            l2_latency: 16,
            geometry: LineGeometry::default(),
            granularity: Granularity::Word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_2() {
        let c = CacheConfig::default();
        assert_eq!(c.sets(Level::L1), 32 * 1024 / (32 * 4));
        assert_eq!(c.sets(Level::L2), 512 * 1024 / (32 * 8));
        assert_eq!(c.latency(Level::L1), 1);
        assert_eq!(c.latency(Level::L2), 16);
    }

    #[test]
    fn full_line_mask_covers_words_per_line() {
        let c = CacheConfig::default();
        assert_eq!(c.full_line_mask().count(), 8);
        let wide = CacheConfig {
            geometry: LineGeometry::new(256, 4),
            l1_bytes: 32 << 10,
            l1_ways: 4,
            ..CacheConfig::default()
        };
        assert_eq!(wide.full_line_mask().count(), 64);
    }

    #[test]
    fn track_mask_follows_granularity() {
        let mut c = CacheConfig::default();
        assert_eq!(c.track_mask(3).count(), 1);
        assert!(c.track_mask(3).get(3));
        c.granularity = Granularity::Line;
        assert_eq!(c.track_mask(3).count(), 8);
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn rejects_inconsistent_geometry() {
        let c = CacheConfig {
            l1_bytes: 1000,
            ..CacheConfig::default()
        };
        let _ = c.sets(Level::L1);
    }
}
