//! Speculative cache hierarchy for the Scalable TCC simulator.
//!
//! §3.1 of the paper stores all speculative state in the processor's
//! private data caches: every cache line carries per-word
//! speculatively-read (SR) and speculatively-modified (SM) bits, a valid
//! bit, and — new in Scalable TCC — a **dirty** bit supporting the
//! write-back protocol. This crate models that hierarchy:
//!
//! * [`LineState`] — per-line metadata (SR/SM masks, dirty, owned) plus
//!   the simulated contents used by the serializability checker.
//! * [`SetArray`] — a generic set-associative array with true-LRU
//!   replacement, used for both levels.
//! * [`HierCache`] — the two-level inclusive hierarchy: L1 hit/miss
//!   timing, fills, evictions (write-backs of dirty committed lines),
//!   first-speculative-write-to-dirty-line write-backs, transaction
//!   commit/abort bookkeeping, and speculative-overflow detection.
//!
//! # Example
//!
//! ```
//! use tcc_cache::{CacheConfig, HierCache, LoadOutcome};
//! use tcc_types::{LineAddr, LineValues};
//!
//! let cfg = CacheConfig::default();
//! let mut c = HierCache::new(cfg.clone());
//! let line = LineAddr(7);
//!
//! // A cold load misses; the fill installs the line; the retry hits.
//! assert!(matches!(c.load(line, 0), LoadOutcome::Miss));
//! let fill = c.fill(line, LineValues::fresh(8), false);
//! assert!(fill.evictions.is_empty());
//! assert!(matches!(c.load(line, 0), LoadOutcome::Hit { .. }));
//! // The load left an SR bit behind: the line is in the read-set.
//! assert_eq!(c.speculative_lines(), 1);
//! ```

mod array;
mod config;
mod hier;
mod line;

pub use array::SetArray;
pub use config::{CacheConfig, Granularity, Level};
pub use hier::{
    CacheStats, Eviction, FillResult, ForcedFillResult, HierCache, InvalidateOutcome, LoadOutcome,
    StoreOutcome,
};
pub use line::LineState;
