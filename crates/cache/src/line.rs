//! Per-line cache metadata.

use tcc_types::{LineValues, Tid, WordMask};

/// The state of one cache line in a TCC processor's hierarchy
/// (Fig. 1b of the paper).
///
/// A line combines non-speculative state (dirty committed data awaiting
/// write-back, ownership registered at the home directory) with the
/// current transaction's speculative footprint (SR/SM word masks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineState {
    /// Words speculatively read by the current transaction.
    pub sr: WordMask,
    /// Words speculatively modified by the current transaction.
    pub sm: WordMask,
    /// The line holds committed data newer than memory (write-back
    /// protocol); this processor is its registered owner.
    pub dirty: bool,
    /// Ownership generation: the TID of this processor's commit that
    /// last wrote the line. Write-backs carry it as their staleness
    /// tag — the directory drops (or mask-limits) write-backs from
    /// superseded generations. Tagging with the processor's *latest*
    /// TID instead would defeat the check: a processor can hold
    /// old-generation data while having acquired a newer TID for an
    /// unrelated transaction.
    pub owner_tid: Option<Tid>,
    /// Simulated contents: last committed writer TID per word, moved
    /// along the real data paths for the serializability checker.
    pub values: LineValues,
}

impl LineState {
    /// A freshly filled, clean, non-speculative line.
    #[must_use]
    pub fn filled(values: LineValues) -> LineState {
        LineState {
            sr: WordMask::EMPTY,
            sm: WordMask::EMPTY,
            dirty: false,
            owner_tid: None,
            values,
        }
    }

    /// Whether the current transaction has touched this line
    /// speculatively (read or written).
    #[must_use]
    pub fn is_speculative(&self) -> bool {
        !self.sr.is_empty() || !self.sm.is_empty()
    }

    /// Whether the line has been speculatively written.
    #[must_use]
    pub fn is_speculatively_modified(&self) -> bool {
        !self.sm.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_types::Tid;

    #[test]
    fn filled_lines_start_clean() {
        let l = LineState::filled(LineValues::fresh(8));
        assert!(!l.is_speculative());
        assert!(!l.is_speculatively_modified());
        assert!(!l.dirty);
    }

    #[test]
    fn speculative_flags_reflect_masks() {
        let mut l = LineState::filled(LineValues::fresh(8));
        l.sr.set(1);
        assert!(l.is_speculative());
        assert!(!l.is_speculatively_modified());
        l.sm.set(2);
        assert!(l.is_speculatively_modified());
    }

    #[test]
    fn values_travel_with_the_line() {
        let mut v = LineValues::fresh(8);
        v.apply_write(WordMask::single(4), Tid(9));
        let l = LineState::filled(v);
        assert_eq!(l.values.words[4], Some(Tid(9)));
    }
}
