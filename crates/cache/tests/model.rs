//! Model-based property test of the speculative cache hierarchy.
//!
//! A plain-map reference model implements the *documented* semantics of
//! every cache operation; a seeded generator drives both the model and
//! the real [`HierCache`] with random operation sequences and checks
//! that every observable (presence, dirtiness, SR/SM masks, load
//! outcomes, write sets) agrees. The hierarchy under test is configured
//! large enough that capacity evictions cannot occur (capacity
//! behaviour has its own tests in the unit suite); this test isolates
//! the transactional state machine.

use std::collections::HashMap;

use tcc_cache::{CacheConfig, HierCache, LoadOutcome};
use tcc_types::rng::SmallRng;
use tcc_types::{LineAddr, LineGeometry, LineValues, Tid, WordMask};

const WORDS: usize = 8;

#[derive(Debug, Clone, Default)]
struct ModelLine {
    valid: u64,
    sr: u64,
    sm: u64,
    dirty: bool,
    values: Vec<Option<Tid>>,
}

#[derive(Debug, Default)]
struct Model {
    lines: HashMap<u64, ModelLine>,
}

impl Model {
    fn fill(&mut self, line: u64, values: &LineValues) {
        let entry = self.lines.entry(line).or_insert_with(|| ModelLine {
            values: vec![None; WORDS],
            ..ModelLine::default()
        });
        // Merge: only invalid, non-SM words take fill data.
        for w in 0..WORDS {
            let bit = 1u64 << w;
            if entry.sm & bit == 0 && entry.valid & bit == 0 {
                entry.values[w] = values.words[w];
            }
        }
        entry.valid = (1 << WORDS) - 1;
    }

    fn load(&mut self, line: u64, word: usize) -> Option<(Option<Tid>, bool, bool)> {
        let entry = self.lines.get_mut(&line)?;
        let bit = 1u64 << word;
        let own = entry.sm & bit != 0;
        if !own && entry.valid & bit == 0 {
            return None; // upgrade miss
        }
        let first = !own && entry.sr & bit == 0;
        if !own {
            entry.sr |= bit;
        }
        Some((entry.values[word], own, first))
    }

    fn store(&mut self, line: u64, word: usize) -> Option<bool> {
        let entry = self.lines.get_mut(&line)?;
        let pre_wb = entry.dirty && entry.sm == 0;
        if pre_wb {
            entry.dirty = false;
        }
        entry.sm |= 1 << word;
        Some(pre_wb)
    }

    fn invalidate(&mut self, line: u64, words: u64) -> (bool, bool, bool) {
        let Some(entry) = self.lines.get_mut(&line) else {
            return (false, false, false);
        };
        let conflict = entry.sr & words != 0;
        entry.valid = 0;
        let retained = entry.sr != 0 || entry.sm != 0;
        if !retained {
            self.lines.remove(&line);
        }
        (true, conflict, retained)
    }

    fn commit(&mut self, tid: Tid) {
        for entry in self.lines.values_mut() {
            if entry.sm != 0 {
                for w in 0..WORDS {
                    if entry.sm & (1 << w) != 0 {
                        entry.values[w] = Some(tid);
                    }
                }
                entry.dirty = true;
                entry.valid |= entry.sm;
            }
            entry.sr = 0;
            entry.sm = 0;
        }
    }

    fn abort(&mut self) {
        self.lines.retain(|_, e| e.sm == 0);
        for e in self.lines.values_mut() {
            e.sr = 0;
        }
    }

    fn flush(&mut self, line: u64, keep: bool) -> Option<(Vec<Option<Tid>>, u64)> {
        let entry = self.lines.get_mut(&line)?;
        entry.dirty = false;
        let out = (entry.values.clone(), entry.valid);
        if !keep {
            self.lines.remove(&line);
        }
        Some(out)
    }

    fn write_set(&self) -> Vec<(u64, u64)> {
        let mut ws: Vec<(u64, u64)> = self
            .lines
            .iter()
            .filter(|(_, e)| e.sm != 0)
            .map(|(&l, e)| (l, e.sm))
            .collect();
        ws.sort_unstable();
        ws
    }
}

#[derive(Debug, Clone)]
enum Op {
    Fill { line: u64, stamp: Option<u64> },
    Load { line: u64, word: usize },
    Store { line: u64, word: usize },
    Invalidate { line: u64, words: u64 },
    Commit { tid: u64 },
    Abort,
    Flush { line: u64, keep: bool },
}

fn random_op(rng: &mut SmallRng) -> Op {
    let line = rng.gen_range(0u64..6);
    match rng.gen_range(0u32..7) {
        0 => Op::Fill {
            line,
            stamp: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0u64..100))
            } else {
                None
            },
        },
        1 => Op::Load {
            line,
            word: rng.gen_range(0usize..WORDS),
        },
        2 => Op::Store {
            line,
            word: rng.gen_range(0usize..WORDS),
        },
        3 => Op::Invalidate {
            line,
            words: rng.gen_range(1u64..(1 << WORDS)),
        },
        4 => Op::Commit {
            tid: rng.gen_range(100u64..200),
        },
        5 => Op::Abort,
        _ => Op::Flush {
            line,
            keep: rng.gen::<bool>(),
        },
    }
}

fn big_cache() -> HierCache {
    HierCache::new(CacheConfig {
        l1_bytes: 4096,
        l1_ways: 8,
        l1_latency: 1,
        l2_bytes: 64 * 1024,
        l2_ways: 16,
        l2_latency: 16,
        geometry: LineGeometry::new(32, 4),
        granularity: tcc_cache::Granularity::Word,
    })
}

fn mk_values(stamp: Option<u64>) -> LineValues {
    let mut v = LineValues::fresh(WORDS);
    if let Some(s) = stamp {
        v.apply_write(WordMask::ALL, Tid(s));
    }
    v
}

/// The real hierarchy and the reference model agree on every
/// observable after every operation, across 256 random sequences.
#[test]
fn cache_matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_e001);
    for _ in 0..256 {
        let n_ops = rng.gen_range(1usize..120);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        run_case(ops);
    }
}

fn run_case(ops: Vec<Op>) {
    let mut cache = big_cache();
    let mut model = Model::default();
    // Pending invalidation-flush state is checked via prepare_inv_flush
    // equivalence: model dirty lines must flush before invalidate.
    {
        for op in ops {
            match op {
                Op::Fill { line, stamp } => {
                    // Only fill when the line is absent or has invalid
                    // words (as the protocol would).
                    let values = mk_values(stamp);
                    let r = cache.fill(LineAddr(line), values.clone(), false);
                    assert!(!r.overflow, "big cache must not overflow");
                    model.fill(line, &values);
                }
                Op::Load { line, word } => {
                    let real = cache.load(LineAddr(line), word);
                    let want = model.load(line, word);
                    match (real, want) {
                        (LoadOutcome::Miss, None) => {}
                        (
                            LoadOutcome::Hit {
                                value,
                                own_speculative,
                                first_read,
                                ..
                            },
                            Some((mv, mown, mfirst)),
                        ) => {
                            assert_eq!(value, mv, "load value diverged");
                            assert_eq!(own_speculative, mown);
                            assert_eq!(first_read, mfirst);
                        }
                        (real, want) => {
                            panic!("load outcome diverged: real {real:?} vs model {want:?}")
                        }
                    }
                }
                Op::Store { line, word } => {
                    use tcc_cache::StoreOutcome;
                    let real = cache.store(LineAddr(line), word);
                    let want = model.store(line, word);
                    match (real, want) {
                        (StoreOutcome::Miss, None) => {}
                        (StoreOutcome::Hit { pre_writeback, .. }, Some(mpre)) => {
                            assert_eq!(pre_writeback.is_some(), mpre, "pre-writeback diverged");
                        }
                        (real, want) => {
                            panic!("store outcome diverged: real {real:?} vs model {want:?}")
                        }
                    }
                }
                Op::Invalidate { line, words } => {
                    // Protocol contract: flush dirty lines first.
                    let mask = WordMask(words);
                    let _ = cache.prepare_inv_flush(LineAddr(line), mask);
                    if let Some(e) = model.lines.get_mut(&line) {
                        e.dirty = false;
                    }
                    let real = cache.invalidate(LineAddr(line), mask);
                    let (present, conflict, retained) = model.invalidate(line, words);
                    assert_eq!(real.was_present, present);
                    assert_eq!(real.conflict, conflict);
                    if present {
                        assert_eq!(real.retained, retained);
                    }
                }
                Op::Commit { tid } => {
                    cache.commit_tx(Tid(tid));
                    model.commit(Tid(tid));
                }
                Op::Abort => {
                    cache.abort_tx();
                    model.abort();
                }
                Op::Flush { line, keep } => {
                    let real = cache.flush(LineAddr(line), keep);
                    let want = model.flush(line, keep);
                    match (&real, &want) {
                        (None, None) => {}
                        (Some((rv, rvalid, _gen)), Some((mv, mvalid))) => {
                            assert_eq!(&rv.words, mv, "flush values diverged");
                            assert_eq!(rvalid.0, *mvalid, "flush valid mask diverged");
                        }
                        _ => {
                            panic!("flush outcome diverged: real {real:?} vs model {want:?}")
                        }
                    }
                }
            }
            // Invariants after every step.
            for (&l, e) in &model.lines {
                assert!(
                    cache.contains(LineAddr(l)),
                    "model line {} missing from cache",
                    l
                );
                assert_eq!(cache.sr_mask(LineAddr(l)).0, e.sr);
                assert_eq!(cache.sm_mask(LineAddr(l)).0, e.sm);
                assert_eq!(cache.is_dirty(LineAddr(l)), e.dirty);
                // Speculative lines are never dirty.
                assert!(!(e.dirty && e.sm != 0), "dirty+SM impossible");
            }
            let real_ws: Vec<(u64, u64)> = cache
                .write_set()
                .into_iter()
                .map(|(l, m)| (l.0, m.0))
                .collect();
            assert_eq!(real_ws, model.write_set(), "write sets diverged");
        }
    }
}
