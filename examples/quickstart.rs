//! Quickstart: build a tiny transactional program by hand, run it on a
//! 4-processor Scalable TCC machine, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scalable_tcc::prelude::*;
use scalable_tcc::stats::breakdown::BreakdownPct;

fn main() {
    // Four processors repeatedly increment a shared counter (a
    // read-modify-write transaction on the same word) and do some
    // private work — the canonical transactional-memory kernel.
    let counter = Addr(0x100);
    let n = 4;
    let programs: Vec<ThreadProgram> = (0..n as u64)
        .map(|p| {
            let items = (0..8)
                .map(|i| {
                    WorkItem::Tx(Transaction::new(vec![
                        // Increment the shared counter...
                        TxOp::Load(counter),
                        TxOp::Compute(50),
                        TxOp::Store(counter),
                        // ...then do some private work.
                        TxOp::Load(Addr(0x10_000 + p * 0x1000 + i * 32)),
                        TxOp::Compute(200),
                    ]))
                })
                .collect();
            ThreadProgram::new(items)
        })
        .collect();

    // Enable the serializability checker: the run is validated against
    // a serial replay in TID order.
    let mut cfg = SystemConfig::with_procs(n);
    cfg.check_serializability = true;

    let result = Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config")
        .run();
    result.assert_serializable();

    println!("Scalable TCC quickstart — 4 processors, 1 contended counter");
    println!("------------------------------------------------------------");
    println!("total cycles      : {}", result.total_cycles);
    println!("commits           : {}", result.commits);
    println!(
        "violated attempts : {} (conflicting increments re-executed)",
        result.violations
    );
    println!("committed instr   : {}", result.instructions);
    println!("simulator events  : {}", result.events);
    let pct = BreakdownPct::from_result(&result);
    println!("\nexecution-time breakdown (machine-wide):");
    for (label, frac) in pct.components() {
        println!("  {label:<12} {:5.1}%", frac * 100.0);
    }
    println!("\nThe committed history was verified serializable in TID order.");
}
