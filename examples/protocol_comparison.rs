//! Protocol comparison: Scalable TCC's parallel commit against the
//! original small-scale TCC (global commit token + write-through
//! broadcast) on the same commit-intensive workload — the paper's core
//! motivation, live.
//!
//! ```sh
//! cargo run --release --example protocol_comparison [--full]
//! ```

use scalable_tcc::prelude::*;
use scalable_tcc::stats::render::TextTable;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Smoke };
    let app = apps::volrend(); // tiny transactions: commits dominate

    println!(
        "Parallel vs. serialized commit on {} ({:?} scale)\n",
        app.name, scale
    );
    let mut t = TextTable::new(vec![
        "CPUs",
        "Scalable (cycles)",
        "Small-scale (cycles)",
        "Serialized penalty",
    ]);
    for n in [1usize, 2, 4, 8, 16] {
        let programs = app.generate_scaled(n, 42, scale);
        let scalable = Simulator::builder(SystemConfig::with_procs(n))
            .programs(programs.clone())
            .build()
            .expect("valid config")
            .run()
            .total_cycles;
        let serialized = Simulator::builder(SystemConfig::with_procs(n))
            .programs(programs)
            .build_baseline()
            .expect("valid config")
            .run()
            .total_cycles;
        t.row(vec![
            n.to_string(),
            scalable.to_string(),
            serialized.to_string(),
            format!("{:.2}x", serialized as f64 / scalable as f64),
        ]);
        eprintln!("  p={n} done");
    }
    println!("{}", t.render());
    println!("The small-scale design serializes every commit through one");
    println!("global token and broadcasts write-sets to every node; its");
    println!("penalty grows with the processor count, which is exactly why");
    println!("the paper rebuilds the commit around directories (§2.2).");
}
