//! TAPE profiling: find out *which data* causes violations.
//!
//! §3.3 of the paper tells programmers to use TAPE, TCC's profiling
//! environment, to diagnose violations and (rare) starvation. This
//! example turns the simulator's TAPE mode on for a conflict-heavy
//! run and prints the report a programmer would act on.
//!
//! ```sh
//! cargo run --release --example tape_profiling
//! ```

use scalable_tcc::prelude::*;

fn main() {
    let n = 16;
    let app = apps::cluster_ga(); // the suite's violation-heavy member
    let mut cfg = SystemConfig::with_procs(n);
    cfg.profile = true;

    let programs = app.generate_scaled(n, 42, Scale::Smoke);
    let result = Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config")
        .run();

    println!(
        "{} on {n} CPUs: {} commits, {} violations, {} cycles\n",
        app.name, result.commits, result.violations, result.total_cycles
    );
    let report = result.profile.as_ref().expect("profiling was enabled");
    println!("{report}");

    println!("Reading the report:");
    println!(" * 'top conflict lines' are the shared words whose commits keep");
    println!("   rolling other transactions back — the data a programmer would");
    println!("   privatize, pad, or batch differently.");
    println!(" * an uneven 'violations per processor' histogram is the load");
    println!("   imbalance the paper describes for Cluster GA at low CPU counts.");
    println!(" * starvation events mark transactions that crossed the violation");
    println!("   threshold and re-executed serialized (early-TID mode).");
}
