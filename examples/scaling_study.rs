//! Scaling study: sweep one of the paper's applications across machine
//! sizes and print its Figure 7-style speedup curve.
//!
//! ```sh
//! cargo run --release --example scaling_study [app-name] [--full]
//! ```
//!
//! Defaults to `SPECjbb2000` at smoke scale; pass an application name
//! (e.g. `volrend`, `swim`) to study another, and `--full` for the full
//! calibrated run lengths.

use scalable_tcc::prelude::*;
use scalable_tcc::stats::breakdown::scaling_curve;
use scalable_tcc::stats::render::{stacked_bar, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "SPECjbb2000".to_string());
    let app = apps::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown application {name:?}; known:");
        for a in apps::all() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    });
    let scale = if full { Scale::Full } else { Scale::Smoke };

    let sizes = [1usize, 2, 4, 8, 16, 32, 64];
    let results: Vec<_> = sizes
        .iter()
        .map(|&n| {
            let programs = app.generate_scaled(n, 42, scale);
            let r = Simulator::builder(SystemConfig::with_procs(n))
                .programs(programs)
                .build()
                .expect("valid config")
                .run();
            eprintln!("  p={n}: {} cycles", r.total_cycles);
            r
        })
        .collect();

    let curve = scaling_curve(&sizes, &results);
    println!("\n{} — speedup over 1 CPU ({:?} scale)\n", app.name, scale);
    let mut t = TextTable::new(vec!["CPUs", "Speedup", "Violations", "breakdown"]);
    for p in &curve {
        t.row(vec![
            p.n_procs.to_string(),
            format!("{:.1}", p.speedup),
            p.violations.to_string(),
            stacked_bar(&p.pct.components(), 32),
        ]);
    }
    println!("{}", t.render());
    println!("legend: U useful, M cache miss, I idle, C commit, V violations");
}
