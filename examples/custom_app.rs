//! Build your own application profile.
//!
//! The eleven profiles in `tcc_workloads::apps` are calibrated to the
//! paper's Table 3, but [`AppProfile`] is a general tool: describe your
//! workload's transaction shape, locality, and sharing, and measure how
//! Scalable TCC runs it.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use scalable_tcc::prelude::*;
use scalable_tcc::stats::table3::Table3Row;
use scalable_tcc::workloads::AppProfile;

fn main() {
    // A hypothetical "key-value store" workload: medium transactions,
    // reads dominated by a large shared table, writes mostly to
    // per-shard private state, light cross-shard write sharing.
    let kv = AppProfile {
        name: "kv-store",
        input: "synthetic",
        tx_instr: 1_800,
        reads: 220,
        writes: 25,
        shared_frac: 0.25,
        shared_write_frac: 0.02,
        shared_dirs_per_tx: 2,
        private_lines: 40,
        shared_lines: 2_048,
        write_spread_all: false,
        total_txs: 1_024,
        phases: 2,
        size_jitter: 0.4,
    };

    println!("custom application: {} ({})\n", kv.name, kv.input);
    for n in [1usize, 8, 32] {
        let mut cfg = SystemConfig::with_procs(n);
        cfg.check_serializability = n <= 8; // oracle on where it is cheap
        let result = Simulator::builder(cfg)
            .programs(kv.generate(n, 1))
            .build()
            .expect("valid config")
            .run();
        if n <= 8 {
            result.assert_serializable();
        }
        println!("--- {n} processors ---");
        print!("{}", result.render_summary());
        if n == 32 {
            let row = Table3Row::from_result(kv.name, &result);
            println!(
                "Table-3 view     : tx {:.0} instr | rd {:.2} KB | wr {:.2} KB | \
                 {:.0} ops/word | {:.0} dirs/commit",
                row.tx_size_p90,
                row.read_set_kb_p90,
                row.write_set_kb_p90,
                row.ops_per_word_p90,
                row.dirs_per_commit_p90
            );
        }
        println!();
    }
    println!("Knobs to explore: shared_write_frac (conflicts), tx_instr");
    println!("(commit amortization), shared_dirs_per_tx (probe fan-out),");
    println!("write_spread_all (radix-style all-directory commits).");
}
