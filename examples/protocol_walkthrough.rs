//! Protocol walkthrough: replays the paper's Figure 2 scenario —
//! two processors share a line; one commits a write and the other is
//! violated and re-executes — narrating every coherence message.
//!
//! ```sh
//! cargo run --release --example protocol_walkthrough
//! ```
//!
//! Set `TCC_TRACE=1` to additionally dump the raw message trace the
//! simulator emits (every `Deliver` event, on stderr).

use scalable_tcc::prelude::*;

fn main() {
    // The line both processors touch, homed at node 0 (line 8 % 2 == 0).
    let x = Addr(8 * 32);

    // P0: writes X quickly and commits (the T1 of Fig. 2).
    // P1: reads X, then computes long enough for P0's commit to land —
    //     it is invalidated, violates, re-executes, and finally commits
    //     having read P0's value (the T2 of Fig. 2).
    let programs = vec![
        ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(vec![
            TxOp::Store(x),
            TxOp::Compute(50),
        ]))]),
        ThreadProgram::new(vec![WorkItem::Tx(Transaction::new(vec![
            TxOp::Load(x),
            TxOp::Compute(20_000),
        ]))]),
    ];

    let mut cfg = SystemConfig::with_procs(2);
    cfg.check_serializability = true;
    let result = Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config")
        .run();
    result.assert_serializable();

    println!("Figure 2 walkthrough — one committer, one violated reader");
    println!("----------------------------------------------------------");
    println!(
        "commits            : {} (both transactions eventually commit)",
        result.commits
    );
    println!(
        "violated attempts  : {} (the reader rolled back at least once)",
        result.violations
    );
    println!("P0 breakdown       : {:?}", result.breakdowns[0]);
    println!("P1 breakdown       : {:?}", result.breakdowns[1]);
    println!();
    println!("What happened on the wire (§2.2 of the paper):");
    println!(" 1. Both processors Load-Request line X from Directory 0 and");
    println!("    are recorded in its sharers vector.");
    println!(" 2. P0 finishes first: TID-Request -> vendor, Skip to the");
    println!("    directory it never touched, Probe to Directory 0.");
    println!(" 3. Directory 0 answers when its Now-Serving TID matches; P0");
    println!("    sends Mark for X's written words, then the Commit multicast.");
    println!(" 4. The gang-upgrade makes P0 the owner and sends P1 an");
    println!("    Invalidate carrying the written word flags.");
    println!(" 5. P1's SR bits intersect the flags: it violates, rolls back,");
    println!("    re-executes, re-fetches X (forwarded from owner P0), and");
    println!("    commits with a TID ordered after P0's.");
    println!();
    println!("Run with TCC_TRACE=1 to watch the raw message stream.");
    assert!(
        result.violations >= 1,
        "the reader should have been violated"
    );
}
