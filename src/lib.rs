//! # scalable-tcc — a reproduction of Scalable TCC (HPCA 2007)
//!
//! This workspace reproduces *"A Scalable, Non-blocking Approach to
//! Transactional Memory"* (Chafi, Casper, Carlstrom, McDonald, Cao Minh,
//! Baek, Kozyrakis, Olukotun — HPCA 2007): the first directory-based,
//! livelock-free, lazy hardware transactional memory for distributed
//! shared-memory machines.
//!
//! The umbrella crate re-exports the workspace libraries under one
//! roof and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`):
//!
//! * [`core`] — the Scalable TCC protocol, full-system simulator,
//!   serialized-commit baseline, and serializability checker.
//! * [`workloads`] — the eleven synthetic applications of Table 3.
//! * [`stats`] — figure/table reductions and text rendering.
//! * [`trace`] — protocol event tracing, metrics, and the
//!   `BENCH_*.json` run-report / Chrome-trace exporters.
//! * [`traffic`] — production-traffic generation: open-loop arrival
//!   processes, key-popularity models, compact binary traces, and
//!   deterministic replay on both execution backends.
//! * [`cache`], [`directory`], [`network`], [`engine`], [`types`] — the
//!   hardware substrates.
//!
//! ## Quick start
//!
//! Simulators are constructed through the validating builder and run
//! with [`try_run`](core::Simulator::try_run), which reports stalls
//! (deadlock, cycle limit, watchdog, transport retry exhaustion) as
//! typed [`RunError`](core::RunError) values. The panicking
//! [`run`](core::Simulator::run) remains as a convenience where a stall
//! simply means "bug".
//!
//! ```
//! use scalable_tcc::prelude::*;
//!
//! let app = apps::specjbb();
//! let cfg = SystemConfig::with_procs(8);
//! let programs = app.generate_scaled(8, 42, Scale::Smoke);
//! let result = Simulator::builder(cfg)
//!     .programs(programs)
//!     .build()?
//!     .try_run()?;
//! assert!(result.commits > 0);
//! println!("{} commits in {} cycles", result.commits, result.total_cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Choosing a coherence backend
//!
//! The simulator's event loop is protocol-agnostic: every commit/
//! coherence state machine lives behind the
//! [`Protocol`](core::Protocol) trait, selected per run with
//! [`ProtocolKind`](types::ProtocolKind) — `Tcc` (the paper's scalable
//! non-blocking commit), `SerializedCommit` (the §2.2 token-serialized
//! baseline), or `Tardis` (timestamp-ordered coherence with lease-based
//! reads and zero invalidation traffic). All backends share the mesh,
//! transport, chaos injection, checkpointing, and the serializability
//! checker.
//!
//! ```
//! use scalable_tcc::prelude::*;
//!
//! let mut cfg = SystemConfig::with_procs(4);
//! cfg.check_serializability = true;
//! let programs = apps::radix().generate(4, 7);
//! let result = Simulator::builder(cfg)
//!     .protocol(ProtocolKind::Tardis)
//!     .programs(programs)
//!     .build()?
//!     .try_run()?;
//! result.assert_serializable();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `README.md` for the experiment index and `DESIGN.md` for the
//! system inventory and the documented deviations from the paper.

pub use tcc_cache as cache;
pub use tcc_core as core;
pub use tcc_directory as directory;
pub use tcc_engine as engine;
pub use tcc_network as network;
pub use tcc_stats as stats;
pub use tcc_trace as trace;
pub use tcc_traffic as traffic;
pub use tcc_types as types;
pub use tcc_workloads as workloads;

/// The names nearly every experiment, example, and test imports —
/// construction ([`Simulator`], [`SystemConfig`], [`SimulatorBuilder`],
/// [`ConfigError`]), backend selection ([`Protocol`], [`ProtocolKind`]),
/// results ([`SimResult`], [`RunError`]), workloads ([`apps`],
/// [`Scale`], program-building types), the serialized-commit baseline
/// ([`BaselineSimulator`], [`OccCondition`]), and tracing ([`Tracer`],
/// [`TraceConfig`]).
///
/// ```
/// use scalable_tcc::prelude::*;
///
/// let cfg = SystemConfig::with_procs(2);
/// let sim = Simulator::builder(cfg)
///     .programs(apps::radix().generate(2, 1))
///     .build()?;
/// let result = sim.try_run()?;
/// assert!(result.commits > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use tcc_core::baseline::{BaselineResult, BaselineSimulator, OccCondition};
    pub use tcc_core::{
        ConfigError, Protocol, ProtocolKind, RunError, SimResult, Simulator, SimulatorBuilder,
        SystemConfig, ThreadProgram, Transaction, TxOp, WorkItem,
    };
    pub use tcc_trace::{TraceConfig, Tracer};
    pub use tcc_types::Addr;
    pub use tcc_workloads::{apps, Scale};
}
