//! # scalable-tcc — a reproduction of Scalable TCC (HPCA 2007)
//!
//! This workspace reproduces *"A Scalable, Non-blocking Approach to
//! Transactional Memory"* (Chafi, Casper, Carlstrom, McDonald, Cao Minh,
//! Baek, Kozyrakis, Olukotun — HPCA 2007): the first directory-based,
//! livelock-free, lazy hardware transactional memory for distributed
//! shared-memory machines.
//!
//! The umbrella crate re-exports the workspace libraries under one
//! roof and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`):
//!
//! * [`core`] — the Scalable TCC protocol, full-system simulator,
//!   serialized-commit baseline, and serializability checker.
//! * [`workloads`] — the eleven synthetic applications of Table 3.
//! * [`stats`] — figure/table reductions and text rendering.
//! * [`trace`] — protocol event tracing, metrics, and the
//!   `BENCH_*.json` run-report / Chrome-trace exporters.
//! * [`cache`], [`directory`], [`network`], [`engine`], [`types`] — the
//!   hardware substrates.
//!
//! ## Quick start
//!
//! ```
//! use scalable_tcc::core::{Simulator, SystemConfig};
//! use scalable_tcc::workloads::{apps, Scale};
//!
//! let app = apps::specjbb();
//! let cfg = SystemConfig::with_procs(8);
//! let programs = app.generate_scaled(8, 42, Scale::Smoke);
//! let result = Simulator::new(cfg, programs).run();
//! assert!(result.commits > 0);
//! println!("{} commits in {} cycles", result.commits, result.total_cycles);
//! ```
//!
//! See `README.md` for the experiment index and `DESIGN.md` for the
//! system inventory and the documented deviations from the paper.

pub use tcc_cache as cache;
pub use tcc_core as core;
pub use tcc_directory as directory;
pub use tcc_engine as engine;
pub use tcc_network as network;
pub use tcc_stats as stats;
pub use tcc_trace as trace;
pub use tcc_types as types;
pub use tcc_workloads as workloads;
