//! Live validation of the Table 3 characteristics: the published
//! per-application properties must hold for what the simulator
//! *measures*, not just for the generator parameters.

use scalable_tcc::prelude::*;
use scalable_tcc::stats::table3::Table3Row;

fn run(app: &scalable_tcc::workloads::AppProfile, n: usize) -> SimResult {
    let programs = app.generate_scaled(n, 11, Scale::Smoke);
    Simulator::builder(SystemConfig::with_procs(n))
        .programs(programs)
        .build()
        .expect("valid config")
        .run()
}

fn rows(n: usize) -> Vec<Table3Row> {
    apps::all()
        .iter()
        .map(|a| Table3Row::from_result(a.name, &run(a, n)))
        .collect()
}

#[test]
fn table3_shape_holds_in_measurement() {
    let rows = rows(16);
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();

    // §4.1: "Transaction sizes range from two-hundred to forty-five
    // thousand instructions."
    let min_size = rows.iter().map(|r| r.tx_size_p90).fold(f64::MAX, f64::min);
    let max_size = rows.iter().map(|r| r.tx_size_p90).fold(0.0, f64::max);
    assert!(
        min_size < 500.0,
        "smallest tx p90 {min_size} should be ~300"
    );
    assert!(
        max_size > 40_000.0,
        "largest tx p90 {max_size} should be ~45k"
    );
    assert_eq!(
        get("volrend").tx_size_p90,
        min_size,
        "volrend is the smallest"
    );
    assert_eq!(get("swim").tx_size_p90, max_size, "swim is the largest");

    // "The 90%-ile read-set size for all transactions is less than
    // 16 KB, while the 90%-ile write-set never exceeds 8 KB."
    for r in &rows {
        assert!(
            r.read_set_kb_p90 < 16.0,
            "{}: read set {}",
            r.name,
            r.read_set_kb_p90
        );
        assert!(
            r.write_set_kb_p90 <= 8.0,
            "{}: write set {}",
            r.name,
            r.write_set_kb_p90
        );
    }

    // Ops-per-word ordering: SPECjbb highest, volrend lowest,
    // water-spatial > water-nsquared.
    let jbb = get("SPECjbb2000").ops_per_word_p90;
    let vol = get("volrend").ops_per_word_p90;
    for r in &rows {
        assert!(
            r.ops_per_word_p90 <= jbb,
            "{} exceeds SPECjbb ops/word",
            r.name
        );
        assert!(
            r.ops_per_word_p90 >= vol,
            "{} is below volrend ops/word",
            r.name
        );
    }
    assert!(get("water-spatial").ops_per_word_p90 > get("water-nsquared").ops_per_word_p90);

    // Directories per commit: radix touches all 16; everyone else is
    // far more local.
    assert_eq!(get("radix").dirs_per_commit_p90, 16.0);
    for r in &rows {
        if r.name != "radix" {
            assert!(
                r.dirs_per_commit_p90 <= 6.0,
                "{}: {} dirs/commit too many",
                r.name,
                r.dirs_per_commit_p90
            );
        }
    }
}

#[test]
fn directory_occupancy_is_a_small_fraction_of_transaction_time() {
    // Table 3's occupancy column: the directory is busy per commit for
    // far less time than the transaction runs.
    for app in [apps::swim(), apps::specjbb(), apps::barnes()] {
        let r = run(&app, 16);
        let row = Table3Row::from_result(app.name, &r);
        assert!(
            row.occupancy_p90 < row.tx_size_p90,
            "{}: occupancy {} vs tx size {}",
            app.name,
            row.occupancy_p90,
            row.tx_size_p90
        );
    }
}

#[test]
fn commit_characteristics_scale_with_machine_size() {
    // radix's dirs/commit tracks the machine size (it always touches
    // every directory).
    for n in [4usize, 8] {
        let r = run(&apps::radix(), n);
        let max_dirs = r.tx_chars.iter().map(|t| t.dirs_written).max().unwrap();
        assert_eq!(max_dirs as usize, n);
    }
}
