//! Non-perturbation proof for the `tcc-trace` layer: tracing is
//! observation-only, so an identical workload must produce
//! byte-identical simulation results whether tracing is disabled,
//! collecting metrics, or capturing full event rings — and the
//! collected metrics must agree with the simulator's own counters.

use scalable_tcc::prelude::*;

fn run_with(trace: TraceConfig) -> SimResult {
    let app = apps::volrend();
    let programs = app.generate_scaled(4, 7, Scale::Smoke);
    let cfg = SystemConfig {
        check_serializability: true,
        trace,
        ..SystemConfig::with_procs(4)
    };
    Simulator::builder(cfg)
        .programs(programs)
        .build()
        .expect("valid config")
        .run()
}

/// Everything a run produced except the trace itself, as one
/// comparable string: the core plain-data digest
/// ([`SimResult::fingerprint`]) plus the serializability verdict.
fn fingerprint(r: &SimResult) -> String {
    format!("{} {:?}", r.fingerprint(), r.serializability)
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let off = run_with(TraceConfig::default());
    let metrics = run_with(TraceConfig::metrics_only());
    let full = run_with(TraceConfig::full());
    assert!(
        off.trace.is_none(),
        "disabled tracing must produce no report"
    );
    assert!(metrics.trace.is_some());
    assert!(full.trace.is_some());
    assert_eq!(fingerprint(&off), fingerprint(&metrics));
    assert_eq!(fingerprint(&off), fingerprint(&full));
    off.assert_serializable();
}

#[test]
fn traced_metrics_agree_with_simulator_counters() {
    let r = run_with(TraceConfig::metrics_only());
    let m = &r.trace.as_ref().unwrap().metrics;
    assert_eq!(m.counter("commit.count"), r.commits);
    let latency = m.histogram("commit.latency").expect("commits were traced");
    assert_eq!(latency.count(), r.commits);
    assert_eq!(
        m.counter("violations.conflict") + m.counter("violations.overflow"),
        r.violations
    );
    assert_eq!(m.counter("engine.events_dispatched"), r.events);
    let tid_wait: u64 = r.proc_counters.iter().map(|c| c.tid_wait).sum();
    assert_eq!(
        m.histogram("commit.tid_wait").map_or(0, |h| h.sum()),
        tid_wait
    );
}

#[test]
fn full_trace_accounts_for_every_recorded_event() {
    let r = run_with(TraceConfig::full());
    let t = r.trace.unwrap();
    assert!(
        !t.events.is_empty(),
        "a real run must record protocol events"
    );
    assert_eq!(t.events.len() as u64 + t.dropped, t.recorded);
    // The Chrome exporter must emit parseable JSON for a real trace.
    let chrome = t.to_chrome_trace();
    scalable_tcc::trace::Json::parse(&chrome).expect("chrome trace must be valid JSON");
}
