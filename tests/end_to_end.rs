//! Cross-crate integration tests: real application workloads through
//! the full simulator, with the serializability oracle on.

use scalable_tcc::prelude::*;

fn checked(n: usize) -> SystemConfig {
    SystemConfig {
        check_serializability: true,
        ..SystemConfig::with_procs(n)
    }
}

#[test]
fn every_application_runs_serializably_at_8_processors() {
    for app in apps::all() {
        let programs = app.generate_scaled(8, 1, Scale::Smoke);
        let expected: u64 = programs.iter().map(|p| p.transactions() as u64).sum();
        let r = Simulator::builder(checked(8))
            .programs(programs)
            .build()
            .expect("valid config")
            .run();
        assert_eq!(r.commits, expected, "{}: lost transactions", app.name);
        r.assert_serializable();
        assert!(r.instructions > 0, "{}: no instructions", app.name);
        for b in &r.breakdowns {
            assert_eq!(
                b.total(),
                r.total_cycles,
                "{}: breakdown must sum to the makespan",
                app.name
            );
        }
    }
}

#[test]
fn uniprocessor_runs_have_no_violations_and_tiny_commit_overhead() {
    // Figure 6's premise: with one processor nothing can conflict, and
    // the only TCC overhead is the (small) commit component.
    for app in apps::all() {
        let programs = app.generate_scaled(1, 2, Scale::Smoke);
        let r = Simulator::builder(checked(1))
            .programs(programs)
            .build()
            .expect("valid config")
            .run();
        assert_eq!(r.violations, 0, "{}: uniprocessor violation?!", app.name);
        let agg = r.aggregate();
        let commit_frac = agg.commit as f64 / agg.total() as f64;
        assert!(
            commit_frac < 0.10,
            "{}: uniprocessor commit overhead {commit_frac:.3} too large",
            app.name
        );
        r.assert_serializable();
    }
}

#[test]
fn application_runs_are_deterministic() {
    let app = apps::water_spatial();
    let run = || {
        let programs = app.generate_scaled(4, 9, Scale::Smoke);
        Simulator::builder(checked(4))
            .programs(programs)
            .build()
            .expect("valid config")
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.events, b.events);
    assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
    // Per-processor attribution must also be bit-identical, not just
    // the machine-wide totals (directories fan out invalidations in
    // deterministic line order).
    assert_eq!(format!("{:?}", a.breakdowns), format!("{:?}", b.breakdowns));
    assert_eq!(
        format!("{:?}", a.proc_counters),
        format!("{:?}", b.proc_counters)
    );
}

#[test]
fn scalable_beats_the_serialized_baseline_on_commit_bound_work() {
    // The paper's headline claim: parallel commit removes the
    // serialized-commit bottleneck. On a commit-intensive workload at
    // 16 processors, the small-scale baseline must be substantially
    // slower.
    let app = apps::volrend();
    let n = 16;
    let programs = app.generate_scaled(n, 4, Scale::Smoke);
    let scalable = Simulator::builder(SystemConfig::with_procs(n))
        .programs(programs.clone())
        .build()
        .expect("valid config")
        .run()
        .total_cycles;
    let serialized = Simulator::builder(SystemConfig::with_procs(n))
        .programs(programs)
        .build_baseline()
        .expect("valid config")
        .run()
        .total_cycles;
    assert!(
        serialized as f64 > scalable as f64 * 1.5,
        "serialized {serialized} should be >1.5x scalable {scalable}"
    );
}

#[test]
fn speedup_improves_with_processors_for_scalable_apps() {
    // SPECjbb2000 is the paper's near-linear scaler; it must earn
    // monotone speedups across 1 -> 4 -> 16 processors even at smoke
    // scale.
    let app = apps::specjbb();
    let cycles: Vec<u64> = [1usize, 4, 16]
        .iter()
        .map(|&n| {
            let programs = app.generate_scaled(n, 5, Scale::Smoke);
            Simulator::builder(SystemConfig::with_procs(n))
                .programs(programs)
                .build()
                .expect("valid config")
                .run()
                .total_cycles
        })
        .collect();
    assert!(cycles[1] < cycles[0], "4p should beat 1p: {cycles:?}");
    assert!(cycles[2] < cycles[1], "16p should beat 4p: {cycles:?}");
    let speedup16 = cycles[0] as f64 / cycles[2] as f64;
    assert!(speedup16 > 6.0, "16p speedup {speedup16:.1} too low");
}

#[test]
fn link_latency_hurts_communication_bound_apps_more() {
    // Figure 8's shape: equake (remote-load bound) degrades far more
    // from slow links than swim (partitioned grid).
    let degradation = |app: &scalable_tcc::workloads::AppProfile| {
        let run = |lat: u64| {
            let mut cfg = SystemConfig::with_procs(16);
            cfg.network.link_latency = lat;
            let programs = app.generate_scaled(16, 6, Scale::Smoke);
            Simulator::builder(cfg)
                .programs(programs)
                .build()
                .expect("valid config")
                .run()
                .total_cycles as f64
        };
        run(8) / run(1)
    };
    let equake = degradation(&apps::equake());
    let swim = degradation(&apps::swim());
    assert!(
        equake > swim,
        "equake degradation {equake:.2} should exceed swim's {swim:.2}"
    );
    assert!(equake > 1.1, "equake should visibly degrade: {equake:.2}");
}

#[test]
fn radix_touches_every_directory_per_commit() {
    // Table 3's standout row: radix's write-set spans all directories.
    let n = 8;
    let programs = apps::radix().generate_scaled(n, 7, Scale::Smoke);
    let r = Simulator::builder(checked(n))
        .programs(programs)
        .build()
        .expect("valid config")
        .run();
    r.assert_serializable();
    let max_dirs = r.tx_chars.iter().map(|t| t.dirs_written).max().unwrap();
    assert_eq!(
        max_dirs as usize, n,
        "radix must write lines homed everywhere"
    );
}

#[test]
fn remote_traffic_categories_are_populated() {
    // Figure 9 needs all five categories; a water-spatial run at 8
    // processors produces misses, write-backs, commit traffic, control
    // overhead, and (via producer-consumer lines) owner forwards.
    use scalable_tcc::types::TrafficCategory;
    let programs = apps::water_nsquared().generate_scaled(8, 8, Scale::Smoke);
    let r = Simulator::builder(checked(8))
        .programs(programs)
        .build()
        .expect("valid config")
        .run();
    for c in [
        TrafficCategory::Miss,
        TrafficCategory::Commit,
        TrafficCategory::Overhead,
        TrafficCategory::WriteBack,
    ] {
        assert!(
            r.traffic.bytes_in_category(c) > 0,
            "category {c} should be populated"
        );
    }
}
